"""F14 — Mutable-database serving: incremental ingest + queries under writes.

The seed-era database invalidated every index on any mutation, so a
live workload paid a **from-scratch rebuild per insert** at the next
query.  The mutation protocol (``docs/mutability.md``) replaces that
with incremental ``insert_batch`` / ``delete`` paths — dynamic
structures grow in place, static trees overlay a pending buffer — and
the serving layer stamps cached results with per-feature generations so
mutations invalidate lazily instead of flushing.

Two measurements:

``ingest``
    Interleaved insert-then-query over a VP-tree database of ``_N``
    signatures: the incremental path vs forcing a full index rebuild
    after every insert (what stale-marking amounted to under this
    workload).  Both strategies must produce identical query results;
    the reproduction check demands **>=5x** ingest speedup at full
    size.
``serving under writes``
    The full coalescing+caching service under 8 closed-loop query
    clients while a writer thread keeps inserting (and pruning) rows —
    versus the same traffic on a frozen database.  Reported: throughput,
    applied mutations, lazy cache invalidations, check-on-hit
    revalidations, coalesced mutation barriers, and the final-state
    parity check against a freshly built database.

The under-writes run must hold a floor fraction of the frozen-db
throughput (the ISSUE-9 regression this experiment guards: selective
revalidation + coalesced barriers + amortized core growth keep the
cache useful while the writer churns).  At full size the floor is
``_QPS_FLOOR_FULL``; at CI smoke sizes it arms only when
``REPRO_F14_QPS_FLOOR`` is set (wall-clock ratios are noisy on shared
tiny-n runners, so the workflow opts in explicitly).

Results go to ``benchmarks/BENCH_f14_mutable_serving.json`` for the
perf trajectory.  ``REPRO_BENCH_N`` shrinks the dataset for CI smoke
runs (parity checks still bite; wall-clock assertions only apply at
full size).
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

import numpy as np

from benchmarks.conftest import print_experiment
from repro.db.database import ImageDatabase
from repro.eval.harness import ascii_table
from repro.features.base import PresetSignature
from repro.features.pipeline import FeatureSchema
from repro.index import VPTree
from repro.serve.scheduler import QueryScheduler

_N = int(os.environ.get("REPRO_BENCH_N", "2000"))
_FULL_SIZE = _N >= 2000
_DIM = 64
_K = 10
_N_INSERTS = 64 if _FULL_SIZE else 6
_CONCURRENCY = 8
_REQUESTS_PER_CLIENT = 30 if _FULL_SIZE else 4
_POOL_SIZE = 24
_WRITER_BLOCK = 4
#: Under-writes throughput floor, as a fraction of the frozen-db run.
#: Always armed at full size; smoke runs opt in via REPRO_F14_QPS_FLOOR.
_QPS_FLOOR_FULL = 0.4
_QPS_FLOOR = (
    _QPS_FLOOR_FULL
    if _FULL_SIZE
    else float(os.environ.get("REPRO_F14_QPS_FLOOR", "0"))
)

_JSON_PATH = Path(__file__).parent / "BENCH_f14_mutable_serving.json"


def _vectors(n: int, seed: int) -> np.ndarray:
    from repro.eval.datasets import gaussian_clusters

    vectors, _ = gaussian_clusters(
        max(n, 32), _DIM, n_clusters=16, cluster_std=0.05, seed=seed
    )
    return vectors[:n]


def _database(vectors: np.ndarray) -> ImageDatabase:
    db = ImageDatabase(
        FeatureSchema([PresetSignature(_DIM, "signature")]),
        index_factory=lambda metric: VPTree(metric),
    )
    db.add_vectors(vectors)
    db.build_indexes()
    return db


def _ingest(db: ImageDatabase, rows: np.ndarray, probes: np.ndarray, *, rebuild: bool):
    """Insert rows one at a time, querying after each (closed loop)."""
    answers = []
    started = time.perf_counter()
    for row, probe in zip(rows, probes):
        db.add_vectors(row[None, :])
        if rebuild:
            db.build_indexes()  # the seed-era cost: from scratch, every insert
        answers.append(db.query(probe, _K, precomputed=True))
    return time.perf_counter() - started, answers


def test_f14_incremental_ingest(benchmark):
    base = _vectors(_N, seed=42)
    rows = _vectors(_N_INSERTS, seed=43)
    probes = _vectors(_N_INSERTS, seed=44)

    incremental_db = _database(base)
    incremental_s, incremental_answers = _ingest(
        incremental_db, rows, probes, rebuild=False
    )
    rebuild_db = _database(base)
    rebuild_s, rebuild_answers = _ingest(rebuild_db, rows, probes, rebuild=True)

    # Identical answers, insert for insert: ids allocate in the same
    # order, so the result streams must match bit for bit.
    for step, (got, want) in enumerate(zip(incremental_answers, rebuild_answers)):
        assert [(r.image_id, r.distance) for r in got] == [
            (r.image_id, r.distance) for r in want
        ], f"ingest step {step} diverged between strategies"

    ingest_speedup = rebuild_s / incremental_s if incremental_s > 0 else float("inf")
    per_insert_ms = incremental_s / _N_INSERTS * 1e3
    rebuild_ms = rebuild_s / _N_INSERTS * 1e3

    # --------------------------------------------------------------
    # Serving under concurrent writes.
    # --------------------------------------------------------------
    def _drive(writes: bool):
        db = _database(_vectors(_N, seed=42))
        pool = _vectors(_POOL_SIZE, seed=45)
        picks = np.random.default_rng(7).integers(
            0, _POOL_SIZE, size=(_CONCURRENCY, _REQUESTS_PER_CLIENT)
        )
        scheduler = QueryScheduler(
            db, max_batch=16, max_wait_ms=2.0, max_queue=4096, cache_size=4096
        )
        responses: dict[tuple[int, int], list] = {}
        lock = threading.Lock()
        stop_writer = threading.Event()
        writer_blocks = _vectors(512 if _FULL_SIZE else 32, seed=46)
        cursor = 0

        def writer() -> None:
            nonlocal cursor
            while not stop_writer.is_set() and cursor + _WRITER_BLOCK <= len(
                writer_blocks
            ):
                block = writer_blocks[cursor : cursor + _WRITER_BLOCK]
                cursor += _WRITER_BLOCK
                added = scheduler.submit_add(block).result()
                # Prune half of what we added: deletes ride along too.
                scheduler.submit_remove(added.ids[: _WRITER_BLOCK // 2]).result()
                time.sleep(0.001)

        def client(client_id: int) -> None:
            for step, pick in enumerate(picks[client_id]):
                served = scheduler.submit_query(pool[pick], _K).result()
                with lock:
                    responses[(client_id, step)] = served.results

        threads = [
            threading.Thread(target=client, args=(i,))
            for i in range(_CONCURRENCY)
        ]
        writer_thread = threading.Thread(target=writer) if writes else None
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        if writer_thread is not None:
            writer_thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
        stop_writer.set()
        if writer_thread is not None:
            writer_thread.join()

        # Settle, then check final-state parity: served answers for the
        # whole pool must equal a fresh build over the final item set.
        final = {
            pick: scheduler.submit_query(pool[pick], _K).result().results
            for pick in range(_POOL_SIZE)
        }
        stats = scheduler.stats()
        scheduler.close()
        ids, matrix = db.feature_matrix("signature")
        from repro.metrics.minkowski import EuclideanDistance

        oracle = VPTree(EuclideanDistance()).build(ids, matrix)
        for pick in range(_POOL_SIZE):
            assert [(r.image_id, r.distance) for r in final[pick]] == [
                (nb.id, nb.distance) for nb in oracle.knn_search(pool[pick], _K)
            ], f"served result diverged from fresh build for pool query {pick}"
        total = _CONCURRENCY * _REQUESTS_PER_CLIENT
        assert len(responses) == total
        return {
            "qps": stats.completed / elapsed,
            "elapsed_seconds": elapsed,
            "requests": total,
            "mutations": stats.mutations,
            "cache_invalidations": stats.cache_invalidations,
            "cache_revalidations": stats.cache_revalidations,
            "coalesced_mutations": stats.coalesced_mutations,
            "cache_hit_rate": stats.cache_hit_rate,
            "latency_p50_ms": stats.latency_p50_ms,
            "latency_p95_ms": stats.latency_p95_ms,
        }

    static = _drive(writes=False)
    mutating = _drive(writes=True)
    assert mutating["mutations"] > 0
    # Every stale-stamped entry was either evicted or proven still
    # valid; revalidation may absorb all of them when the writer's rows
    # happen to land far from the pool, so gate on the union.
    touched = mutating["cache_invalidations"] + mutating["cache_revalidations"]
    assert touched > 0
    qps_ratio = (
        mutating["qps"] / static["qps"] if static["qps"] > 0 else float("inf")
    )
    if _QPS_FLOOR > 0.0:
        assert qps_ratio >= _QPS_FLOOR, (
            f"under-writes throughput collapsed: {mutating['qps']:.0f} q/s is "
            f"{qps_ratio:.2f}x the frozen-db {static['qps']:.0f} q/s "
            f"(floor {_QPS_FLOOR})"
        )

    rows_out = [
        ["incremental ingest", f"{per_insert_ms:.2f} ms/insert", f"{incremental_s:.2f}s total"],
        ["rebuild-per-insert", f"{rebuild_ms:.2f} ms/insert", f"{rebuild_s:.2f}s total"],
        ["ingest speedup", f"x{ingest_speedup:.1f}", ""],
        ["serve (frozen db)", f"{static['qps']:.0f} q/s", f"p95 {static['latency_p95_ms']:.1f} ms"],
        [
            "serve (under writes)",
            f"{mutating['qps']:.0f} q/s",
            f"{mutating['mutations']} mutations, "
            f"{mutating['cache_invalidations']} invalidations, "
            f"{mutating['cache_revalidations']} revalidations, "
            f"{mutating['coalesced_mutations']} coalesced",
        ],
        ["under-writes / frozen qps", f"x{qps_ratio:.2f}", f"floor {_QPS_FLOOR or 'off'}"],
    ]
    print_experiment(
        ascii_table(
            ["measurement", "headline", "detail"],
            rows_out,
            title=(
                f"F14: mutable-database serving - N={_N}, d={_DIM}, k={_K}, "
                f"{_N_INSERTS} inserts, {_CONCURRENCY} clients "
                f"(identical results everywhere)"
            ),
        )
    )

    if _FULL_SIZE:
        _JSON_PATH.write_text(
            json.dumps(
                {
                    "experiment": "f14_mutable_serving",
                    "n": _N,
                    "dim": _DIM,
                    "k": _K,
                    "n_inserts": _N_INSERTS,
                    "metric": "L2",
                    "index": "vptree",
                    "ingest": {
                        "incremental_seconds": incremental_s,
                        "rebuild_per_insert_seconds": rebuild_s,
                        "incremental_ms_per_insert": per_insert_ms,
                        "rebuild_ms_per_insert": rebuild_ms,
                        "speedup": ingest_speedup,
                    },
                    "serving": {
                        "static": static,
                        "under_writes": mutating,
                        "qps_ratio": qps_ratio,
                        "qps_floor": _QPS_FLOOR,
                    },
                },
                indent=1,
            )
            + "\n"
        )
        # Headline acceptance: incremental ingest clears 5x the
        # rebuild-per-insert baseline.
        assert ingest_speedup >= 5.0

    # Representative op for pytest-benchmark: one incremental
    # add+remove round trip against the live index (self-reversing, so
    # it can repeat).
    cycle_row = _vectors(1, seed=47)

    def add_remove_cycle():
        ids = incremental_db.add_vectors(cycle_row)
        incremental_db.remove(ids)

    benchmark(add_remove_cycle)
