"""F9 — Relevance feedback: precision per judgment round.

Feedback earns its keep when the starting query is *ambiguous*, so each
trial queries with a signature blended halfway between the target class
and a decoy class (every class takes a turn as target, its corpus
neighbour as decoy).  A simulated user then judges the top-10 by class
label (target class = relevant) for three Rocchio rounds.

Reported: mean precision@10 over all eight target classes after 0-3
rounds, for the standard Rocchio rule and for a no-movement control
(judgments are collected but alpha=1, beta=gamma=0 never moves the
query).

Expected shape: round 0 starts mid-range (the ambiguous query drags in
the decoy class), the first feedback round recovers most of the gap,
later rounds add little — the classic query-point-movement curve.  The
control stays exactly flat, proving the movement rule, not the repeated
querying, earns the gain.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import print_experiment
from repro.db.database import ImageDatabase
from repro.db.feedback import FeedbackSession, Rocchio
from repro.eval.datasets import CORPUS_CLASS_NAMES, make_class_image, make_corpus
from repro.eval.harness import ascii_table
from repro.features.histogram import HSVHistogram
from repro.features.pipeline import FeatureSchema

_PER_CLASS = 12
_K = 10
_ROUNDS = 3


def _build_db():
    schema = FeatureSchema([HSVHistogram((18, 3, 3), working_size=32)])
    db = ImageDatabase(schema)
    for image, label in make_corpus(_PER_CLASS, size=32, seed=200):
        db.add_image(image, label=label)
    return db


def _precision(results, label, k):
    labels = [r.record.label for r in results[:k]]
    return labels.count(label) / float(k)


def _ambiguous_queries(db):
    """One blended query per target class: 50% target, 50% decoy."""
    extractor = db.schema.get(db.default_feature)
    rng = np.random.default_rng(999)
    signatures = {
        label: extractor.extract(make_class_image(label, rng, size=32))
        for label in CORPUS_CLASS_NAMES
    }
    queries = []
    for position, label in enumerate(CORPUS_CLASS_NAMES):
        decoy = CORPUS_CLASS_NAMES[(position + 1) % len(CORPUS_CLASS_NAMES)]
        queries.append((label, 0.5 * (signatures[label] + signatures[decoy])))
    return queries


def _run_sessions(db, rule):
    """Per-round mean precision@k across one ambiguous query per class."""
    per_round = np.zeros(_ROUNDS + 1)
    for label, query in _ambiguous_queries(db):
        session = FeedbackSession(db, query, rule=rule)
        results = session.search(_K)
        per_round[0] += _precision(results, label, _K)
        for round_number in range(1, _ROUNDS + 1):
            session.mark_relevant(
                r.image_id for r in results if r.record.label == label
            )
            session.mark_non_relevant(
                r.image_id for r in results if r.record.label != label
            )
            results = session.search(_K)
            per_round[round_number] += _precision(results, label, _K)
    return per_round / len(CORPUS_CLASS_NAMES)


def test_f9_feedback_table(benchmark):
    db = _build_db()
    rocchio = _run_sessions(db, Rocchio(alpha=1.0, beta=0.75, gamma=0.25))
    control = _run_sessions(db, Rocchio(alpha=1.0, beta=0.0, gamma=0.0))

    rows = [
        ["rocchio(1, .75, .25)"] + [float(p) for p in rocchio],
        ["control (no movement)"] + [float(p) for p in control],
    ]
    print_experiment(
        ascii_table(
            ["rule", "round 0", "round 1", "round 2", "round 3"],
            rows,
            title=f"F9: relevance feedback from ambiguous queries - mean "
            f"precision@{_K}, {len(CORPUS_CLASS_NAMES)} target classes x "
            f"{_PER_CLASS} images/class",
        )
    )

    # Shape checks: movement recovers a real gap; the control cannot
    # change; the first round carries the largest single-round gain.
    assert np.allclose(control, control[0])
    assert rocchio[1] >= rocchio[0] + 0.1
    assert rocchio[-1] >= rocchio[0] + 0.1
    gains = np.diff(rocchio)
    assert gains[0] >= max(gains[1:]) - 1e-9

    label, query = _ambiguous_queries(db)[0]
    session = FeedbackSession(db, query)
    benchmark(lambda: session.search(_K))
