"""T1 — Feature extractor inventory: dimensionality and throughput.

Regenerates the evaluation's feature-inventory table: for every
extractor, its signature dimensionality and its extraction time on a
64x64 synthetic scene.  pytest-benchmark's own output is the timing
column; the printed table adds dimensions.

Expected shape: moments and wavelet signatures are the cheap compact
features; the correlogram is the most expensive (O(pixels x distances));
everything is far cheaper than a disk read was in 1994, which is why
extraction happened at insertion time.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import print_experiment, quality_schema
from repro.eval.harness import ascii_table
from repro.image import synth

_SCHEMA = quality_schema()


@pytest.fixture(scope="module")
def sample_image():
    rng = np.random.default_rng(0)
    return synth.compose_scene(64, 64, rng, n_shapes=4)


@pytest.mark.parametrize("extractor", list(_SCHEMA), ids=lambda e: e.name)
def test_t1_extraction_throughput(benchmark, extractor, sample_image):
    vector = benchmark(extractor.extract, sample_image)
    assert vector.shape == (extractor.dim,)
    benchmark.extra_info["dim"] = extractor.dim


def test_t1_inventory_table(sample_image, benchmark):
    import time

    rows = []
    for extractor in _SCHEMA:
        started = time.perf_counter()
        extractor.extract(sample_image)
        elapsed = time.perf_counter() - started
        rows.append([extractor.name, extractor.dim, elapsed * 1000.0])
    print_experiment(
        ascii_table(
            ["extractor", "dim", "ms / image (64x64)"],
            rows,
            title="T1: feature extractor inventory",
        )
    )
    benchmark(lambda: _SCHEMA.get("color_moments_rgb").extract(sample_image))
