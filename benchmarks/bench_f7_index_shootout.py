"""F7 — Full index shootout: every structure, one workload.

All seven index structures answer the same k=10 workload over the same
2048 x 16-D clustered vectors.  Reported per index: build cost, query
cost in distance computations, speedup over the scan, and query latency.
This is the summary figure the individual experiments (F1, F2, T4, T6,
T8, T9) drill into.

Expected shape: every metric tree lands well under the scan's 2048
distances per query; LAESA trades its large pivot-table memory for the
lowest distance counts; the kd-tree is competitive only because this
data has coordinates (see F2 for where that breaks); the GEMINI
filter-refine pipeline wins on *full-metric* evaluations by design since
it only refines filter survivors.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import print_experiment
from repro.eval.datasets import gaussian_clusters
from repro.eval.harness import ascii_table, run_knn_workload
from repro.index.antipole import AntipoleTree
from repro.index.filter_refine import FilterRefineIndex
from repro.index.gnat import GNAT
from repro.index.kdtree import KDTree
from repro.index.laesa import LAESAIndex
from repro.index.linear import LinearScanIndex
from repro.index.mtree import MTree
from repro.index.vptree import VPTree
from repro.metrics.minkowski import EuclideanDistance
from repro.reduce import KLTransform

_N = 2048
_K = 10
_N_QUERIES = 20

_FACTORIES = {
    "linear": lambda: LinearScanIndex(EuclideanDistance()),
    "vptree": lambda: VPTree(EuclideanDistance()),
    "antipole": lambda: AntipoleTree(EuclideanDistance()),
    "mtree": lambda: MTree(EuclideanDistance(), capacity=8),
    "gnat": lambda: GNAT(EuclideanDistance(), degree=8),
    "laesa": lambda: LAESAIndex(EuclideanDistance(), n_pivots=16),
    "kdtree": lambda: KDTree(EuclideanDistance()),
    # 12 of 16 dims keeps ~98% of this data's variance; F8 sweeps the
    # reduced dimensionality properly on data with a sharper spectrum.
    "kl-filter": lambda: FilterRefineIndex(EuclideanDistance(), KLTransform(12)),
}


def _data():
    vectors, _ = gaussian_clusters(_N, 16, n_clusters=16, cluster_std=0.04, seed=7)
    queries, _ = gaussian_clusters(
        _N_QUERIES, 16, n_clusters=16, cluster_std=0.04, seed=77
    )
    return vectors, queries


def test_f7_shootout_table(benchmark):
    vectors, queries = _data()
    ids = list(range(_N))

    rows = []
    dists_per_query = {}
    for name, factory in _FACTORIES.items():
        index = factory().build(ids, vectors)
        result = run_knn_workload(index, queries, _K)
        dists_per_query[name] = result.mean_distance_computations
        rows.append(
            [
                name,
                index.build_stats.distance_computations,
                result.mean_distance_computations,
                dists_per_query["linear"] / result.mean_distance_computations
                if result.mean_distance_computations
                else float("inf"),
                result.mean_latency_seconds * 1e3,
            ]
        )
    print_experiment(
        ascii_table(
            ["index", "build dists", "dists/query", "speedup", "latency (ms)"],
            rows,
            title=f"F7: index shootout - N={_N}, 16-D clustered, k={_K} "
            "(kl-filter counts full-metric refines only)",
        )
    )

    # Shape checks: the scan is exactly N; every alternative beats it.
    assert dists_per_query["linear"] == _N
    for name, cost in dists_per_query.items():
        if name != "linear":
            assert cost < 0.7 * _N, name
    # The new structures must be in the same league as the established ones.
    assert dists_per_query["mtree"] < 0.5 * _N
    assert dists_per_query["gnat"] < 0.5 * _N

    index = _FACTORIES["gnat"]().build(ids, vectors)
    benchmark(lambda: index.knn_search(queries[0], _K))


@pytest.mark.parametrize("name", ["mtree", "gnat", "kl-filter"])
def test_f7_new_index_query_time(benchmark, name):
    vectors, queries = _data()
    index = _FACTORIES[name]().build(list(range(_N)), vectors)
    state = {"i": 0}

    def run_one():
        state["i"] = (state["i"] + 1) % len(queries)
        return index.knn_search(queries[state["i"]], _K)

    benchmark(run_one)
