"""T2 — Index construction cost vs. database size.

For N in {256 .. 2048}, build each index over 16-D clustered vectors and
report the build's distance computations (the 1994 cost unit) and the
tree shape.  Expected shape: all builds are O(N log N) in distance
computations; the Antipole build is the most expensive per item (its
tournaments pay for cluster quality), the kd-tree computes *no*
distances at build time (coordinate medians only).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_experiment
from repro.eval.harness import ascii_table
from repro.index.antipole import AntipoleTree
from repro.index.kdtree import KDTree
from repro.index.vptree import VPTree
from repro.metrics.minkowski import EuclideanDistance

_SIZES = (256, 512, 1024, 2048)

_FACTORIES = {
    "vptree": lambda: VPTree(EuclideanDistance()),
    "antipole": lambda: AntipoleTree(EuclideanDistance()),
    "kdtree": lambda: KDTree(EuclideanDistance()),
}


def test_t2_build_cost_table(clustered_vectors, benchmark):
    rows = []
    for n in _SIZES:
        vectors = clustered_vectors[:n]
        ids = list(range(n))
        for name, factory in _FACTORIES.items():
            index = factory().build(ids, vectors)
            stats = index.build_stats
            rows.append(
                [
                    name,
                    n,
                    stats.distance_computations,
                    stats.distance_computations / n,
                    stats.n_nodes,
                    stats.n_leaves,
                    stats.depth,
                ]
            )
    print_experiment(
        ascii_table(
            ["index", "N", "build dists", "dists/item", "nodes", "leaves", "depth"],
            rows,
            title="T2: index construction cost vs N (16-D clustered vectors)",
        )
    )
    benchmark(lambda: _FACTORIES["vptree"]().build(list(range(512)), clustered_vectors[:512]))


@pytest.mark.parametrize("name", list(_FACTORIES), ids=list(_FACTORIES))
def test_t2_build_time(benchmark, name, clustered_vectors):
    vectors = clustered_vectors[:1024]
    ids = list(range(1024))
    benchmark(lambda: _FACTORIES[name]().build(ids, vectors))
