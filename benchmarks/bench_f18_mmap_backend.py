"""F18 — Memory-mapped backend: bounded residency at full parity.

PR 10 put index row storage behind the :class:`VectorBackend` protocol
(``docs/storage.md``): the default backend keeps cores in RAM, the
``mmap`` backend pages them through a fixed-capacity buffer pool on
disk, so a database larger than RAM serves with bounded resident
memory.  This benchmark prices that trade on the F7 shootout workload
and pins the two contract claims:

* **bit-identical answers** — every index family returns exactly the
  (id, distance) lists the memory backend returns, with identical
  counted distance computations (the metric kernels are row-independent,
  so block-chunked evaluation is the same arithmetic);
* **bounded residency** — the pool never holds more pages than its
  cap, asserted from the pool's own counters, while misses > 0 prove
  the workload actually cycled the pool.

Reported per index family: build time, mean query latency on both
backends, the latency ratio (the price of paging), and the pool
counters.  Results go to ``benchmarks/BENCH_f18_mmap_backend.json``
for the perf trajectory.  ``REPRO_BENCH_N`` shrinks the dataset for CI
smoke runs (parity and residency assertions still bite).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from benchmarks.conftest import print_experiment
from repro.db.backend import MemoryBackendFactory, MmapBackendFactory
from repro.eval.datasets import gaussian_clusters
from repro.eval.harness import ascii_table, run_knn_workload
from repro.index.laesa import LAESAIndex
from repro.index.linear import LinearScanIndex
from repro.index.mtree import MTree
from repro.index.vptree import VPTree
from repro.metrics.minkowski import EuclideanDistance

_N = int(os.environ.get("REPRO_BENCH_N", "2048"))
_FULL_SIZE = _N >= 2048
_DIM = 16
_K = 10
_N_QUERIES = 20 if _FULL_SIZE else 6
_CACHE_PAGES = 8
_PAGE_RECORDS = 64

_JSON_PATH = Path(__file__).parent / "BENCH_f18_mmap_backend.json"

_FACTORIES = {
    "linear": lambda: LinearScanIndex(EuclideanDistance()),
    "laesa": lambda: LAESAIndex(EuclideanDistance(), n_pivots=16),
    "mtree": lambda: MTree(EuclideanDistance(), capacity=8),
    "vptree": lambda: VPTree(EuclideanDistance()),
}


def _data():
    vectors, _ = gaussian_clusters(
        _N, _DIM, n_clusters=16, cluster_std=0.04, seed=7
    )
    queries, _ = gaussian_clusters(
        _N_QUERIES, _DIM, n_clusters=16, cluster_std=0.04, seed=77
    )
    return vectors, queries


def _run_family(name, backend_factory, vectors, queries):
    index = _FACTORIES[name]()
    index.backend_factory = backend_factory
    start = time.perf_counter()
    index.build(list(range(_N)), vectors)
    build_s = time.perf_counter() - start
    result = run_knn_workload(index, queries, _K)
    answers = [
        [(n.id, n.distance) for n in index.knn_search(q, _K)]
        for q in queries
    ]
    return index, build_s, result, answers


def test_f18_mmap_backend_parity_and_residency(benchmark, tmp_path):
    vectors, queries = _data()
    rows_out = []
    report = {}

    for name in _FACTORIES:
        _mem_index, mem_build, mem_result, mem_answers = _run_family(
            name, MemoryBackendFactory(), vectors, queries
        )
        mmap_factory = MmapBackendFactory(
            tmp_path / name, cache_pages=_CACHE_PAGES, page_records=_PAGE_RECORDS
        )
        mmap_index, mmap_build, mmap_result, mmap_answers = _run_family(
            name, mmap_factory, vectors, queries
        )

        # Contract claim 1: bit-identical answers, identical counted cost.
        assert mmap_answers == mem_answers, f"{name}: results diverge"
        assert (
            mmap_result.mean_distance_computations
            == mem_result.mean_distance_computations
        ), f"{name}: counted distances diverge"

        # Contract claim 2: bounded residency, observed from the pool.
        # The factory-reported capacity is cache_pages per open store
        # (LAESA holds two: the core and the pivot table).  Linear and
        # LAESA page every block through the buffer pool; the trees
        # read the memmap view directly (OS page cache, still
        # reclaimable), so only the scan families count pool traffic.
        pool = mmap_factory.pool_stats()
        assert pool["capacity"] <= 2 * _CACHE_PAGES
        assert pool["resident"] <= pool["capacity"], f"{name}: pool overflow"
        if name in ("linear", "laesa"):
            assert pool["misses"] > 0, f"{name}: scan never touched the pool"

        ratio = (
            mmap_result.mean_latency_seconds / mem_result.mean_latency_seconds
            if mem_result.mean_latency_seconds
            else float("inf")
        )
        rows_out.append(
            [
                name,
                f"{mem_build * 1e3:.0f} / {mmap_build * 1e3:.0f}",
                mem_result.mean_distance_computations,
                f"{mem_result.mean_latency_seconds * 1e3:.2f}",
                f"{mmap_result.mean_latency_seconds * 1e3:.2f}",
                f"x{ratio:.2f}",
                f"{pool['resident']}/{pool['capacity']}",
                pool["hits"],
                pool["misses"],
            ]
        )
        report[name] = {
            "build_s_memory": mem_build,
            "build_s_mmap": mmap_build,
            "dists_per_query": mem_result.mean_distance_computations,
            "latency_ms_memory": mem_result.mean_latency_seconds * 1e3,
            "latency_ms_mmap": mmap_result.mean_latency_seconds * 1e3,
            "latency_ratio": ratio,
            "pool": pool,
            "bit_identical": True,
        }
        mmap_index.close()

    print_experiment(
        ascii_table(
            [
                "index",
                "build ms (mem/mmap)",
                "dists/query",
                "mem ms",
                "mmap ms",
                "ratio",
                "resident/cap",
                "pool hits",
                "pool misses",
            ],
            rows_out,
            title=(
                f"F18: mmap backend - N={_N}, d={_DIM}, k={_K}, "
                f"cache_pages={_CACHE_PAGES} x {_PAGE_RECORDS} records "
                "(results bit-identical to the memory backend)"
            ),
        )
    )

    if _FULL_SIZE:
        _JSON_PATH.write_text(
            json.dumps(
                {
                    "experiment": "f18_mmap_backend",
                    "n": _N,
                    "dim": _DIM,
                    "k": _K,
                    "n_queries": _N_QUERIES,
                    "cache_pages": _CACHE_PAGES,
                    "page_records": _PAGE_RECORDS,
                    "families": report,
                },
                indent=1,
            )
            + "\n"
        )

    # Representative op for pytest-benchmark: one k-NN query against the
    # pool-bounded linear scan (every block paged through the pool).
    factory = MmapBackendFactory(
        tmp_path / "bench-op", cache_pages=_CACHE_PAGES, page_records=_PAGE_RECORDS
    )
    index = LinearScanIndex(EuclideanDistance())
    index.backend_factory = factory
    index.build(list(range(_N)), vectors)
    state = {"i": 0}

    def run_one():
        state["i"] = (state["i"] + 1) % len(queries)
        return index.knn_search(queries[state["i"]], _K)

    benchmark(run_one)
    index.close()
