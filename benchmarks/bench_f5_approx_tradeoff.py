"""F5 — Approximate nearest-neighbour search: accuracy vs. budget.

Two approximation knobs on the VP-tree, each swept against exact ground
truth:

* ``epsilon`` (relative slack): prune unless a subtree could beat the
  current k-th distance by a (1+eps) factor;
* ``max_distance_computations`` (hard budget).

Reported: mean distance computations, recall@10 against the exact
answer set, and the mean distance ratio (approx k-th / true k-th).

Expected shape: a smooth tradeoff - modest epsilon slashes cost with
recall staying high; tiny budgets degrade gracefully rather than
catastrophically (candidates found early are already good).
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import print_experiment
from repro.eval.datasets import uniform_vectors
from repro.eval.harness import ascii_table
from repro.index.linear import LinearScanIndex
from repro.index.vptree import VPTree
from repro.metrics.minkowski import EuclideanDistance

_N = 2048
_DIM = 12   # hard enough that exact search must work for its answers
_K = 10
_N_QUERIES = 20
_EPSILONS = (0.0, 0.25, 0.5, 1.0, 2.0)
_BUDGETS = (64, 128, 256, 512)


def _recall(approx, exact) -> float:
    exact_ids = {n.id for n in exact}
    return len([n for n in approx if n.id in exact_ids]) / len(exact_ids)


def test_f5_tradeoff_table(benchmark):
    vectors = uniform_vectors(_N, _DIM, seed=9)
    queries = uniform_vectors(_N_QUERIES, _DIM, seed=99)
    ids = list(range(_N))
    metric = EuclideanDistance()
    linear = LinearScanIndex(metric).build(ids, vectors)
    tree = VPTree(metric).build(ids, vectors)

    exact_answers = [linear.knn_search(q, _K) for q in queries]

    rows = []
    recalls = {}
    costs = {}
    for epsilon in _EPSILONS:
        recall_values, cost_values, ratio_values = [], [], []
        for query, exact in zip(queries, exact_answers):
            approx = tree.knn_search_approximate(query, _K, epsilon=epsilon)
            recall_values.append(_recall(approx, exact))
            cost_values.append(tree.last_stats.distance_computations)
            ratio_values.append(approx[-1].distance / exact[-1].distance)
        key = f"eps={epsilon}"
        recalls[key] = float(np.mean(recall_values))
        costs[key] = float(np.mean(cost_values))
        rows.append([key, costs[key], costs[key] / _N, recalls[key], float(np.mean(ratio_values))])

    for budget in _BUDGETS:
        recall_values, cost_values, ratio_values = [], [], []
        for query, exact in zip(queries, exact_answers):
            approx = tree.knn_search_approximate(
                query, _K, max_distance_computations=budget
            )
            recall_values.append(_recall(approx, exact))
            cost_values.append(tree.last_stats.distance_computations)
            ratio_values.append(
                approx[-1].distance / exact[-1].distance if approx else np.inf
            )
        key = f"budget={budget}"
        recalls[key] = float(np.mean(recall_values))
        costs[key] = float(np.mean(cost_values))
        rows.append([key, costs[key], costs[key] / _N, recalls[key], float(np.mean(ratio_values))])

    print_experiment(
        ascii_table(
            ["mode", "mean dists", "fraction of scan", "recall@10", "dist ratio"],
            rows,
            title=f"F5: approximate k-NN tradeoff (N={_N}, dim={_DIM}, uniform)",
        )
    )

    # Shape checks.
    assert recalls["eps=0.0"] == 1.0                      # exact mode is exact
    assert costs["eps=2.0"] < costs["eps=0.0"]            # slack saves work
    assert recalls["eps=0.25"] > 0.8                      # small slack, high recall
    assert recalls["budget=512"] >= recalls["budget=64"] - 1e-9  # more budget, no worse

    benchmark(lambda: tree.knn_search_approximate(queries[0], _K, epsilon=0.5))
