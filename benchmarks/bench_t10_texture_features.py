"""T10 — Texture feature face-off: GLCM vs Gabor vs Tamura vs wavelet.

Leave-one-out retrieval restricted to the five texture-dominated corpus
classes (checkerboards, horizontal stripes, diagonal stripes, fine
noise, smooth blobs) — color is nearly useless here by construction, so
this isolates what each texture representation captures.

Expected shape: the orientation-aware features (Gabor; GLCM with
per-offset concatenation) separate the two stripe orientations that
orientation-pooled GLCM cannot; Tamura's three perceptual numbers are
surprisingly competitive for their size; every feature beats the 1/5
chance level.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import print_experiment
from repro.eval.datasets import make_corpus_images
from repro.eval.groundtruth import RelevanceJudgments
from repro.eval.harness import ascii_table
from repro.eval.metrics import mean_average_precision, mean_precision_at_k
from repro.features.gabor import GaborFeatures
from repro.features.pipeline import FeatureSchema
from repro.features.tamura import TamuraFeatures
from repro.features.texture import GLCMFeatures
from repro.features.wavelet import WaveletSignature
from repro.index.linear import LinearScanIndex
from repro.metrics.minkowski import EuclideanDistance

_TEXTURE_CLASSES = (
    "checkerboards",
    "stripes_horizontal",
    "stripes_diagonal",
    "noise_fine",
    "smooth_blobs",
)
_PER_CLASS = 10
_K = 9  # per-class relevant set size for leave-one-out


def _texture_schema() -> FeatureSchema:
    return FeatureSchema(
        [
            GLCMFeatures(16, working_size=32),
            GLCMFeatures(16, aggregate="concat", working_size=32),
            GaborFeatures(2, 4, working_size=32),
            TamuraFeatures(working_size=32),
            WaveletSignature(3, working_size=32),
        ]
    )


def _leave_one_out_rankings(ids, matrix, k):
    index = LinearScanIndex(EuclideanDistance()).build(ids, matrix)
    rankings = {}
    for row, query_id in enumerate(ids):
        neighbors = index.knn_search(matrix[row], k + 1)
        rankings[query_id] = [n.id for n in neighbors if n.id != query_id][:k]
    return rankings


def test_t10_texture_quality_table(benchmark):
    images, labels = make_corpus_images(_PER_CLASS, size=32, seed=300)
    keep = [row for row, label in enumerate(labels) if label in _TEXTURE_CLASSES]
    images = [images[row] for row in keep]
    labels = [labels[row] for row in keep]
    ids = list(range(len(images)))
    judgments = RelevanceJudgments.from_labels(ids, labels)

    schema = _texture_schema()
    rows = []
    precision_by_feature = {}
    for extractor in schema:
        matrix = np.array([extractor.extract(image) for image in images])
        rankings = _leave_one_out_rankings(ids, matrix, _K)
        p5 = mean_precision_at_k(rankings, judgments, 5)
        ap = mean_average_precision(rankings, judgments)
        precision_by_feature[extractor.name] = p5
        rows.append([extractor.name, extractor.dim, p5, ap])
    rows.sort(key=lambda r: -r[2])
    print_experiment(
        ascii_table(
            ["feature", "dim", "precision@5", "MAP"],
            rows,
            title=f"T10: texture features on {len(_TEXTURE_CLASSES)} texture "
            f"classes x {_PER_CLASS} images (chance = 0.2)",
        )
    )

    chance = 1.0 / len(_TEXTURE_CLASSES)
    for feature, p5 in precision_by_feature.items():
        assert p5 > chance, feature
    # Orientation-aware features must beat the orientation-pooled GLCM,
    # which cannot split the two stripe classes.
    pooled = precision_by_feature["glcm_16l_4o_mean"]
    assert precision_by_feature["gabor_2s_4o"] > pooled
    assert precision_by_feature["glcm_16l_4o_concat"] >= pooled

    extractor = GaborFeatures(2, 4, working_size=32)
    benchmark(lambda: extractor.extract(images[0]))
