"""T3 — Retrieval quality per feature type.

Leave-one-out retrieval over the 8-class labelled corpus: every image
queries the rest of the database, and precision@5 / mean average
precision are scored against the class ground truth, per extractor.

Expected shape: color features (HSV, RGB, moments, correlogram) dominate
on the color-separable classes; GLCM/wavelet carry the achromatic
texture classes; the orientation-sensitive features separate the stripe
orientations; no single feature wins everywhere (that is T5's fusion
argument).  Everything must beat the 1/8 chance level.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import print_experiment
from repro.eval.groundtruth import RelevanceJudgments
from repro.eval.harness import ascii_table
from repro.eval.metrics import mean_average_precision, mean_precision_at_k
from repro.index.linear import LinearScanIndex
from repro.metrics.minkowski import EuclideanDistance


def _leave_one_out_rankings(ids, matrix, k=10):
    metric = EuclideanDistance()
    index = LinearScanIndex(metric).build(ids, matrix)
    rankings = {}
    for row, query_id in enumerate(ids):
        neighbors = index.knn_search(matrix[row], k + 1)
        rankings[query_id] = [n.id for n in neighbors if n.id != query_id][:k]
    return rankings


def test_t3_feature_quality_table(corpus_features, benchmark):
    ids, labels, matrices = corpus_features
    judgments = RelevanceJudgments.from_labels(ids, labels)

    rows = []
    precision_by_feature = {}
    for feature, matrix in matrices.items():
        rankings = _leave_one_out_rankings(ids, matrix)
        p5 = mean_precision_at_k(rankings, judgments, 5)
        ap = mean_average_precision(rankings, judgments)
        precision_by_feature[feature] = p5
        rows.append([feature, p5, ap])
    rows.sort(key=lambda r: -r[1])
    print_experiment(
        ascii_table(
            ["feature", "precision@5", "MAP (top-10)"],
            rows,
            title="T3: leave-one-out retrieval quality per feature "
            "(8 classes x 8 images; chance = 0.125)",
        )
    )
    # Shape checks.
    chance = 1.0 / 8.0
    assert precision_by_feature["hsv_hist_18x3x3"] > 0.5
    for feature, p5 in precision_by_feature.items():
        assert p5 > chance, feature

    feature, matrix = next(iter(matrices.items()))
    benchmark(lambda: _leave_one_out_rankings(ids, matrix, k=5))
