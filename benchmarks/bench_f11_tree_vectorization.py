"""F11 — Tree vectorization: batched build and search vs the scalar era.

PR 1 made flat scans fast but left the metric trees paying one
interpreted ``Metric.distance`` call per stored vector during both
construction and traversal.  This experiment measures what routing the
tree hot loops through ``distance_batch`` buys: build wall-clock and
k-NN throughput per tree, **scalar** (the metric's vectorized kernel
hidden, so every batched call site degrades to the per-row loop — the
scalar-era cost model) vs **batched** (the kernels on).  For the
VP-tree it also times the *shared* batched traversal
(``knn_search_batch``), which evaluates each node's pivot against every
active query in one kernel call.

Scalar-era baseline, measured on the pre-vectorization implementation
(commit ``ea6ecbf``, n=2000, d=64, L2, k=10, 50 queries, one warm run):

=========  =============  ==========
index      build seconds  k-NN q/s
=========  =============  ==========
vptree     0.157          135.5
gnat       0.511          132.3
mtree      0.253          113.8
antipole   0.761          146.9
kdtree     0.019          101.7
=========  =============  ==========

Reproduction checks: the batched VP-tree is >= 3x on both build and
k-NN wall-clock at this size, and every path returns bit-identical
answers with bit-identical cost counters.  Results are also written to
``benchmarks/BENCH_f11_tree_vectorization.json`` so the perf trajectory
is machine-readable.

``REPRO_BENCH_N`` shrinks the dataset for CI smoke runs (kernel
regressions still surface as parity failures; the wall-clock assertions
only apply at full size, where timing is meaningful).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from benchmarks.conftest import print_experiment
from repro.eval.harness import ascii_table
from repro.index.antipole import AntipoleTree
from repro.index.gnat import GNAT
from repro.index.kdtree import KDTree
from repro.index.mtree import MTree
from repro.index.vptree import VPTree
from repro.metrics.base import hide_batch_kernel
from repro.metrics.minkowski import EuclideanDistance

_N = int(os.environ.get("REPRO_BENCH_N", "2000"))
_FULL_SIZE = _N >= 2000
_DIM = 64
_N_QUERIES = max(4, _N // 40)
_K = 10

_JSON_PATH = Path(__file__).parent / "BENCH_f11_tree_vectorization.json"


def _factories():
    return {
        "vptree": lambda m: VPTree(m),
        "gnat": lambda m: GNAT(m),
        "mtree": lambda m: MTree(m, promotion="maxdist"),
        "antipole": lambda m: AntipoleTree(m),
        "kdtree": lambda m: KDTree(m),
    }


def _dataset():
    from repro.eval.datasets import gaussian_clusters

    vectors, _ = gaussian_clusters(_N, _DIM, n_clusters=16, cluster_std=0.05, seed=42)
    queries, _ = gaussian_clusters(
        _N_QUERIES, _DIM, n_clusters=16, cluster_std=0.05, seed=43
    )
    return vectors, queries


#: Wall-clock measurements take the best of this many repetitions: the
#: individual builds are tens of milliseconds, where a single GC pause
#: or page fault can double a reading.
_REPEATS = 3


def _timed(run):
    best = np.inf
    for _ in range(_REPEATS):
        started = time.perf_counter()
        result = run()
        best = min(best, time.perf_counter() - started)
    return result, best


def test_f11_tree_vectorization(benchmark):
    vectors, queries = _dataset()
    ids = list(range(_N))

    rows = []
    report: dict[str, dict] = {}
    for name, factory in _factories().items():
        scalar_index, scalar_build = _timed(
            lambda: factory(hide_batch_kernel(EuclideanDistance())).build(ids, vectors)
        )
        batch_index, batch_build = _timed(
            lambda: factory(EuclideanDistance()).build(ids, vectors)
        )
        assert (
            scalar_index.build_stats.distance_computations
            == batch_index.build_stats.distance_computations
        )

        def run_queries(index):
            results, stats = [], []
            for query in queries:
                results.append(index.knn_search(query, _K))
                stats.append(index.last_stats)
            return results, stats

        (scalar_results, scalar_stats), scalar_seconds = _timed(
            lambda: run_queries(scalar_index)
        )
        (batch_results, batch_stats), batch_seconds = _timed(
            lambda: run_queries(batch_index)
        )

        shared_results, shared_seconds = _timed(
            lambda: batch_index.knn_search_batch(queries, _K)
        )
        shared_stats = batch_index.last_batch_stats

        # Bit-identity across all three paths: ids, distance floats, and
        # per-query cost counters.
        assert batch_results == scalar_results
        assert batch_stats == scalar_stats
        assert shared_results == scalar_results
        assert shared_stats == scalar_stats

        build_speedup = scalar_build / batch_build
        knn_speedup = scalar_seconds / shared_seconds
        rows.append(
            [
                name,
                scalar_build,
                batch_build,
                build_speedup,
                _N_QUERIES / scalar_seconds,
                _N_QUERIES / batch_seconds,
                _N_QUERIES / shared_seconds,
                knn_speedup,
            ]
        )
        report[name] = {
            "build_seconds_scalar": scalar_build,
            "build_seconds_batched": batch_build,
            "build_speedup": build_speedup,
            "build_distance_computations": batch_index.build_stats.distance_computations,
            "knn_qps_scalar": _N_QUERIES / scalar_seconds,
            "knn_qps_batched": _N_QUERIES / batch_seconds,
            "knn_qps_shared_batch": _N_QUERIES / shared_seconds,
            "knn_speedup": knn_speedup,
            "query_distance_computations": sum(
                stats.distance_computations for stats in shared_stats
            ),
        }

    print_experiment(
        ascii_table(
            [
                "index",
                "build(s) scalar",
                "build(s) batched",
                "build x",
                "q/s scalar",
                "q/s batched",
                "q/s shared",
                "knn x",
            ],
            rows,
            title=(
                f"F11: tree build + k-NN (k={_K}), scalar vs batched kernels - "
                f"N={_N}, d={_DIM}, {_N_QUERIES} queries (identical results)"
            ),
        )
    )

    if _FULL_SIZE:
        # Tiny smoke runs (REPRO_BENCH_N) don't pollute the trajectory:
        # only full-size measurements are worth recording.
        _JSON_PATH.write_text(
            json.dumps(
                {
                    "experiment": "f11_tree_vectorization",
                    "n": _N,
                    "dim": _DIM,
                    "n_queries": _N_QUERIES,
                    "k": _K,
                    "metric": "L2",
                    "indexes": report,
                },
                indent=1,
            )
            + "\n"
        )
        # The headline acceptance numbers: vectorizing the tree layer
        # must buy the VP-tree at least 3x on both axes at this size.
        assert report["vptree"]["build_speedup"] >= 3.0
        assert report["vptree"]["knn_speedup"] >= 3.0

    index = VPTree(EuclideanDistance()).build(ids, vectors)
    benchmark(lambda: index.knn_search_batch(queries, _K))
