"""F1 — The headline curve: k-NN query cost vs. database size.

For N in {256 .. 4096}, run k=10 nearest-neighbour queries against each
index over 16-D clustered vectors and report the mean number of distance
computations.  This is the figure that justifies content-based *indexing*
over scanning.

Expected shape: the linear scan is exactly N; the metric trees grow
sublinearly, so the speedup factor widens with N (>= 3x by N=4096 on
clustered data).  The kd-tree is competitive here because the data has
coordinates; F2 shows where that comparison breaks down.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import print_experiment
from repro.eval.harness import ascii_table, run_knn_workload
from repro.index.antipole import AntipoleTree
from repro.index.kdtree import KDTree
from repro.index.linear import LinearScanIndex
from repro.index.vptree import VPTree
from repro.metrics.minkowski import EuclideanDistance

_SIZES = (256, 512, 1024, 2048, 4096)
_K = 10
_N_QUERIES = 20

_FACTORIES = {
    "linear": lambda: LinearScanIndex(EuclideanDistance()),
    "vptree": lambda: VPTree(EuclideanDistance()),
    "antipole": lambda: AntipoleTree(EuclideanDistance()),
    "kdtree": lambda: KDTree(EuclideanDistance()),
}


def _queries(dim: int) -> np.ndarray:
    from repro.eval.datasets import gaussian_clusters

    vectors, _ = gaussian_clusters(_N_QUERIES, dim, n_clusters=16, cluster_std=0.04, seed=77)
    return vectors


def test_f1_scaling_table(clustered_vectors, benchmark):
    queries = _queries(clustered_vectors.shape[1])
    rows = []
    speedups = {}
    for n in _SIZES:
        vectors = clustered_vectors[:n]
        ids = list(range(n))
        baseline = None
        for name, factory in _FACTORIES.items():
            index = factory().build(ids, vectors)
            result = run_knn_workload(index, queries, _K)
            if name == "linear":
                baseline = result.mean_distance_computations
            speedup = baseline / result.mean_distance_computations
            speedups[(name, n)] = speedup
            rows.append([name, n, result.mean_distance_computations, speedup])
    print_experiment(
        ascii_table(
            ["index", "N", "mean dists/query", "speedup vs scan"],
            rows,
            title=f"F1: k-NN (k={_K}) cost vs N - 16-D clustered vectors",
        )
    )
    # Reproduction checks: trees must beat the scan and the margin must
    # widen with N.  The cluster-aware Antipole tree carries the headline
    # >=3x factor at this (16-D) dimensionality; the VP-tree's margin is
    # smaller here and widens as dimensionality drops (see F2).
    assert speedups[("vptree", 4096)] > 2.0
    assert speedups[("vptree", 4096)] > speedups[("vptree", 256)]
    assert speedups[("antipole", 4096)] > 3.0
    assert speedups[("antipole", 4096)] > speedups[("antipole", 256)]

    index = _FACTORIES["vptree"]().build(list(range(4096)), clustered_vectors)
    benchmark(lambda: index.knn_search(queries[0], _K))


@pytest.mark.parametrize("name", list(_FACTORIES), ids=list(_FACTORIES))
def test_f1_query_time_at_4096(benchmark, name, clustered_vectors):
    index = _FACTORIES[name]().build(list(range(4096)), clustered_vectors)
    queries = _queries(clustered_vectors.shape[1])
    state = {"i": 0}

    def run_one():
        state["i"] = (state["i"] + 1) % len(queries)
        return index.knn_search(queries[state["i"]], _K)

    benchmark(run_one)
