"""F15 — Sharded scatter-gather serving: QPS vs shard count, saturation.

The scheduler's worker serializes every engine call, so a single-shard
service tops out at one core.  Sharding splits the item set into N
independent views queried in parallel by per-shard threads and merged
exactly (``repro.serve.shard``) — same answers, more of the machine.
This experiment measures what that buys on the f12 workload shape
(closed-loop concurrent clients, popular-query pool):

``shards=1 / 2 / 4``
    Identical workload, identical scheduler knobs, cache off; only the
    shard count changes.  Every served answer is checked bit-identical
    against direct unsharded ``ImageDatabase.query`` calls — sharding's
    exactness contract, enforced while the clock runs.

``saturation``
    Open-loop offered-load sweep against the best shard count: a
    dispatcher submits at a fixed rate regardless of completions, and
    the curve reports achieved throughput and p50/p95 latency as
    offered load crosses capacity — the knee a capacity planner looks
    for.

``rate limiting``
    The same scheduler with a token bucket: a burst beyond the budget
    fails fast with :class:`~repro.errors.RateLimitError` (HTTP 429)
    instead of queueing — the throttled count is reported.

The index is a **linear scan**: its kernel is one vectorized NumPy pass
that releases the GIL, so shard threads genuinely overlap.  (VP-tree
traversal is Python-recursion-bound and would serialize on the GIL —
sharding still *works* there, it just can't add CPUs.)

Reproduction checks (full size, and only when the machine actually has
>= 4 cores): 4 shards clear **3x** the single-shard throughput.  On
smaller machines the curve is still measured and written, with
``cpu_count`` recorded so the trajectory reader can tell "sharding
broke" from "the container had one core" (a 1-core box caps the
achievable speedup near 1x no matter how exact the merge is).

Results go to ``benchmarks/BENCH_f15_sharded_serving.json``;
``REPRO_BENCH_N`` shrinks everything for CI smoke (parity still bites,
wall-clock assertions don't).
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

import numpy as np

from benchmarks.conftest import print_experiment
from repro.db.database import ImageDatabase
from repro.errors import RateLimitError, ServeError
from repro.eval.harness import ascii_table
from repro.features.base import PresetSignature
from repro.features.pipeline import FeatureSchema
from repro.index.linear import LinearScanIndex
from repro.serve.scheduler import QueryScheduler

_N = int(os.environ.get("REPRO_BENCH_N", "2000"))
_FULL_SIZE = _N >= 2000
_DIM = 64
_K = 10
_CONCURRENCY = 16
_REQUESTS_PER_CLIENT = 30 if _FULL_SIZE else 3
_POOL_SIZE = max(8, (_CONCURRENCY * _REQUESTS_PER_CLIENT) // 8)
_SHARD_COUNTS = (1, 2, 4)
_CPUS = os.cpu_count() or 1

_JSON_PATH = Path(__file__).parent / "BENCH_f15_sharded_serving.json"


def _database() -> tuple[ImageDatabase, np.ndarray, np.ndarray]:
    from repro.eval.datasets import gaussian_clusters

    vectors, _ = gaussian_clusters(_N, _DIM, n_clusters=16, cluster_std=0.05, seed=42)
    pool, _ = gaussian_clusters(
        _POOL_SIZE, _DIM, n_clusters=16, cluster_std=0.05, seed=43
    )
    picks = np.random.default_rng(7).integers(
        0, _POOL_SIZE, size=(_CONCURRENCY, _REQUESTS_PER_CLIENT)
    )
    return _build_db(vectors), pool, picks


def _build_db(vectors: np.ndarray) -> ImageDatabase:
    db = ImageDatabase(
        FeatureSchema([PresetSignature(_DIM, "signature")]),
        index_factory=lambda metric: LinearScanIndex(metric),
    )
    db.add_vectors(vectors)
    db.build_indexes()
    return db


def _closed_loop(db: ImageDatabase, pool: np.ndarray, picks: np.ndarray, shards: int):
    """The f12 closed-loop workload against one shard count."""
    scheduler = QueryScheduler(
        db,
        max_queue=4096,
        max_batch=_CONCURRENCY,
        max_wait_ms=4.0,
        cache_size=0,
        shards=shards,
    )
    responses: dict[tuple[int, int], list] = {}
    lock = threading.Lock()
    barrier = threading.Barrier(_CONCURRENCY + 1)

    def client(client_id: int) -> None:
        barrier.wait()
        for step, pick in enumerate(picks[client_id]):
            served = scheduler.submit_query(pool[pick], _K).result()
            with lock:
                responses[(client_id, step)] = served.results

    threads = [
        threading.Thread(target=client, args=(i,)) for i in range(_CONCURRENCY)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    stats = scheduler.stats()
    scheduler.close()

    assert len(responses) == _CONCURRENCY * _REQUESTS_PER_CLIENT
    return responses, elapsed, stats


def _open_loop(db: ImageDatabase, pool: np.ndarray, shards: int, offered_qps: float, n_requests: int):
    """Submit at a fixed rate regardless of completions; report the knee."""
    scheduler = QueryScheduler(
        db,
        max_queue=max(64, n_requests),
        max_batch=_CONCURRENCY,
        max_wait_ms=4.0,
        cache_size=0,
        shards=shards,
    )
    futures = []
    interval = 1.0 / offered_qps
    rng = np.random.default_rng(11)
    started = time.perf_counter()
    for i in range(n_requests):
        target = started + i * interval
        delay = target - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        try:
            futures.append(
                scheduler.submit_query(pool[int(rng.integers(0, len(pool)))], _K)
            )
        except ServeError:
            pass  # queue full at extreme overload — counted below
    latencies = sorted(f.result().latency_s for f in futures)
    elapsed = time.perf_counter() - started
    scheduler.close()

    achieved = len(latencies) / elapsed if elapsed > 0 else 0.0
    def pct(q: float) -> float:
        return 1e3 * latencies[min(len(latencies) - 1, int(q * len(latencies)))]
    return {
        "offered_qps": offered_qps,
        "achieved_qps": achieved,
        "completed": len(latencies),
        "dropped": n_requests - len(latencies),
        "latency_p50_ms": pct(0.50) if latencies else 0.0,
        "latency_p95_ms": pct(0.95) if latencies else 0.0,
    }


def _rate_limit_demo(db: ImageDatabase, pool: np.ndarray, shards: int) -> dict:
    """Hammer a throttled scheduler; count fast 429-class refusals."""
    scheduler = QueryScheduler(
        db, cache_size=0, shards=shards, rate_limit_qps=50.0, rate_limit_burst=8.0
    )
    admitted = 0
    throttled = 0
    slowest_refusal = 0.0
    futures = []
    for i in range(64):
        started = time.perf_counter()
        try:
            futures.append(scheduler.submit_query(pool[i % len(pool)], _K))
            admitted += 1
        except RateLimitError:
            throttled += 1
            slowest_refusal = max(slowest_refusal, time.perf_counter() - started)
    for future in futures:
        future.result()
    scheduler.close()
    assert throttled > 0  # a 64-deep burst must overflow an 8-token bucket
    assert slowest_refusal < 0.1  # refusals never queue behind the bucket
    return {
        "burst": 64,
        "admitted": admitted,
        "throttled": throttled,
        "slowest_refusal_ms": slowest_refusal * 1e3,
    }


def test_f15_sharded_serving(benchmark):
    db, pool, picks = _database()

    # The parity oracle: every distinct pool query answered directly by
    # the unsharded database.  Every shard count must reproduce these
    # bit for bit — ids, distance floats, order.
    direct = {pick: db.query(pool[pick], _K) for pick in range(_POOL_SIZE)}

    rows = []
    by_shards: dict[str, dict] = {}
    for shards in _SHARD_COUNTS:
        responses, elapsed, stats = _closed_loop(db, pool, picks, shards)
        for (client_id, step), results in responses.items():
            assert results == direct[picks[client_id, step]], (
                f"shards={shards}: served result diverged for client "
                f"{client_id} step {step}"
            )
        qps = stats.completed / elapsed
        balance = (
            max(stats.shard_requests) - min(stats.shard_requests)
            if stats.shard_requests
            else 0
        )
        rows.append(
            [
                shards,
                stats.completed,
                elapsed,
                qps,
                stats.mean_batch_size,
                balance,
                stats.latency_p50_ms,
                stats.latency_p95_ms,
            ]
        )
        by_shards[str(shards)] = {
            "qps": qps,
            "elapsed_seconds": elapsed,
            "requests": stats.completed,
            "mean_batch_size": stats.mean_batch_size,
            "shard_sizes": list(stats.shard_sizes),
            "shard_requests": list(stats.shard_requests),
            "latency_p50_ms": stats.latency_p50_ms,
            "latency_p95_ms": stats.latency_p95_ms,
        }

    speedup_2 = by_shards["2"]["qps"] / by_shards["1"]["qps"]
    speedup_4 = by_shards["4"]["qps"] / by_shards["1"]["qps"]
    print_experiment(
        ascii_table(
            [
                "shards",
                "requests",
                "seconds",
                "q/s",
                "mean batch",
                "req imbalance",
                "p50 ms",
                "p95 ms",
            ],
            rows,
            title=(
                f"F15: sharded serving, {_CONCURRENCY} clients - N={_N}, "
                f"d={_DIM}, k={_K}, linear scan, {_CPUS} cpu(s) "
                f"(2 shards x{speedup_2:.2f}, 4 shards x{speedup_4:.2f}; "
                f"identical results)"
            ),
        )
    )

    # Saturation: offered load at 0.5x / 1x / 2x the measured capacity
    # of the best shard count.
    best = max(_SHARD_COUNTS, key=lambda s: by_shards[str(s)]["qps"])
    capacity = by_shards[str(best)]["qps"]
    n_requests = _CONCURRENCY * _REQUESTS_PER_CLIENT
    saturation = [
        _open_loop(db, pool, best, max(4.0, capacity * factor), n_requests)
        for factor in (0.5, 1.0, 2.0)
    ]
    print_experiment(
        ascii_table(
            ["offered q/s", "achieved q/s", "completed", "dropped", "p50 ms", "p95 ms"],
            [
                [
                    point["offered_qps"],
                    point["achieved_qps"],
                    point["completed"],
                    point["dropped"],
                    point["latency_p50_ms"],
                    point["latency_p95_ms"],
                ]
                for point in saturation
            ],
            title=f"F15: saturation curve, shards={best} (open loop)",
        )
    )

    throttling = _rate_limit_demo(db, pool, best)

    if _FULL_SIZE:
        # Tiny smoke runs (REPRO_BENCH_N) don't pollute the trajectory.
        _JSON_PATH.write_text(
            json.dumps(
                {
                    "experiment": "f15_sharded_serving",
                    "n": _N,
                    "dim": _DIM,
                    "k": _K,
                    "concurrency": _CONCURRENCY,
                    "requests": n_requests,
                    "pool_size": _POOL_SIZE,
                    "metric": "L2",
                    "index": "linear",
                    "cpu_count": _CPUS,
                    "shards": by_shards,
                    "speedup_2_shards": speedup_2,
                    "speedup_4_shards": speedup_4,
                    "saturation": {"best_shards": best, "curve": saturation},
                    "rate_limiting": throttling,
                },
                indent=1,
            )
            + "\n"
        )
        if _CPUS >= 4:
            # Headline acceptance — near-linear scaling to 4 shards.
            # Gated on the hardware actually having the cores: on a
            # 1-core container the exact same code measures ~1x and
            # the assert would only be testing the machine.
            assert speedup_4 >= 3.0
            assert speedup_2 >= 1.5

    # Representative op for pytest-benchmark: one scattered engine pass
    # over a full formed batch at the best shard count.
    from repro.serve.shard import ShardedEngine

    engine = ShardedEngine(_build_db(db.feature_matrix("signature")[1]), best)
    matrix = pool[: min(_CONCURRENCY, _POOL_SIZE)]
    try:
        benchmark(lambda: engine.query_batch(matrix, _K, "signature"))
    finally:
        engine.close()
