"""F2 — The curse of dimensionality.

Query cost vs. feature dimensionality on two data regimes:

* **uniform** vectors - intrinsic dimensionality grows with the
  embedding dimension, and triangle-inequality pruning decays until the
  tree costs as much as the scan (the classic negative result);
* **clustered** vectors - intrinsic dimensionality stays low no matter
  the embedding dimension, and the tree keeps winning.  Real image
  signatures live in this regime, which is why metric indexing is
  viable for CBIR at all.

The table reports the Chavez intrinsic-dimensionality estimate
(rho = mu^2 / 2 sigma^2) alongside cost, making the mechanism visible.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import print_experiment
from repro.eval.datasets import gaussian_clusters, uniform_vectors
from repro.eval.harness import ascii_table, run_knn_workload
from repro.eval.stats import intrinsic_dimensionality
from repro.index.vptree import VPTree
from repro.metrics.minkowski import EuclideanDistance

_DIMS = (2, 4, 8, 16, 32)
_N = 1024
_K = 10
_N_QUERIES = 15


def _dataset(kind: str, dim: int, seed: int) -> np.ndarray:
    if kind == "uniform":
        return uniform_vectors(_N, dim, seed=seed)
    vectors, _ = gaussian_clusters(_N, dim, n_clusters=12, cluster_std=0.05, seed=seed)
    return vectors


def test_f2_dimensionality_table(benchmark):
    metric = EuclideanDistance()
    rows = []
    fractions = {}
    for kind in ("uniform", "clustered"):
        for dim in _DIMS:
            data = _dataset(kind, dim, seed=5)
            queries = _dataset(kind, dim, seed=55)[:_N_QUERIES]
            tree = VPTree(metric).build(list(range(_N)), data)
            result = run_knn_workload(tree, queries, _K)
            fraction = result.mean_distance_computations / _N
            fractions[(kind, dim)] = fraction
            rho = intrinsic_dimensionality(metric, data, seed=0)
            rows.append([kind, dim, rho, result.mean_distance_computations, fraction])
    print_experiment(
        ascii_table(
            ["data", "dim", "intrinsic dim", "mean dists/query", "fraction of scan"],
            rows,
            title=f"F2: VP-tree k-NN cost vs dimensionality (N={_N}, k={_K})",
        )
    )
    # Reproduction checks: pruning decays with dim on uniform data and
    # survives on clustered data.
    assert fractions[("uniform", 2)] < 0.3
    assert fractions[("uniform", 32)] > 0.9  # the curse
    assert fractions[("clustered", 32)] < 0.8  # clusters save you
    assert fractions[("clustered", 32)] < fractions[("uniform", 32)]

    tree = VPTree(metric).build(list(range(_N)), _dataset("uniform", 16, seed=5))
    query = _dataset("uniform", 16, seed=55)[0]
    benchmark(lambda: tree.knn_search(query, _K))
