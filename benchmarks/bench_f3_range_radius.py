"""F3 — Range-query cost vs. search radius (selectivity sweep).

Radii are chosen to hit target selectivities from 1% to 50% of the
database (via the pairwise-distance quantile estimator), and each index
reports its mean distance computations.

Expected shape: cost rises monotonically with radius toward full-scan
cost; at small selectivities the trees answer with a small fraction of
the scan's work, and the Antipole tree's cluster-level pruning keeps it
competitive with the VP-tree throughout.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import print_experiment
from repro.eval.datasets import gaussian_clusters
from repro.eval.harness import ascii_table, run_range_workload
from repro.eval.stats import estimate_radius_for_selectivity
from repro.index.antipole import AntipoleTree
from repro.index.linear import LinearScanIndex
from repro.index.vptree import VPTree
from repro.metrics.minkowski import EuclideanDistance

_SELECTIVITIES = (0.01, 0.05, 0.10, 0.20, 0.50)
_N = 2048
_N_QUERIES = 15


def test_f3_range_cost_table(clustered_vectors, benchmark):
    metric = EuclideanDistance()
    vectors = clustered_vectors[:_N]
    ids = list(range(_N))
    queries, _ = gaussian_clusters(
        _N_QUERIES, vectors.shape[1], n_clusters=16, cluster_std=0.04, seed=78
    )

    indexes = {
        "linear": LinearScanIndex(metric).build(ids, vectors),
        "vptree": VPTree(metric).build(ids, vectors),
        "antipole": AntipoleTree(metric).build(ids, vectors),
    }

    rows = []
    costs = {}
    for selectivity in _SELECTIVITIES:
        radius = estimate_radius_for_selectivity(
            metric, vectors, selectivity, n_pairs=4000, seed=0
        )
        for name, index in indexes.items():
            result = run_range_workload(index, queries, radius)
            costs[(name, selectivity)] = result.mean_distance_computations
            rows.append(
                [
                    name,
                    selectivity,
                    radius,
                    result.mean_distance_computations,
                    result.mean_result_size,
                ]
            )
    print_experiment(
        ascii_table(
            ["index", "selectivity", "radius", "mean dists/query", "mean results"],
            rows,
            title=f"F3: range-query cost vs radius (N={_N}, clustered)",
        )
    )
    # Shape checks: monotone cost in radius; trees beat the scan at 1%.
    for name in ("vptree", "antipole"):
        assert costs[(name, 0.01)] <= costs[(name, 0.50)]
        assert costs[(name, 0.01)] < 0.6 * _N

    radius = estimate_radius_for_selectivity(metric, vectors, 0.05, seed=0)
    benchmark(lambda: indexes["vptree"].range_search(queries[0], radius))
