"""F10 — Batched query throughput: vectorized kernels vs. scalar calls.

The 1994 cost model counts distance computations because each one
implied a disk fetch; on an in-memory reproduction the bottleneck moves
to the Python interpreter — a scalar linear scan pays one interpreted
``Metric.distance`` call per stored vector.  The batched engine keeps
the *count* identical but evaluates each query against the whole table
in one vectorized kernel pass.

This experiment quantifies that: k-NN queries/sec over n=2000 vectors at
d=64, per index, for

* **scalar** — the pre-batch path: per-item evaluations through the
  metric's loop fallback (``hide_batch_kernel`` hides the vectorized
  kernel, recreating the old per-item cost);
* **batched** — ``knn_search_batch`` with the vectorized kernel.

Reproduction checks: the batched linear scan is >= 5x the scalar one,
and the two paths return **bit-identical** answers — same ids, same
distance floats, same per-query stats counters.
"""

from __future__ import annotations

import os
import time

from benchmarks.conftest import print_experiment
from repro.eval.harness import ascii_table
from repro.index.laesa import LAESAIndex
from repro.index.linear import LinearScanIndex
from repro.metrics.base import hide_batch_kernel
from repro.metrics.minkowski import EuclideanDistance

# ``REPRO_BENCH_N`` shrinks the dataset for CI smoke runs; the identity
# checks still run, the wall-clock assertion only applies at full size.
_N = int(os.environ.get("REPRO_BENCH_N", "2000"))
_FULL_SIZE = _N >= 2000
_DIM = 64
_N_QUERIES = max(4, _N // 40)
_K = 10


def _dataset():
    from repro.eval.datasets import gaussian_clusters

    vectors, _ = gaussian_clusters(_N, _DIM, n_clusters=16, cluster_std=0.05, seed=42)
    queries, _ = gaussian_clusters(
        _N_QUERIES, _DIM, n_clusters=16, cluster_std=0.05, seed=43
    )
    return vectors, queries


def _timed(run):
    started = time.perf_counter()
    result = run()
    return result, time.perf_counter() - started


def test_f10_batch_throughput_table(benchmark):
    vectors, queries = _dataset()
    ids = list(range(_N))

    factories = {
        "linear": lambda metric: LinearScanIndex(metric),
        "laesa(m=16)": lambda metric: LAESAIndex(metric, n_pivots=16),
    }

    rows = []
    speedups = {}
    for name, factory in factories.items():
        scalar_index = factory(hide_batch_kernel(EuclideanDistance())).build(ids, vectors)
        batch_index = factory(EuclideanDistance()).build(ids, vectors)

        def run_scalar(index=scalar_index):
            results, stats = [], []
            for query in queries:
                results.append(index.knn_search(query, _K))
                stats.append(index.last_stats)
            return results, stats

        (scalar_results, scalar_stats), scalar_seconds = _timed(run_scalar)
        (batch_results), batch_seconds = _timed(
            lambda: batch_index.knn_search_batch(queries, _K)
        )
        batch_stats = batch_index.last_batch_stats

        # Bit-identity: ids, distance floats, and per-query counters.
        assert batch_results == scalar_results
        assert batch_stats == scalar_stats

        scalar_qps = _N_QUERIES / scalar_seconds
        batch_qps = _N_QUERIES / batch_seconds
        speedups[name] = batch_qps / scalar_qps
        rows.append([name, scalar_qps, batch_qps, speedups[name]])

    print_experiment(
        ascii_table(
            ["index", "scalar q/s", "batched q/s", "speedup"],
            rows,
            title=(
                f"F10: k-NN (k={_K}) throughput, scalar vs batched engine - "
                f"N={_N}, d={_DIM}, {_N_QUERIES} queries (identical results)"
            ),
        )
    )

    # The headline acceptance number: vectorized kernels must buy the
    # linear scan at least 5x at this size (in practice far more).
    if _FULL_SIZE:
        assert speedups["linear"] >= 5.0

    batch_index = LinearScanIndex(EuclideanDistance()).build(ids, vectors)
    benchmark(lambda: batch_index.knn_search_batch(queries, _K))


def test_f10_range_batch_identity():
    vectors, queries = _dataset()
    ids = list(range(_N))
    radius = 0.8

    scalar_index = LinearScanIndex(hide_batch_kernel(EuclideanDistance())).build(
        ids, vectors
    )
    batch_index = LinearScanIndex(EuclideanDistance()).build(ids, vectors)

    scalar_results = [scalar_index.range_search(query, radius) for query in queries]
    batch_results = batch_index.range_search_batch(queries, radius)
    assert batch_results == scalar_results
    assert batch_index.last_stats.distance_computations == _N * _N_QUERIES
