"""F4 — Feature invariance under image transforms.

For each (feature, transform) pair: transform every corpus image, and
report the mean feature displacement *relative to the median distance
between different images* under that feature.  0 means fully invariant,
1 means the transform displaces an image as far as swapping it for an
unrelated one.

Expected shape (the paper's claims):

* color histograms ~invariant to rotation and flips, brittle to
  brightness shifts (mass crosses bin boundaries wholesale);
* edge-orientation histograms are NOT rotation invariant - and the
  circular-shift matched variant recovers most of the loss;
* wavelet signatures are robust to noise and intensity shifts;
* everything degrades gracefully under small crops.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import print_experiment
from repro.eval.harness import ascii_table
from repro.eval.stats import distance_sample
from repro.features.edges import EdgeOrientationHistogram
from repro.features.histogram import HSVHistogram, RGBJointHistogram
from repro.features.wavelet import WaveletSignature
from repro.image import transforms as tf
from repro.metrics.minkowski import EuclideanDistance
from repro.metrics.shifted import CircularShiftDistance

_TRANSFORMS = {
    "rot90": lambda img, rng: tf.rotate90(img),
    "flip_h": lambda img, rng: tf.flip_horizontal(img),
    "bright+0.1": lambda img, rng: tf.adjust_brightness(img, 0.1),
    "noise 0.05": lambda img, rng: tf.add_gaussian_noise(img, rng, 0.05),
    "crop 80%": lambda img, rng: tf.center_crop(img, 0.8),
}

_FEATURES = {
    "hsv_hist": HSVHistogram((18, 3, 3), working_size=32),
    "rgb_hist": RGBJointHistogram(4, working_size=32),
    "wavelet": WaveletSignature(3, working_size=32),
    "edge_orient": EdgeOrientationHistogram(18, working_size=32),
}


def test_f4_invariance_table(corpus, benchmark):
    images, _ = corpus
    images = images[::4]  # 16 images suffice for stable means
    rng = np.random.default_rng(4)
    euclid = EuclideanDistance()
    shift_match = CircularShiftDistance(euclid)

    relative = {}
    rows = []
    for feature_name, extractor in _FEATURES.items():
        originals = np.array([extractor.extract(image) for image in images])
        scale = float(np.median(distance_sample(euclid, originals, n_pairs=500, seed=0)))
        scale = scale if scale > 0 else 1.0
        row = [feature_name]
        for transform_name, transform in _TRANSFORMS.items():
            displacements = []
            for image, original in zip(images, originals):
                transformed = extractor.extract(transform(image, rng))
                displacements.append(euclid.distance(original, transformed) / scale)
            value = float(np.mean(displacements))
            relative[(feature_name, transform_name)] = value
            row.append(value)
        rows.append(row)

    # The shift-matched edge-orientation variant, rotation column only.
    extractor = _FEATURES["edge_orient"]
    originals = np.array([extractor.extract(image) for image in images])
    scale = float(np.median(distance_sample(euclid, originals, n_pairs=500, seed=0))) or 1.0
    shifted = float(
        np.mean(
            [
                shift_match.distance(orig, extractor.extract(tf.rotate90(image)))
                for image, orig in zip(images, originals)
            ]
        )
        / scale
    )
    rows.append(["edge_orient+shift", shifted, "-", "-", "-", "-"])

    print_experiment(
        ascii_table(
            ["feature"] + list(_TRANSFORMS),
            rows,
            title="F4: mean feature displacement / median inter-image distance "
            "(0 = invariant, 1 = unrelated)",
        )
    )

    # Shape checks: the paper's invariance claims.
    assert relative[("hsv_hist", "rot90")] < 0.05
    assert relative[("hsv_hist", "flip_h")] < 0.05
    assert relative[("edge_orient", "rot90")] > 0.3       # not invariant
    assert shifted < relative[("edge_orient", "rot90")] / 2  # shift-matching recovers
    assert relative[("hsv_hist", "bright+0.1")] > relative[("hsv_hist", "rot90")]

    image = images[0]
    benchmark(lambda: _FEATURES["hsv_hist"].extract(tf.rotate90(image)))
