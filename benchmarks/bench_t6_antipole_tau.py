"""T6 — Antipole cluster-diameter threshold ablation.

The Antipole tree's one tuning knob is the cluster diameter bound: small
thresholds give many tight clusters (deep tree, expensive build, precise
pruning), large thresholds give few loose clusters (cheap build, coarse
pruning, more leaf scanning).  This sweep quantifies the tradeoff.

Expected shape: build cost falls as the threshold grows; query cost is
U-shaped-ish - very tight and very loose clusterings both query worse
than a mid-range threshold (the paper's default regime).
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import print_experiment
from repro.eval.datasets import gaussian_clusters
from repro.eval.harness import ascii_table, run_knn_workload
from repro.index.antipole import AntipoleTree
from repro.metrics.minkowski import EuclideanDistance

_N = 2048
_K = 10
_N_QUERIES = 20
_FRACTIONS = (0.1, 0.2, 0.3, 0.5, 0.7)


def test_t6_threshold_ablation(clustered_vectors, benchmark):
    vectors = clustered_vectors[:_N]
    ids = list(range(_N))
    queries, _ = gaussian_clusters(
        _N_QUERIES, vectors.shape[1], n_clusters=16, cluster_std=0.04, seed=81
    )

    rows = []
    query_costs = {}
    build_costs = {}
    for fraction in _FRACTIONS:
        tree = AntipoleTree(
            EuclideanDistance(), diameter_fraction=fraction
        ).build(ids, vectors)
        result = run_knn_workload(tree, queries, _K)
        build_costs[fraction] = tree.build_stats.distance_computations
        query_costs[fraction] = result.mean_distance_computations
        rows.append(
            [
                fraction,
                tree.effective_diameter_threshold,
                tree.build_stats.distance_computations,
                tree.build_stats.n_leaves,
                tree.build_stats.depth,
                result.mean_distance_computations,
                result.mean_distance_computations / _N,
            ]
        )
    print_experiment(
        ascii_table(
            [
                "diam fraction",
                "threshold",
                "build dists",
                "leaves",
                "depth",
                "query dists",
                "fraction of scan",
            ],
            rows,
            title=f"T6: Antipole diameter-threshold ablation (N={_N}, k={_K})",
        )
    )

    # Shape checks: build gets cheaper as clusters loosen; every setting
    # still beats the scan on clustered data.
    assert build_costs[0.7] < build_costs[0.1]
    for fraction in _FRACTIONS:
        assert query_costs[fraction] < _N

    tree = AntipoleTree(EuclideanDistance(), diameter_fraction=0.3).build(ids, vectors)
    benchmark(lambda: tree.knn_search(queries[0], _K))
