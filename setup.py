"""Setup shim for legacy editable installs (offline environment: no wheel).

All real metadata lives in pyproject.toml; this file only enables
``pip install -e .`` on toolchains without the ``wheel`` package.
"""

from setuptools import setup

setup()
