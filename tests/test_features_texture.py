"""Tests for GLCM texture features."""

import numpy as np
import pytest

from repro.errors import FeatureError
from repro.features.texture import GLCMFeatures, STAT_NAMES, glcm, haralick_stats
from repro.image import synth


class TestGLCMMatrix:
    def test_known_small_matrix(self):
        codes = np.array([[0, 0, 1], [1, 2, 2], [2, 2, 3]])
        matrix = glcm(codes, 4, (0, 1), symmetric=False, normalize=False)
        # Horizontal pairs: (0,0) (0,1) / (1,2) (2,2) / (2,2) (2,3)
        assert matrix[0, 0] == 1
        assert matrix[0, 1] == 1
        assert matrix[1, 2] == 1
        assert matrix[2, 2] == 2
        assert matrix[2, 3] == 1
        assert matrix.sum() == 6

    def test_symmetric_matrix_is_symmetric(self, rng):
        codes = rng.integers(0, 8, (16, 16))
        matrix = glcm(codes, 8, (1, 1))
        assert np.allclose(matrix, matrix.T)

    def test_normalized_sums_to_one(self, rng):
        codes = rng.integers(0, 8, (16, 16))
        assert glcm(codes, 8, (0, 1)).sum() == pytest.approx(1.0)

    def test_rejects_zero_offset(self):
        with pytest.raises(FeatureError):
            glcm(np.zeros((4, 4), dtype=int), 4, (0, 0))

    def test_rejects_oversized_offset(self):
        with pytest.raises(FeatureError):
            glcm(np.zeros((4, 4), dtype=int), 4, (0, 5))

    def test_constant_image_concentrates_diagonal(self):
        codes = np.full((8, 8), 3, dtype=int)
        matrix = glcm(codes, 8, (0, 1))
        assert matrix[3, 3] == pytest.approx(1.0)


class TestHaralickStats:
    def test_stat_order(self):
        assert STAT_NAMES == ("energy", "entropy", "contrast", "homogeneity", "correlation")

    def test_uniform_matrix_extremes(self):
        levels = 8
        uniform = np.full((levels, levels), 1.0 / levels**2)
        stats = haralick_stats(uniform)
        energy, entropy = stats[0], stats[1]
        assert energy == pytest.approx(1.0 / levels**2)
        assert entropy == pytest.approx(2 * np.log2(levels))

    def test_delta_matrix_extremes(self):
        matrix = np.zeros((8, 8))
        matrix[2, 2] = 1.0
        energy, entropy, contrast, homogeneity, correlation = haralick_stats(matrix)
        assert energy == 1.0
        assert entropy == 0.0
        assert contrast == 0.0
        assert homogeneity == 1.0
        assert correlation == 0.0  # degenerate convention

    def test_contrast_grows_with_off_diagonal_mass(self):
        near = np.zeros((8, 8))
        near[0, 1] = near[1, 0] = 0.5
        far = np.zeros((8, 8))
        far[0, 7] = far[7, 0] = 0.5
        assert haralick_stats(far)[2] > haralick_stats(near)[2]

    def test_correlation_bounds(self, rng):
        codes = rng.integers(0, 8, (32, 32))
        stats = haralick_stats(glcm(codes, 8, (0, 1)))
        assert -1.0 <= stats[4] <= 1.0

    def test_rejects_non_square(self):
        with pytest.raises(FeatureError):
            haralick_stats(np.zeros((3, 4)))


class TestGLCMFeatures:
    def test_mean_aggregate_dim(self):
        assert GLCMFeatures(16, aggregate="mean").dim == 5

    def test_concat_aggregate_dim(self):
        assert GLCMFeatures(16, aggregate="concat").dim == 20

    def test_checkerboard_vs_smooth(self, rng):
        # High-frequency checkerboard: high contrast; smooth noise: low.
        checker = synth.checkerboard(64, 64, 4)
        smooth = synth.value_noise(64, 64, rng, scale=16)
        extractor = GLCMFeatures(16)
        contrast_index = STAT_NAMES.index("contrast")
        assert (
            extractor.extract(checker)[contrast_index]
            > extractor.extract(smooth)[contrast_index]
        )

    def test_regular_texture_has_high_energy(self, rng):
        stripes = synth.stripes(64, 64, 8.0)
        noise = synth.gaussian_noise_image(64, 64, rng)
        extractor = GLCMFeatures(16)
        energy_index = STAT_NAMES.index("energy")
        assert (
            extractor.extract(stripes)[energy_index]
            > extractor.extract(noise)[energy_index]
        )

    def test_concat_distinguishes_stripe_orientation(self):
        horizontal = synth.stripes(64, 64, 8.0, angle=np.pi / 2)
        vertical = synth.stripes(64, 64, 8.0, angle=0.0)
        extractor = GLCMFeatures(16, aggregate="concat")
        d = np.abs(extractor.extract(horizontal) - extractor.extract(vertical)).sum()
        assert d > 0.1

    def test_validates_parameters(self):
        with pytest.raises(FeatureError):
            GLCMFeatures(1)
        with pytest.raises(FeatureError):
            GLCMFeatures(16, offsets=())
        with pytest.raises(FeatureError):
            GLCMFeatures(16, aggregate="max")
