"""Tests for the LAESA pivot-table index."""

import numpy as np
import pytest

from repro.errors import IndexingError
from repro.index.laesa import LAESAIndex
from repro.index.linear import LinearScanIndex
from repro.metrics.base import CountingMetric
from repro.metrics.histogram import ChiSquareDistance, HistogramIntersection
from repro.metrics.minkowski import EuclideanDistance


def _build_pair(rng, n=150, dim=3, n_pivots=8):
    metric = EuclideanDistance()
    vectors = rng.random((n, dim))
    ids = list(range(n))
    linear = LinearScanIndex(metric).build(ids, vectors)
    laesa = LAESAIndex(metric, n_pivots=n_pivots).build(ids, vectors)
    return linear, laesa, vectors


class TestExactness:
    @pytest.mark.parametrize("dim", [1, 2, 4, 8])
    def test_knn_matches_linear_scan(self, rng, dim):
        linear, laesa, _ = _build_pair(rng, dim=dim)
        for _ in range(10):
            query = rng.random(dim)
            expected = [n.distance for n in linear.knn_search(query, 8)]
            got = [n.distance for n in laesa.knn_search(query, 8)]
            assert np.allclose(got, expected)

    @pytest.mark.parametrize("radius", [0.0, 0.1, 0.3, 1.0])
    def test_range_matches_linear_scan(self, rng, radius):
        linear, laesa, _ = _build_pair(rng)
        for _ in range(5):
            query = rng.random(3)
            expected = {n.id for n in linear.range_search(query, radius)}
            assert {n.id for n in laesa.range_search(query, radius)} == expected

    def test_exact_under_histogram_intersection(self, rng):
        from repro.features.base import l1_normalize

        vectors = np.array([l1_normalize(rng.random(16)) for _ in range(100)])
        metric = HistogramIntersection()
        ids = list(range(100))
        linear = LinearScanIndex(metric).build(ids, vectors)
        laesa = LAESAIndex(metric).build(ids, vectors)
        query = l1_normalize(rng.random(16))
        assert [n.id for n in laesa.knn_search(query, 5)] == [
            n.id for n in linear.knn_search(query, 5)
        ]

    def test_duplicates_and_single_item(self):
        metric = EuclideanDistance()
        dup = LAESAIndex(metric).build(list(range(10)), np.zeros((10, 3)))
        assert len(dup.range_search(np.zeros(3), 0.0)) == 10
        single = LAESAIndex(metric).build([3], np.array([[1.0, 1.0]]))
        assert single.knn_search(np.zeros(2), 1)[0].id == 3

    def test_pivot_count_capped_at_n(self, rng):
        laesa = LAESAIndex(EuclideanDistance(), n_pivots=50).build(
            list(range(10)), rng.random((10, 3))
        )
        assert laesa.n_pivots <= 10
        assert len(laesa.pivot_ids) == laesa.n_pivots


class TestCostBehaviour:
    def test_query_cost_is_pivots_plus_survivors(self, rng):
        counter = CountingMetric(EuclideanDistance())
        vectors = rng.random((300, 2))
        laesa = LAESAIndex(counter, n_pivots=8).build(list(range(300)), vectors)
        counter.reset()
        laesa.knn_search(rng.random(2), 5)
        assert counter.count == laesa.last_stats.distance_computations
        # m pivot evaluations are unavoidable; bound checks are free.
        assert laesa.last_stats.distance_computations >= laesa.n_pivots

    def test_prunes_on_low_dim_data(self, rng):
        _, laesa, _ = _build_pair(rng, n=500, dim=2, n_pivots=8)
        total = 0
        for _ in range(10):
            laesa.knn_search(rng.random(2), 5)
            total += laesa.last_stats.distance_computations
        assert total < 0.5 * 10 * 500

    def test_more_pivots_tighter_bounds(self, rng):
        vectors = rng.random((500, 4))
        ids = list(range(500))
        query_set = rng.random((10, 4))
        survivors = {}
        for m in (2, 16):
            laesa = LAESAIndex(EuclideanDistance(), n_pivots=m).build(ids, vectors)
            total = 0
            for query in query_set:
                laesa.knn_search(query, 5)
                # Count only the non-pivot evaluations: the bound's tightness.
                total += laesa.last_stats.distance_computations - laesa.n_pivots
            survivors[m] = total
        assert survivors[16] < survivors[2]

    def test_pruned_accounting(self, rng):
        _, laesa, _ = _build_pair(rng, n=300, dim=2)
        laesa.range_search(rng.random(2), 0.05)
        stats = laesa.last_stats
        assert stats.nodes_pruned > 0


class TestConfiguration:
    def test_rejects_non_metric(self):
        with pytest.raises(IndexingError, match="triangle"):
            LAESAIndex(ChiSquareDistance())

    def test_rejects_bad_pivot_count(self):
        with pytest.raises(IndexingError):
            LAESAIndex(EuclideanDistance(), n_pivots=0)

    def test_deterministic_given_seed(self, rng):
        vectors = rng.random((100, 3))
        ids = list(range(100))
        a = LAESAIndex(EuclideanDistance(), seed=4).build(ids, vectors)
        b = LAESAIndex(EuclideanDistance(), seed=4).build(ids, vectors)
        assert a.pivot_ids == b.pivot_ids
