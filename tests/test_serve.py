"""The serving layer's contracts: parity, coalescing, caching, stats.

The pinned guarantees (see ``repro/serve/scheduler.py``):

* **concurrency parity** — every result served through the scheduler,
  under any interleaving of N threads x M requests, is bit-identical
  (ids, distance floats, tie-breaks, cost counters) to calling
  ``ImageDatabase.query`` / ``range_query`` directly;
* **no dropped or duplicated requests** — one resolved future per
  submission, exactly;
* **cache semantics** — identical resubmissions short-circuit through
  the LRU, hit/miss counters are exact, and hits return the same
  results the engine produced;
* **backpressure and lifecycle** — the bounded admission queue rejects
  loudly, close() drains, submissions after close fail.
"""

import threading
from concurrent.futures import Future

import numpy as np
import pytest

from repro.db.database import ImageDatabase
from repro.errors import QueryError, ServeError
from repro.features.base import PresetSignature
from repro.features.moments import ColorMoments
from repro.features.pipeline import FeatureSchema
from repro.image import synth
from repro.serve.cache import ResultCache
from repro.serve.scheduler import QueryScheduler, ServedResult
from repro.serve.stats import ServiceStats, StatsCollector

_DIM = 8
_N = 140


@pytest.fixture
def vector_db(rng):
    """A seeded vector-only database under the default VP-tree."""
    db = ImageDatabase(FeatureSchema([PresetSignature(_DIM, "sig")]))
    db.add_vectors(rng.random((_N, _DIM)))
    db.build_indexes()
    return db


def _results_equal(served, direct):
    return [(r.image_id, r.distance) for r in served] == [
        (r.image_id, r.distance) for r in direct
    ]


# ---------------------------------------------------------------------------
# ResultCache
# ---------------------------------------------------------------------------
class TestResultCache:
    def test_hit_after_put_and_counters(self, rng):
        cache = ResultCache(4)
        key = cache.key("knn", "sig", 5, rng.random(_DIM))
        assert cache.get(key) is None
        cache.put(key, [])
        assert cache.get(key) == []
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_lru_eviction_order(self, rng):
        cache = ResultCache(2)
        keys = [cache.key("knn", "sig", k, rng.random(_DIM)) for k in range(3)]
        cache.put(keys[0], [])
        cache.put(keys[1], [])
        assert cache.get(keys[0]) == []  # refresh 0 -> 1 becomes LRU
        cache.put(keys[2], [])
        assert cache.get(keys[1]) is None  # evicted
        assert cache.get(keys[0]) == []
        assert len(cache) == 2

    def test_quantization_merges_float_noise(self, rng):
        cache = ResultCache(4, quantize_decimals=6)
        vector = rng.random(_DIM)
        jittered = vector + 1e-9
        assert cache.key("knn", "sig", 5, vector) == cache.key(
            "knn", "sig", 5, jittered
        )
        exact = ResultCache(4, quantize_decimals=None)
        assert exact.key("knn", "sig", 5, vector) != exact.key(
            "knn", "sig", 5, jittered
        )

    def test_key_separates_kind_feature_and_parameter(self, rng):
        cache = ResultCache(4)
        vector = rng.random(_DIM)
        keys = {
            cache.key("knn", "sig", 5, vector),
            cache.key("knn", "sig", 6, vector),
            cache.key("range", "sig", 5.0, vector),
            cache.key("knn", "other", 5, vector),
        }
        assert len(keys) == 4

    def test_negative_zero_folds_into_zero(self):
        cache = ResultCache(4)
        a = np.zeros(_DIM)
        b = np.zeros(_DIM)
        b[0] = -0.0
        assert cache.key("knn", "sig", 5, a) == cache.key("knn", "sig", 5, b)

    def test_disabled_cache_stores_nothing(self, rng):
        cache = ResultCache(0)
        assert not cache.enabled
        key = cache.key("knn", "sig", 5, rng.random(_DIM))
        cache.put(key, [])
        assert cache.get(key) is None
        assert len(cache) == 0

    def test_rejects_bad_configuration(self):
        with pytest.raises(ServeError, match="capacity"):
            ResultCache(-1)
        with pytest.raises(ServeError, match="quantize"):
            ResultCache(4, quantize_decimals=-2)

    def test_returned_list_is_a_copy(self, rng):
        cache = ResultCache(4)
        key = cache.key("knn", "sig", 5, rng.random(_DIM))
        cache.put(key, [])
        first = cache.get(key)
        first.append("garbage")
        assert cache.get(key) == []

    def test_capacity_one_evicts_on_every_new_key(self, rng):
        # The degenerate LRU: each put of a new key displaces the sole
        # occupant, and refreshing via get keeps the occupant in place.
        cache = ResultCache(1)
        first = cache.key("knn", "sig", 5, rng.random(_DIM))
        second = cache.key("knn", "sig", 6, rng.random(_DIM))
        cache.put(first, [])
        assert cache.get(first) == []
        cache.put(second, [])
        assert len(cache) == 1
        assert cache.get(first) is None  # displaced
        assert cache.get(second) == []
        # Re-putting the same key is an update, not an eviction.
        cache.put(second, [])
        assert len(cache) == 1 and cache.get(second) == []

    def test_tuple_stamp_single_shard_movement_invalidates(self, rng):
        # Regression: sharded serving stamps entries with the *tuple* of
        # per-shard generations.  A mutation that touches only one shard
        # moves one tuple slot — (1, 0) -> (1, 1) — and must invalidate,
        # even though a scalar collapse (max, say) would be unchanged at
        # 1 and falsely revalidate the entry.
        cache = ResultCache(4)
        key = cache.key("knn", "sig", 5, rng.random(_DIM))
        cache.put(key, [], generation=(1, 0))
        assert cache.get(key, (1, 0)) == []
        assert max((1, 0)) == max((1, 1))  # the trap a scalar stamp falls into
        assert cache.get(key, (1, 1)) is None
        assert cache.invalidations == 1
        assert len(cache) == 0  # stale entry evicted, not retained

    def test_tuple_stamp_equal_tuples_hit(self, rng):
        cache = ResultCache(4)
        key = cache.key("knn", "sig", 5, rng.random(_DIM))
        cache.put(key, [], generation=(3, 7, 2))
        assert cache.get(key, (3, 7, 2)) == []
        assert cache.invalidations == 0

    def test_same_digest_different_kind_never_collides(self):
        # k=5 and radius=5.0 over the same vector produce the same
        # digest, but kind and parameter live in the key tuple itself:
        # the two entries must coexist.
        cache = ResultCache(4)
        vector = np.ones(_DIM)
        knn_key = cache.key("knn", "sig", 5, vector)
        range_key = cache.key("range", "sig", 5.0, vector)
        assert knn_key[3] == range_key[3]  # identical vector digest
        assert knn_key != range_key
        cache.put(knn_key, [])
        assert cache.get(range_key) is None
        cache.put(range_key, [])
        assert len(cache) == 2
        assert cache.get(knn_key) == [] and cache.get(range_key) == []

    def test_counters_survive_clear(self, rng):
        cache = ResultCache(4)
        key = cache.key("knn", "sig", 5, rng.random(_DIM))
        cache.put(key, [], generation=1)
        assert cache.get(key, generation=1) == []
        cache.get(key, generation=2)  # stale -> invalidation + miss
        cache.clear()
        assert len(cache) == 0
        # Counters are monotonic service telemetry: clear() drops
        # entries, never history.
        assert cache.hits == 1
        assert cache.misses == 1
        assert cache.invalidations == 1
        assert cache.hit_rate == 0.5
        # And the cleared cache keeps counting from where it left off.
        assert cache.get(key) is None
        assert cache.misses == 2

    def test_generation_mismatch_evicts_and_counts(self, rng):
        cache = ResultCache(4)
        key = cache.key("knn", "sig", 5, rng.random(_DIM))
        cache.put(key, [], generation=3)
        assert cache.get(key, generation=3) == []
        assert cache.get(key, generation=4) is None  # stale: evicted
        assert cache.invalidations == 1
        assert len(cache) == 0
        # Recomputed under the new generation, it serves again.
        cache.put(key, [], generation=4)
        assert cache.get(key, generation=4) == []

    def test_unstamped_entries_ignore_generations(self, rng):
        # Static-snapshot compatibility: entries stored without a stamp
        # (and lookups without one) behave exactly as before.
        cache = ResultCache(4)
        key = cache.key("knn", "sig", 5, rng.random(_DIM))
        cache.put(key, [])
        assert cache.get(key, generation=7) == []
        cache.put(key, [], generation=7)
        assert cache.get(key) == []  # lookup without a stamp: no check
        assert cache.invalidations == 0


# ---------------------------------------------------------------------------
# Scheduler: the concurrency parity suite
# ---------------------------------------------------------------------------
class TestSchedulerParityUnderLoad:
    N_THREADS = 8
    REQUESTS_PER_THREAD = 15

    def test_knn_and_range_parity_no_drops_no_duplicates(self, vector_db, rng):
        # A mixed workload: repeated vectors (cache hits), two k values,
        # and interleaved range requests — every served answer must be
        # bit-identical to the direct scalar call.
        pool = rng.random((10, _DIM))
        plans = []
        plan_rng = np.random.default_rng(99)
        for _ in range(self.N_THREADS):
            thread_plan = []
            for _ in range(self.REQUESTS_PER_THREAD):
                pick = int(plan_rng.integers(0, len(pool)))
                if plan_rng.random() < 0.3:
                    thread_plan.append(("range", pick, 0.8))
                else:
                    thread_plan.append(("knn", pick, int(plan_rng.integers(3, 6))))
            plans.append(thread_plan)

        outcomes: dict[tuple[int, int], ServedResult] = {}
        lock = threading.Lock()
        scheduler = QueryScheduler(vector_db, max_batch=8, max_wait_ms=1.0)

        def worker(thread_id: int) -> None:
            for step, (kind, pick, parameter) in enumerate(plans[thread_id]):
                if kind == "knn":
                    future = scheduler.submit_query(pool[pick], parameter)
                else:
                    future = scheduler.submit_range(pool[pick], parameter)
                served = future.result(timeout=30)
                with lock:
                    outcomes[(thread_id, step)] = served

        threads = [
            threading.Thread(target=worker, args=(i,))
            for i in range(self.N_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        scheduler.close()

        # No dropped or duplicated requests: exactly one outcome per plan
        # entry, and the aggregate counters agree.
        assert len(outcomes) == self.N_THREADS * self.REQUESTS_PER_THREAD
        stats = scheduler.stats()
        assert stats.submitted == len(outcomes)
        assert stats.completed == len(outcomes)
        assert stats.rejected == 0
        assert stats.queue_depth == 0

        # Bit-identical parity, request by request.
        for (thread_id, step), served in outcomes.items():
            kind, pick, parameter = plans[thread_id][step]
            if kind == "knn":
                direct = vector_db.query(pool[pick], parameter)
            else:
                direct = vector_db.range_query(pool[pick], parameter)
            assert _results_equal(served.results, direct), (
                f"thread {thread_id} step {step} ({kind}) diverged"
            )

        # Cache hits + engine executions partition the workload.
        assert stats.cache_hits + stats.cache_misses == len(outcomes)
        assert stats.cache_hits > 0  # 10 distinct queries, 120 requests

    def test_per_request_stats_attribution_within_a_group(self, vector_db, rng):
        # Stage four requests before the worker starts: they form one
        # batch and one engine group, yet each future carries exactly the
        # counters its query costs when run alone.
        scheduler = QueryScheduler(
            vector_db, max_batch=4, cache_size=0, autostart=False
        )
        vectors = rng.random((4, _DIM))
        futures = [scheduler.submit_query(vector, 5) for vector in vectors]
        scheduler.start()
        served = [future.result(timeout=10) for future in futures]
        scheduler.close()
        assert [outcome.batch_size for outcome in served] == [4, 4, 4, 4]
        assert scheduler.stats().mean_batch_size == pytest.approx(4.0)
        for vector, outcome in zip(vectors, served):
            vector_db.query(vector, 5)
            expected = vector_db.index_for("sig").last_stats
            assert outcome.stats == expected
            assert not outcome.cache_hit


class TestSchedulerDedup:
    def test_in_flight_duplicates_evaluated_once_and_fanned_out(
        self, vector_db, rng
    ):
        # Stage a formed batch by hand (worker parked, cache off so every
        # duplicate actually reaches the engine group): 6 requests over 2
        # distinct vectors must execute as one engine call of 2 rows.
        scheduler = QueryScheduler(
            vector_db, max_batch=8, cache_size=0, autostart=False
        )
        pool = rng.random((2, _DIM))
        picks = [0, 1, 0, 0, 1, 0]
        futures = [scheduler.submit_query(pool[pick], 5) for pick in picks]
        scheduler.start()
        served = [future.result(timeout=10) for future in futures]
        scheduler.close()

        # One engine row per distinct vector: batch_size reflects the
        # deduped kernel call, and the counter records the riders.
        assert [outcome.batch_size for outcome in served] == [2] * 6
        assert scheduler.stats().dedup_hits == 4
        assert all(not outcome.cache_hit for outcome in served)

        # Bit-identical fan-out: every duplicate equals the direct call.
        for pick, outcome in zip(picks, served):
            direct = vector_db.query(pool[pick], 5)
            assert _results_equal(outcome.results, direct)
            vector_db.query(pool[pick], 5)
            assert outcome.stats == vector_db.index_for("sig").last_stats

    def test_dedup_respects_parameter_boundaries(self, vector_db, rng):
        # The same vector under different k (or kind) is a different
        # request: groups never merge across parameters.
        scheduler = QueryScheduler(
            vector_db, max_batch=8, cache_size=0, autostart=False
        )
        vector = rng.random(_DIM)
        k5 = scheduler.submit_query(vector, 5)
        k6 = scheduler.submit_query(vector, 6)
        ranged = scheduler.submit_range(vector, 0.8)
        scheduler.start()
        outcomes = [f.result(timeout=10) for f in (k5, k6, ranged)]
        scheduler.close()
        assert scheduler.stats().dedup_hits == 0
        assert [outcome.batch_size for outcome in outcomes] == [1, 1, 1]
        assert len(outcomes[0].results) == 5
        assert len(outcomes[1].results) == 6

    def test_dedup_under_concurrent_duplicate_storm(self, vector_db, rng):
        # Many threads hammer a tiny query pool with the cache disabled;
        # whatever batches form, every response must be bit-identical to
        # the direct call and the dedup counter must account exactly for
        # the requests that shared an engine row.
        pool = rng.random((3, _DIM))
        n_threads, per_thread = 8, 12
        outcomes: dict[tuple[int, int], ServedResult] = {}
        lock = threading.Lock()
        scheduler = QueryScheduler(
            vector_db, max_batch=16, max_wait_ms=2.0, cache_size=0
        )
        plan_rng = np.random.default_rng(7)
        plans = [
            [int(plan_rng.integers(0, 3)) for _ in range(per_thread)]
            for _ in range(n_threads)
        ]

        def worker(thread_id: int) -> None:
            for step, pick in enumerate(plans[thread_id]):
                served = scheduler.submit_query(pool[pick], 4).result(timeout=30)
                with lock:
                    outcomes[(thread_id, step)] = served

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        scheduler.close()

        assert len(outcomes) == n_threads * per_thread
        direct = {pick: vector_db.query(pool[pick], 4) for pick in range(3)}
        for (thread_id, step), served in outcomes.items():
            assert _results_equal(served.results, direct[plans[thread_id][step]])
        stats = scheduler.stats()
        assert stats.completed == len(outcomes)
        # 96 requests over 3 distinct vectors: unless every batch formed
        # with a single request, duplicates must have shared rows.
        if stats.mean_batch_size > 1.0:
            assert stats.dedup_hits > 0


class TestSchedulerCache:
    def test_hit_short_circuits_and_is_counted(self, vector_db, rng):
        scheduler = QueryScheduler(vector_db, max_batch=4)
        vector = rng.random(_DIM)
        first = scheduler.submit_query(vector, 5).result(timeout=10)
        second = scheduler.submit_query(vector, 5).result(timeout=10)
        scheduler.close()
        assert not first.cache_hit and second.cache_hit
        assert second.stats is None and second.batch_size == 1
        assert _results_equal(second.results, first.results)
        stats = scheduler.stats()
        assert stats.cache_hits == 1 and stats.cache_misses == 1
        assert stats.completed == 2

    def test_different_k_does_not_hit(self, vector_db, rng):
        scheduler = QueryScheduler(vector_db, max_batch=4)
        vector = rng.random(_DIM)
        scheduler.submit_query(vector, 5).result(timeout=10)
        other = scheduler.submit_query(vector, 6).result(timeout=10)
        scheduler.close()
        assert not other.cache_hit

    def test_cache_disabled(self, vector_db, rng):
        scheduler = QueryScheduler(vector_db, cache_size=0)
        vector = rng.random(_DIM)
        scheduler.submit_query(vector, 5).result(timeout=10)
        second = scheduler.submit_query(vector, 5).result(timeout=10)
        scheduler.close()
        assert not second.cache_hit
        assert scheduler.stats().cache_hits == 0


class TestSchedulerLifecycle:
    def test_bounded_admission_rejects_when_full(self, vector_db, rng):
        # autostart=False keeps the worker parked, so the queue fills
        # deterministically; start() then drains everything admitted.
        scheduler = QueryScheduler(
            vector_db, max_queue=2, cache_size=0, autostart=False
        )
        futures = [
            scheduler.submit_query(rng.random(_DIM), 3) for _ in range(2)
        ]
        with pytest.raises(ServeError, match="queue full"):
            scheduler.submit_query(rng.random(_DIM), 3)
        assert scheduler.stats().rejected == 1
        scheduler.start()
        for future in futures:
            assert isinstance(future.result(timeout=10), ServedResult)
        scheduler.close()

    def test_close_drains_then_rejects(self, vector_db, rng):
        scheduler = QueryScheduler(vector_db, max_wait_ms=0.0)
        future = scheduler.submit_query(rng.random(_DIM), 3)
        scheduler.close()
        assert isinstance(future.result(timeout=10), ServedResult)
        with pytest.raises(ServeError, match="closed"):
            scheduler.submit_query(rng.random(_DIM), 3)
        scheduler.close()  # idempotent

    def test_close_before_start_fails_staged_requests(self, vector_db, rng):
        # A full queue with no worker must not deadlock close(); the
        # staged futures fail loudly instead of hanging their callers.
        scheduler = QueryScheduler(
            vector_db, max_queue=2, cache_size=0, autostart=False
        )
        futures = [scheduler.submit_query(rng.random(_DIM), 3) for _ in range(2)]
        scheduler.close()
        for future in futures:
            with pytest.raises(ServeError, match="closed before starting"):
                future.result(timeout=5)

    def test_context_manager(self, vector_db, rng):
        with QueryScheduler(vector_db) as scheduler:
            assert scheduler.submit_query(rng.random(_DIM), 2).result(timeout=10)
        assert scheduler.is_closed

    def test_invalid_requests_fail_at_submission(self, vector_db, rng):
        scheduler = QueryScheduler(vector_db)
        with pytest.raises(QueryError, match="k must be"):
            scheduler.submit_query(rng.random(_DIM), 0)
        with pytest.raises(QueryError, match="radius"):
            scheduler.submit_range(rng.random(_DIM), -1.0)
        with pytest.raises(QueryError, match="dim"):
            scheduler.submit_query(rng.random(_DIM + 1), 3)
        with pytest.raises(QueryError, match="unknown feature"):
            scheduler.submit_query(rng.random(_DIM), 3, feature="nope")
        scheduler.close()

    def test_empty_database_rejected(self):
        db = ImageDatabase(FeatureSchema([PresetSignature(_DIM, "sig")]))
        scheduler = QueryScheduler(db)
        with pytest.raises(QueryError, match="empty"):
            scheduler.submit_query(np.zeros(_DIM), 1)
        scheduler.close()

    def test_bad_configuration_rejected(self, vector_db):
        with pytest.raises(ServeError, match="max_batch"):
            QueryScheduler(vector_db, max_batch=0)
        with pytest.raises(ServeError, match="max_wait_ms"):
            QueryScheduler(vector_db, max_wait_ms=-1.0)
        with pytest.raises(ServeError, match="max_queue"):
            QueryScheduler(vector_db, max_queue=0)

    def test_image_queries_ride_the_scheduler(self, rng):
        # An image-backed schema: submission extracts on the caller's
        # thread and the served answer matches the direct image query.
        db = ImageDatabase(FeatureSchema([ColorMoments("rgb")]))
        for _ in range(12):
            db.add_image(synth.compose_scene(16, 16, rng))
        query = synth.compose_scene(16, 16, rng)
        with QueryScheduler(db) as scheduler:
            served = scheduler.submit_query(query, 4).result(timeout=10)
        assert _results_equal(served.results, db.query(query, 4))


# ---------------------------------------------------------------------------
# ServiceStats
# ---------------------------------------------------------------------------
class TestServiceStats:
    def test_snapshot_shape_and_serialization(self, vector_db, rng):
        scheduler = QueryScheduler(vector_db, max_batch=4)
        for _ in range(5):
            scheduler.submit_query(rng.random(_DIM), 3).result(timeout=10)
        scheduler.close()
        stats = scheduler.stats()
        assert isinstance(stats, ServiceStats)
        assert stats.completed == 5
        assert stats.batches_formed >= 1
        assert stats.mean_batch_size >= 1.0
        assert stats.mean_group_size >= 1.0
        assert 0.0 <= stats.cache_hit_rate <= 1.0
        assert stats.latency_p50_ms <= stats.latency_p95_ms or (
            stats.latency_p50_ms >= 0.0
        )
        import json

        payload = stats.to_dict()
        assert json.loads(json.dumps(payload)) == payload

    def test_collector_percentiles_nearest_rank(self):
        collector = StatsCollector(window=16)
        for value in [0.010, 0.020, 0.030, 0.040]:
            collector.record_completed(value)
        snapshot = collector.snapshot(queue_depth=0, cache_hits=0, cache_misses=0)
        assert snapshot.latency_p50_ms == pytest.approx(20.0)
        assert snapshot.latency_p95_ms == pytest.approx(40.0)
        assert snapshot.latency_mean_ms == pytest.approx(25.0)

    def test_collector_window_bounds_memory(self):
        collector = StatsCollector(window=4)
        for value in range(100):
            collector.record_completed(float(value))
        snapshot = collector.snapshot(queue_depth=0, cache_hits=0, cache_misses=0)
        # Only the last 4 samples (96..99 s) remain in the window.
        assert snapshot.latency_p50_ms >= 96_000.0

    def test_future_type(self, vector_db, rng):
        with QueryScheduler(vector_db) as scheduler:
            future = scheduler.submit_query(rng.random(_DIM), 2)
            assert isinstance(future, Future)
            assert isinstance(future.result(timeout=10), ServedResult)
