"""Tests for the kd-tree baseline and pivot-selection strategies."""

import numpy as np
import pytest

from repro.errors import IndexingError
from repro.index.kdtree import KDTree
from repro.index.linear import LinearScanIndex
from repro.index.pivot import MaxSpreadPivot, MaxVariancePivot, RandomPivot
from repro.metrics.histogram import HistogramIntersection
from repro.metrics.minkowski import (
    ChebyshevDistance,
    EuclideanDistance,
    ManhattanDistance,
    MinkowskiDistance,
    WeightedEuclideanDistance,
)

ALL_MINKOWSKI = [
    EuclideanDistance(),
    ManhattanDistance(),
    ChebyshevDistance(),
    MinkowskiDistance(3.0),
    WeightedEuclideanDistance(np.array([1.0, 2.0, 0.5])),
]


class TestKDTreeExactness:
    @pytest.mark.parametrize("metric", ALL_MINKOWSKI, ids=lambda m: m.name)
    def test_knn_matches_linear_scan(self, rng, metric):
        vectors = rng.random((120, 3))
        ids = list(range(120))
        linear = LinearScanIndex(metric).build(ids, vectors)
        tree = KDTree(metric).build(ids, vectors)
        for _ in range(5):
            query = rng.random(3)
            expected = [n.distance for n in linear.knn_search(query, 6)]
            got = [n.distance for n in tree.knn_search(query, 6)]
            assert np.allclose(got, expected)

    def test_range_matches_linear_scan(self, rng):
        metric = EuclideanDistance()
        vectors = rng.random((150, 4))
        ids = list(range(150))
        linear = LinearScanIndex(metric).build(ids, vectors)
        tree = KDTree(metric).build(ids, vectors)
        for radius in (0.0, 0.2, 0.6):
            query = rng.random(4)
            assert {n.id for n in tree.range_search(query, radius)} == {
                n.id for n in linear.range_search(query, radius)
            }

    def test_duplicate_points(self):
        vectors = np.zeros((20, 3))
        tree = KDTree(EuclideanDistance()).build(list(range(20)), vectors)
        assert len(tree.range_search(np.zeros(3), 0.0)) == 20

    def test_heavy_ties_on_split_dimension(self):
        # Median == max on the widest axis: exercises the tie-break path.
        vectors = np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 0.0], [1.0, 0.0]])
        tree = KDTree(EuclideanDistance()).build([0, 1, 2, 3], vectors)
        assert len(tree.knn_search(np.array([1.0, 0.0]), 4)) == 4

    def test_prunes_at_low_dim(self, rng):
        vectors = rng.random((500, 2))
        tree = KDTree(EuclideanDistance(), leaf_size=4).build(list(range(500)), vectors)
        tree.knn_search(rng.random(2), 5)
        assert tree.last_stats.distance_computations < 250


class TestKDTreeRestrictions:
    def test_rejects_black_box_metric(self):
        with pytest.raises(IndexingError, match="Minkowski"):
            KDTree(HistogramIntersection())

    def test_rejects_bad_leaf_size(self):
        with pytest.raises(IndexingError):
            KDTree(EuclideanDistance(), leaf_size=0)


class TestPivotStrategies:
    @pytest.mark.parametrize(
        "strategy",
        [RandomPivot(), MaxSpreadPivot(), MaxVariancePivot()],
        ids=lambda s: s.name,
    )
    def test_returns_valid_index(self, rng, strategy):
        vectors = rng.random((30, 4))
        metric = EuclideanDistance()
        row = strategy.select(vectors, metric.distance, rng)
        assert 0 <= row < 30

    @pytest.mark.parametrize(
        "strategy",
        [RandomPivot(), MaxSpreadPivot(), MaxVariancePivot()],
        ids=lambda s: s.name,
    )
    def test_single_item(self, rng, strategy):
        vectors = rng.random((1, 4))
        assert strategy.select(vectors, EuclideanDistance().distance, rng) == 0

    def test_max_spread_picks_periphery(self, rng):
        # A dense blob plus one far outlier: the outlier (or something
        # near it) should be selected.
        blob = rng.normal(0.5, 0.01, (50, 2))
        outlier = np.array([[10.0, 10.0]])
        vectors = np.vstack([blob, outlier])
        row = MaxSpreadPivot().select(vectors, EuclideanDistance().distance, rng)
        assert row == 50

    def test_max_variance_prefers_spread(self):
        # Candidate distances from the corner have higher variance than
        # from the centre of a symmetric cloud.
        rng = np.random.default_rng(0)
        ring = np.array(
            [[np.cos(t), np.sin(t)] for t in np.linspace(0, 2 * np.pi, 40, endpoint=False)]
        )
        center = np.zeros((1, 2))
        vectors = np.vstack([ring, center])
        strategy = MaxVariancePivot(n_candidates=41, sample_size=41)
        row = strategy.select(vectors, EuclideanDistance().distance, rng)
        assert row != 40  # the centre has (near-)zero variance: never chosen

    def test_max_variance_validates(self):
        with pytest.raises(IndexingError):
            MaxVariancePivot(n_candidates=0)
        with pytest.raises(IndexingError):
            MaxVariancePivot(sample_size=1)

    def test_strategies_deterministic_given_rng(self):
        vectors = np.random.default_rng(8).random((40, 3))
        metric = EuclideanDistance()
        for strategy in (RandomPivot(), MaxSpreadPivot(), MaxVariancePivot()):
            a = strategy.select(vectors, metric.distance, np.random.default_rng(1))
            b = strategy.select(vectors, metric.distance, np.random.default_rng(1))
            assert a == b
