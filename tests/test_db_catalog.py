"""Tests for the image catalog."""

import pytest

from repro.db.catalog import Catalog, ImageRecord
from repro.errors import CatalogError


def _record(image_id, label=None, **extra):
    return ImageRecord(
        image_id=image_id,
        name=f"img_{image_id}",
        width=64,
        height=48,
        mode="rgb",
        label=label,
        extra=extra,
    )


class TestRecords:
    def test_round_trip_dict(self):
        record = _record(3, label="cats", source="camera")
        assert ImageRecord.from_dict(record.to_dict()) == record

    def test_from_dict_rejects_malformed(self):
        with pytest.raises(CatalogError, match="malformed"):
            ImageRecord.from_dict({"name": "x"})

    def test_frozen(self):
        record = _record(1)
        with pytest.raises(AttributeError):
            record.name = "other"


class TestCatalogOperations:
    def test_insert_and_get(self):
        catalog = Catalog()
        record = _record(0)
        catalog.insert(record)
        assert catalog.get(0) == record
        assert 0 in catalog
        assert len(catalog) == 1

    def test_duplicate_id_rejected(self):
        catalog = Catalog()
        catalog.insert(_record(0))
        with pytest.raises(CatalogError, match="duplicate"):
            catalog.insert(_record(0))

    def test_get_unknown(self):
        with pytest.raises(CatalogError, match="unknown"):
            Catalog().get(5)

    def test_delete(self):
        catalog = Catalog()
        catalog.insert(_record(0))
        removed = catalog.delete(0)
        assert removed.image_id == 0
        assert 0 not in catalog
        with pytest.raises(CatalogError):
            catalog.delete(0)

    def test_allocate_id_monotonic(self):
        catalog = Catalog()
        first = catalog.allocate_id()
        second = catalog.allocate_id()
        assert second == first + 1

    def test_allocate_respects_inserted_ids(self):
        catalog = Catalog()
        catalog.insert(_record(10))
        assert catalog.allocate_id() == 11

    def test_iteration_order(self):
        catalog = Catalog()
        for image_id in (2, 0, 5):
            catalog.insert(_record(image_id))
        assert [r.image_id for r in catalog] == [2, 0, 5]
        assert catalog.ids == [2, 0, 5]

    def test_by_label_and_counts(self):
        catalog = Catalog()
        catalog.insert(_record(0, label="a"))
        catalog.insert(_record(1, label="b"))
        catalog.insert(_record(2, label="a"))
        catalog.insert(_record(3))
        assert [r.image_id for r in catalog.by_label("a")] == [0, 2]
        assert catalog.labels() == {"a": 2, "b": 1, None: 1}


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path):
        catalog = Catalog()
        catalog.insert(_record(0, label="x", note="hello"))
        catalog.insert(_record(7, label="y"))
        path = tmp_path / "catalog.json"
        catalog.save(path)
        loaded = Catalog.load(path)
        assert len(loaded) == 2
        assert loaded.get(7).label == "y"
        assert loaded.get(0).extra == {"note": "hello"}
        assert loaded.allocate_id() == 8

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(CatalogError, match="does not exist"):
            Catalog.load(tmp_path / "nope.json")

    def test_load_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(CatalogError, match="JSON"):
            Catalog.load(path)
