"""Tests for the ImageDatabase facade."""

import numpy as np
import pytest

from repro.db.database import ImageDatabase
from repro.errors import QueryError
from repro.features.histogram import GrayHistogram, RGBJointHistogram
from repro.features.pipeline import FeatureSchema
from repro.image import synth
from repro.index.linear import LinearScanIndex
from repro.metrics.minkowski import ManhattanDistance


@pytest.fixture
def small_schema():
    return FeatureSchema([RGBJointHistogram(2, working_size=32), GrayHistogram(8, working_size=32)])


@pytest.fixture
def db(small_schema):
    return ImageDatabase(small_schema)


@pytest.fixture
def populated(db, rng):
    red_ids = [
        db.add_image(
            synth.compose_scene(
                32, 32, rng, background=synth.solid(32, 32, (0.7, 0.3, 0.3)),
                palette=[(0.9, 0.1, 0.1)],
            ),
            label="red",
        )
        for _ in range(5)
    ]
    blue_ids = [
        db.add_image(
            synth.compose_scene(
                32, 32, rng, background=synth.solid(32, 32, (0.3, 0.3, 0.7)),
                palette=[(0.1, 0.1, 0.9)],
            ),
            label="blue",
        )
        for _ in range(5)
    ]
    return db, red_ids, blue_ids


class TestInsertion:
    def test_add_image_assigns_ids_and_metadata(self, db, rng):
        image = synth.compose_scene(32, 32, rng)
        image_id = db.add_image(image, label="scenes", name="first", camera="x100")
        assert image_id == 0
        record = db.catalog.get(0)
        assert record.label == "scenes"
        assert record.name == "first"
        assert record.extra == {"camera": "x100"}
        assert record.width == 32
        assert len(db) == 1

    def test_add_images_bulk(self, db, rng):
        pairs = [(synth.compose_scene(32, 32, rng), "a") for _ in range(3)]
        ids = db.add_images(pairs)
        assert ids == [0, 1, 2]

    def test_feature_matrix_shapes(self, populated):
        db, _, _ = populated
        ids, matrix = db.feature_matrix("rgb_hist_2")
        assert len(ids) == 10
        assert matrix.shape == (10, 8)

    def test_delete_image(self, populated):
        db, red_ids, _ = populated
        db.delete_image(red_ids[0])
        assert len(db) == 9
        ids, _ = db.feature_matrix("rgb_hist_2")
        assert red_ids[0] not in ids

    def test_schema_must_be_nonempty(self):
        with pytest.raises(QueryError):
            ImageDatabase(FeatureSchema())


class TestSingleFeatureQueries:
    def test_query_returns_ranked_results(self, populated, rng):
        db, _, _ = populated
        results = db.query(synth.compose_scene(32, 32, rng), k=4)
        assert len(results) == 4
        distances = [r.distance for r in results]
        assert distances == sorted(distances)
        assert all(r.record is not None for r in results)

    def test_query_finds_color_neighbours(self, populated, rng):
        db, red_ids, blue_ids = populated
        red_query = synth.compose_scene(
            32, 32, rng, background=synth.solid(32, 32, (0.7, 0.3, 0.3)),
            palette=[(0.9, 0.1, 0.1)],
        )
        results = db.query(red_query, k=3, feature="rgb_hist_2")
        hits = sum(1 for r in results if r.image_id in red_ids)
        assert hits >= 2

    def test_query_accepts_raw_vector(self, populated):
        db, _, _ = populated
        ids, matrix = db.feature_matrix("rgb_hist_2")
        results = db.query(matrix[0], k=len(db), feature="rgb_hist_2")
        assert results[0].distance == pytest.approx(0.0)
        exact_ids = {r.image_id for r in results if r.distance == 0.0}
        assert ids[0] in exact_ids  # several scenes may share the histogram

    def test_range_query(self, populated):
        db, _, _ = populated
        ids, matrix = db.feature_matrix("rgb_hist_2")
        results = db.range_query(matrix[0], radius=0.0, feature="rgb_hist_2")
        assert any(r.image_id == ids[0] for r in results)

    def test_query_batch_matches_scalar_queries(self, populated, rng):
        db, _, _ = populated
        queries = [synth.compose_scene(32, 32, rng) for _ in range(3)]
        batches = db.query_batch(queries, k=4, feature="rgb_hist_2")
        assert len(batches) == 3
        for query, results in zip(queries, batches):
            scalar = db.query(query, k=4, feature="rgb_hist_2")
            assert [(r.image_id, r.distance) for r in results] == [
                (r.image_id, r.distance) for r in scalar
            ]
            assert all(r.record is not None for r in results)

    def test_query_batch_accepts_raw_vectors(self, populated):
        db, _, _ = populated
        ids, matrix = db.feature_matrix("rgb_hist_2")
        batches = db.query_batch([matrix[0], matrix[1]], k=1, feature="rgb_hist_2")
        assert [len(results) for results in batches] == [1, 1]
        assert batches[0][0].distance == pytest.approx(0.0)

    def test_query_batch_empty_input(self, populated):
        db, _, _ = populated
        assert db.query_batch([], k=3, feature="rgb_hist_2") == []

    def test_range_query_batch_matches_scalar(self, populated):
        db, _, _ = populated
        ids, matrix = db.feature_matrix("rgb_hist_2")
        batches = db.range_query_batch([matrix[0], matrix[1]], 0.2, feature="rgb_hist_2")
        for row, results in zip(matrix[:2], batches):
            scalar = db.range_query(row, 0.2, feature="rgb_hist_2")
            assert [(r.image_id, r.distance) for r in results] == [
                (r.image_id, r.distance) for r in scalar
            ]

    def test_query_batch_on_empty_database_rejected(self, db, rng):
        with pytest.raises(QueryError, match="empty"):
            db.query_batch([synth.compose_scene(32, 32, rng)], k=2)

    def test_unknown_feature_rejected(self, populated, rng):
        db, _, _ = populated
        with pytest.raises(QueryError, match="unknown feature"):
            db.query(synth.compose_scene(32, 32, rng), feature="nope")

    def test_empty_database_rejected(self, db, rng):
        with pytest.raises(QueryError, match="empty"):
            db.query(synth.compose_scene(32, 32, rng))

    def test_wrong_vector_dim_rejected(self, populated):
        db, _, _ = populated
        with pytest.raises(QueryError, match="dim"):
            db.query(np.zeros(5), feature="rgb_hist_2")

    def test_index_rebuilt_after_mutation(self, populated, rng):
        db, red_ids, _ = populated
        db.query(synth.compose_scene(32, 32, rng), k=2)  # builds index
        db.delete_image(red_ids[0])
        results = db.query(synth.compose_scene(32, 32, rng), k=len(db))
        assert red_ids[0] not in [r.image_id for r in results]

    def test_custom_metric_and_index_factory(self, small_schema, rng):
        db = ImageDatabase(
            small_schema,
            metrics={"rgb_hist_2": ManhattanDistance()},
            index_factory=lambda metric: LinearScanIndex(metric),
        )
        db.add_image(synth.compose_scene(32, 32, rng))
        db.add_image(synth.compose_scene(32, 32, rng))
        results = db.query(synth.compose_scene(32, 32, rng), k=1)
        assert len(results) == 1
        assert isinstance(db.index_for("rgb_hist_2"), LinearScanIndex)

    def test_unknown_metric_feature_rejected(self, small_schema):
        with pytest.raises(QueryError, match="unknown features"):
            ImageDatabase(small_schema, metrics={"zzz": ManhattanDistance()})


class TestMultiFeatureQueries:
    def test_query_multi_returns_per_feature_detail(self, populated, rng):
        db, _, _ = populated
        results = db.query_multi(synth.compose_scene(32, 32, rng), k=3)
        assert len(results) == 3
        for result in results:
            assert set(result.per_feature) == {"rgb_hist_2", "gray_hist_8"}

    def test_query_multi_with_weights(self, populated, rng):
        db, _, _ = populated
        query = synth.compose_scene(32, 32, rng)
        color_only = db.query_multi(query, k=5, weights={"rgb_hist_2": 1.0})
        multi = db.query_multi(query, k=5, weights={"rgb_hist_2": 1.0, "gray_hist_8": 1.0})
        assert len(color_only) == len(multi) == 5

    def test_query_multi_validation(self, populated, rng):
        db, _, _ = populated
        query = synth.compose_scene(32, 32, rng)
        with pytest.raises(QueryError, match="positive"):
            db.query_multi(query, weights={"rgb_hist_2": 0.0})
        with pytest.raises(QueryError, match="k must be"):
            db.query_multi(query, k=0)
        with pytest.raises(QueryError, match="requires an Image"):
            db.query_multi(np.zeros(8), k=1)

    def test_query_fused_methods(self, populated, rng):
        db, _, _ = populated
        query = synth.compose_scene(32, 32, rng)
        for method in ("borda", "rrf"):
            results = db.query_fused(query, k=3, method=method)
            assert len(results) == 3
        with pytest.raises(QueryError, match="method"):
            db.query_fused(query, method="median")


class TestPersistence:
    def test_save_load_round_trip(self, populated, small_schema, tmp_path, rng):
        db, _, _ = populated
        query = synth.compose_scene(32, 32, rng)
        before = [r.image_id for r in db.query(query, k=5)]

        db.save(tmp_path)
        loaded = ImageDatabase.load(tmp_path, small_schema)
        after = [r.image_id for r in loaded.query(query, k=5)]
        assert before == after
        assert len(loaded) == len(db)
        assert loaded.catalog.get(0).label == db.catalog.get(0).label

    def test_load_rejects_schema_mismatch(self, populated, tmp_path):
        db, _, _ = populated
        db.save(tmp_path)
        other = FeatureSchema([GrayHistogram(8, working_size=32)])
        with pytest.raises(QueryError, match="do not match"):
            ImageDatabase.load(tmp_path, other)

    def test_load_rejects_dim_mismatch(self, populated, tmp_path):
        db, _, _ = populated
        db.save(tmp_path)
        other = FeatureSchema(
            [RGBJointHistogram(3, working_size=32), GrayHistogram(8, working_size=32)]
        )
        # Same count, different names/dims -> name check fires first.
        with pytest.raises(QueryError):
            ImageDatabase.load(tmp_path, other)
