"""Exposition parser/validator: render → parse must be the identity.

The registry's ``render`` and the parser in the same module are
independent implementations of Prometheus text format 0.0.4; this file
pins them against each other.  Roundtrip tests cover the escaping
corners (backslash, quote, newline in label values); the negative
cases pin that the validator actually rejects malformed and
semantically broken expositions — it guards the CI live-scrape check,
so a lenient validator would be worse than none.
"""

import numpy as np
import pytest

from repro.db.database import ImageDatabase
from repro.errors import ServeError
from repro.features.base import PresetSignature
from repro.features.pipeline import FeatureSchema
from repro.serve.metrics import (
    MetricsRegistry,
    parse_exposition,
    read_process_stats,
    validate_exposition,
)
from repro.serve.scheduler import QueryScheduler


class TestRoundtrip:
    def test_counter_gauge_roundtrip(self):
        registry = MetricsRegistry()
        requests = registry.counter("reqs_total", "requests", ("route",))
        depth = registry.gauge("queue_depth", "queue depth")
        requests.inc(3, route="knn")
        requests.inc(1, route="range")
        depth.set(7.5)
        families = validate_exposition(registry.render())
        samples = {
            (name, tuple(sorted(labels.items()))): value
            for name, labels, value in families["reqs_total"]["samples"]
        }
        assert samples[("reqs_total", (("route", "knn"),))] == 3.0
        assert samples[("reqs_total", (("route", "range"),))] == 1.0
        assert families["queue_depth"]["samples"] == [("queue_depth", {}, 7.5)]
        assert families["reqs_total"]["type"] == "counter"
        assert families["queue_depth"]["help"] == "queue depth"

    def test_histogram_roundtrip_preserves_buckets(self):
        registry = MetricsRegistry()
        latency = registry.histogram(
            "lat_seconds", "latency", ("route",), buckets=(0.01, 0.1, 1.0)
        )
        for value in (0.005, 0.05, 0.5, 5.0):
            latency.observe(value, route="knn")
        families = validate_exposition(registry.render())
        buckets = {
            labels["le"]: value
            for name, labels, value in families["lat_seconds"]["samples"]
            if name == "lat_seconds_bucket"
        }
        assert buckets["0.01"] == 1.0
        assert buckets["0.1"] == 2.0
        assert buckets["1"] == 3.0
        assert buckets["+Inf"] == 4.0
        count = next(
            value
            for name, _labels, value in families["lat_seconds"]["samples"]
            if name == "lat_seconds_count"
        )
        assert count == 4.0

    def test_label_escaping_roundtrips(self):
        registry = MetricsRegistry()
        weird = registry.counter("weird_total", "weird labels", ("path",))
        value = 'a"b\\c\nnewline'
        weird.inc(2, path=value)
        families = parse_exposition(registry.render())
        ((_name, labels, count),) = families["weird_total"]["samples"]
        assert labels["path"] == value
        assert count == 2.0

    def test_live_scheduler_render_validates(self, rng):
        db = ImageDatabase(FeatureSchema([PresetSignature(8, "sig")]))
        db.add_vectors(rng.random((48, 8)))
        db.build_indexes()
        with QueryScheduler(db, max_wait_ms=0.5) as scheduler:
            scheduler.submit_query(rng.random(8), 4).result(5)
            families = validate_exposition(scheduler.render_metrics())
        assert "repro_requests_total" in families
        assert "repro_stage_seconds" in families
        assert "repro_process" in families
        assert "repro_process_gc_collections" in families


class TestNegativeCases:
    def test_sample_without_type_rejected(self):
        with pytest.raises(ServeError, match="no preceding # TYPE"):
            parse_exposition("orphan_metric 1\n")

    def test_malformed_label_block_rejected(self):
        text = '# HELP m x\n# TYPE m counter\nm{route=knn} 1\n'
        with pytest.raises(ServeError, match="malformed label"):
            parse_exposition(text)

    def test_unterminated_label_value_rejected(self):
        text = '# HELP m x\n# TYPE m counter\nm{route="knn} 1\n'
        with pytest.raises(ServeError, match="unterminated|unbalanced"):
            parse_exposition(text)

    def test_non_numeric_value_rejected(self):
        text = "# HELP m x\n# TYPE m counter\nm lots\n"
        with pytest.raises(ServeError, match="non-numeric"):
            parse_exposition(text)

    def test_unknown_type_rejected(self):
        with pytest.raises(ServeError, match="unknown metric type"):
            parse_exposition("# TYPE m sparkline\n")

    def test_missing_help_rejected_by_validator(self):
        text = "# TYPE m counter\nm 1\n"
        parse_exposition(text)  # grammatical — but not semantic:
        with pytest.raises(ServeError, match="no # HELP"):
            validate_exposition(text)

    def test_duplicate_label_set_rejected(self):
        text = (
            "# HELP m x\n# TYPE m counter\n"
            'm{route="knn"} 1\nm{route="knn"} 2\n'
        )
        with pytest.raises(ServeError, match="duplicate sample"):
            validate_exposition(text)

    def test_histogram_missing_inf_bucket_rejected(self):
        text = (
            "# HELP h x\n# TYPE h histogram\n"
            'h_bucket{le="0.1"} 1\nh_sum 0.05\nh_count 1\n'
        )
        with pytest.raises(ServeError, match=r"\+Inf"):
            validate_exposition(text)

    def test_histogram_noncumulative_buckets_rejected(self):
        text = (
            "# HELP h x\n# TYPE h histogram\n"
            'h_bucket{le="0.1"} 5\nh_bucket{le="1"} 3\n'
            'h_bucket{le="+Inf"} 5\nh_sum 1\nh_count 5\n'
        )
        with pytest.raises(ServeError, match="not cumulative"):
            validate_exposition(text)

    def test_histogram_inf_count_mismatch_rejected(self):
        text = (
            "# HELP h x\n# TYPE h histogram\n"
            'h_bucket{le="0.1"} 1\nh_bucket{le="+Inf"} 2\nh_sum 1\nh_count 3\n'
        )
        with pytest.raises(ServeError, match="!= _count"):
            validate_exposition(text)


class TestProcessStats:
    def test_figures_are_present_and_sane(self):
        stats = read_process_stats()
        assert stats["rss_bytes"] > 0
        assert stats["open_fds"] >= 0
        assert stats["threads"] >= 1
        assert len(stats["gc_collections"]) == 3
        assert all(c >= 0 for c in stats["gc_collections"])

    def test_figures_land_in_scheduler_exposition(self, rng):
        db = ImageDatabase(FeatureSchema([PresetSignature(8, "sig")]))
        db.add_vectors(rng.random((16, 8)))
        db.build_indexes()
        with QueryScheduler(db) as scheduler:
            text = scheduler.render_metrics()
        for figure in ("rss_bytes", "open_fds", "threads"):
            assert f'repro_process{{figure="{figure}"}}' in text
        assert 'repro_process_gc_collections{generation="0"}' in text
