"""Tests for the command-line interface: demo -> build -> info -> query."""

import numpy as np
import pytest

from repro.cli import iter_image_files, main, read_image_file
from repro.errors import ReproError
from repro.image.core import Image
from repro.image.io_ppm import write_ppm


@pytest.fixture(scope="module")
def demo_dir(tmp_path_factory):
    """A small synthetic corpus written once for the whole module."""
    directory = tmp_path_factory.mktemp("corpus")
    code = main(
        ["demo", str(directory), "--per-class", "2", "--size", "32", "--seed", "5"]
    )
    assert code == 0
    return directory


@pytest.fixture(scope="module")
def built_db(demo_dir, tmp_path_factory):
    db_dir = tmp_path_factory.mktemp("db") / "corpus.db"
    code = main(
        ["--working-size", "32", "build", str(demo_dir), "--db", str(db_dir)]
    )
    assert code == 0
    return db_dir


class TestFileHelpers:
    def test_read_image_file_roundtrip(self, tmp_path, rng):
        image = Image(rng.random((8, 10, 3)))
        write_ppm(image, tmp_path / "x.ppm")
        loaded = read_image_file(tmp_path / "x.ppm")
        assert loaded.allclose(image, atol=1 / 255)

    def test_read_image_file_rejects_unknown_extension(self, tmp_path):
        (tmp_path / "x.jpeg").write_bytes(b"not really")
        with pytest.raises(ReproError, match="unsupported"):
            read_image_file(tmp_path / "x.jpeg")

    def test_iter_image_files_labels_by_directory(self, tmp_path, rng):
        (tmp_path / "cats").mkdir()
        image = Image(rng.random((4, 4)))
        write_ppm(image, tmp_path / "cats" / "a.pgm")
        write_ppm(image, tmp_path / "loose.pgm")
        found = iter_image_files(tmp_path)
        labels = {path.name: label for path, label in found}
        assert labels == {"a.pgm": "cats", "loose.pgm": ""}

    def test_iter_image_files_rejects_missing_directory(self, tmp_path):
        with pytest.raises(ReproError, match="directory"):
            iter_image_files(tmp_path / "nope")


class TestDemoCommand:
    def test_writes_class_directories(self, demo_dir):
        from repro.eval.datasets import CORPUS_CLASS_NAMES

        subdirs = {p.name for p in demo_dir.iterdir() if p.is_dir()}
        assert subdirs == set(CORPUS_CLASS_NAMES)
        files = list(demo_dir.rglob("*.ppm"))
        assert len(files) == 2 * len(CORPUS_CLASS_NAMES)

    def test_bmp_format(self, tmp_path):
        code = main(
            ["demo", str(tmp_path / "c"), "--per-class", "1", "--size", "16",
             "--format", "bmp"]
        )
        assert code == 0
        assert len(list((tmp_path / "c").rglob("*.bmp"))) == 8

    def test_demo_images_are_readable(self, demo_dir):
        path, label = iter_image_files(demo_dir)[0]
        image = read_image_file(path)
        assert image.width == 32
        assert label in str(path)


class TestBuildAndInfo:
    def test_build_creates_database(self, built_db):
        assert (built_db / "catalog.json").exists()
        assert (built_db / "config.json").exists()

    def test_info_reports_labels(self, built_db, capsys):
        code = main(["--working-size", "32", "info", "--db", str(built_db)])
        assert code == 0
        out = capsys.readouterr().out
        assert "red_scenes" in out
        assert "features:" in out

    def test_build_empty_directory_fails_cleanly(self, tmp_path, capsys):
        code = main(["build", str(tmp_path), "--db", str(tmp_path / "db")])
        assert code == 1
        assert "no images" in capsys.readouterr().err


class TestQueryCommand:
    def test_query_finds_same_class_neighbours(self, demo_dir, built_db, capsys):
        query_file = next(demo_dir.glob("checkerboards/*.ppm"))
        code = main(
            ["--working-size", "32", "query", str(query_file),
             "--db", str(built_db), "-k", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        # The query image itself is in the database: distance 0, same label.
        assert "checkerboards" in out
        assert "distance computations" in out

    def test_query_with_explicit_feature(self, demo_dir, built_db, capsys):
        query_file = next(demo_dir.glob("noise_fine/*.ppm"))
        code = main(
            ["--working-size", "32", "query", str(query_file),
             "--db", str(built_db), "-k", "2", "--feature", "wavelet_sig_3l"]
        )
        assert code == 0
        assert "wavelet_sig_3l" in capsys.readouterr().out

    def test_query_batch_over_directory(self, demo_dir, built_db, capsys):
        code = main(
            ["--working-size", "32", "query-batch",
             str(demo_dir / "checkerboards"), "--db", str(built_db), "-k", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        # Every query image is itself in the database: best match at 0.
        assert "checkerboards" in out
        assert "queries/s" in out
        assert "distance computations" in out

    def test_query_batch_explicit_files(self, demo_dir, built_db, capsys):
        files = sorted(demo_dir.glob("noise_fine/*.ppm"))[:2]
        code = main(
            ["--working-size", "32", "query-batch", str(files[0]), str(files[1]),
             "--db", str(built_db), "-k", "1", "--feature", "wavelet_sig_3l"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "wavelet_sig_3l" in out
        assert "2 queries" in out

    def test_query_batch_unknown_file_fails_cleanly(self, built_db, capsys):
        code = main(
            ["--working-size", "32", "query-batch", "missing.png",
             "--db", str(built_db)]
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_query_unknown_file_fails_cleanly(self, built_db, capsys):
        code = main(
            ["--working-size", "32", "query", "missing.png", "--db", str(built_db)]
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_module_entry_point_exists(self):
        import repro.__main__  # noqa: F401  (import must succeed)


class TestServeHelp:
    def test_serve_help_epilog_points_at_docs(self, capsys):
        # The epilog is the discoverability hook for the serving docs
        # and the documented SIGTERM exit-code contract.
        with pytest.raises(SystemExit) as exit_info:
            main(["serve", "--help"])
        assert exit_info.value.code == 0
        out = capsys.readouterr().out
        assert "docs/serving.md" in out
        assert "docs/mutability.md" in out
        assert "SIGTERM" in out and "code 0" in out

    def test_serve_help_lists_mutation_endpoints(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        out = capsys.readouterr().out
        assert "/add" in out and "/remove" in out


class TestRecoverCommand:
    @pytest.fixture()
    def durable_root(self, built_db, tmp_path):
        """A serving root with one journaled (un-compacted) remove."""
        from repro.cli import _make_schema
        from repro.db.database import ImageDatabase
        from repro.db.journal import JournalRecord
        from repro.db.recovery import open_serving_root

        db = ImageDatabase.load(built_db, _make_schema(32))
        root = tmp_path / "root"
        db, journals, _ = open_serving_root(root, db)
        victim = sorted(db.catalog.ids)[0]
        db.remove([victim])
        seq = journals.next_seq()
        journals.append_records(
            {0: JournalRecord.remove(seq, [victim])}, sync=True
        )
        journals.close()
        return root, victim, len(db)

    def test_recover_prints_replay_summary(self, durable_root, capsys):
        root, _victim, n_items = durable_root
        code = main(["--working-size", "32", "recover", "--journal", str(root)])
        assert code == 0
        out = capsys.readouterr().out
        assert f"recovered {n_items} items" in out
        assert "1 removes replayed" in out

    def test_recover_export_is_loadable(self, durable_root, tmp_path, capsys):
        from repro.cli import _make_schema
        from repro.db.database import ImageDatabase

        root, victim, n_items = durable_root
        export = tmp_path / "exported.db"
        code = main(
            [
                "--working-size",
                "32",
                "recover",
                "--journal",
                str(root),
                "--export",
                str(export),
            ]
        )
        assert code == 0
        assert "exported" in capsys.readouterr().out
        loaded = ImageDatabase.load(export, _make_schema(32))
        assert len(loaded) == n_items
        assert victim not in loaded.catalog.ids

    def test_recover_compact_folds_and_resets(self, durable_root, capsys):
        from repro.db.journal import Journal, JournalSet

        root, _victim, _n_items = durable_root
        code = main(
            ["--working-size", "32", "recover", "--journal", str(root), "--compact"]
        )
        assert code == 0
        assert "compacted into snap-" in capsys.readouterr().out
        for path in JournalSet.existing_paths(root):
            assert not Journal.scan(path).records
        # A second recover replays nothing: the remove is in the snapshot.
        code = main(["--working-size", "32", "recover", "--journal", str(root)])
        assert code == 0
        assert "0 removes replayed" in capsys.readouterr().out

    def test_recover_wrong_schema_refused(self, tmp_path, rng, capsys):
        # A root written under a schema the CLI does not serve must be
        # refused rather than misread.
        from repro.db.database import ImageDatabase
        from repro.db.recovery import open_serving_root
        from repro.features.base import PresetSignature
        from repro.features.pipeline import FeatureSchema

        db = ImageDatabase(FeatureSchema([PresetSignature(6)]))
        db.add_vectors(rng.random((4, 6)))
        root = tmp_path / "alien-root"
        _db, journals, _ = open_serving_root(root, db)
        journals.close()
        code = main(["--working-size", "32", "recover", "--journal", str(root)])
        assert code == 1
        assert "fingerprint" in capsys.readouterr().err

    def test_recover_help_points_at_docs(self, capsys):
        with pytest.raises(SystemExit) as exit_info:
            main(["recover", "--help"])
        assert exit_info.value.code == 0
        assert "docs/durability.md" in capsys.readouterr().out
