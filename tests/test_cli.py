"""Tests for the command-line interface: demo -> build -> info -> query."""

import numpy as np
import pytest

from repro.cli import iter_image_files, main, read_image_file
from repro.errors import ReproError
from repro.image.core import Image
from repro.image.io_ppm import write_ppm


@pytest.fixture(scope="module")
def demo_dir(tmp_path_factory):
    """A small synthetic corpus written once for the whole module."""
    directory = tmp_path_factory.mktemp("corpus")
    code = main(
        ["demo", str(directory), "--per-class", "2", "--size", "32", "--seed", "5"]
    )
    assert code == 0
    return directory


@pytest.fixture(scope="module")
def built_db(demo_dir, tmp_path_factory):
    db_dir = tmp_path_factory.mktemp("db") / "corpus.db"
    code = main(
        ["--working-size", "32", "build", str(demo_dir), "--db", str(db_dir)]
    )
    assert code == 0
    return db_dir


class TestFileHelpers:
    def test_read_image_file_roundtrip(self, tmp_path, rng):
        image = Image(rng.random((8, 10, 3)))
        write_ppm(image, tmp_path / "x.ppm")
        loaded = read_image_file(tmp_path / "x.ppm")
        assert loaded.allclose(image, atol=1 / 255)

    def test_read_image_file_rejects_unknown_extension(self, tmp_path):
        (tmp_path / "x.jpeg").write_bytes(b"not really")
        with pytest.raises(ReproError, match="unsupported"):
            read_image_file(tmp_path / "x.jpeg")

    def test_iter_image_files_labels_by_directory(self, tmp_path, rng):
        (tmp_path / "cats").mkdir()
        image = Image(rng.random((4, 4)))
        write_ppm(image, tmp_path / "cats" / "a.pgm")
        write_ppm(image, tmp_path / "loose.pgm")
        found = iter_image_files(tmp_path)
        labels = {path.name: label for path, label in found}
        assert labels == {"a.pgm": "cats", "loose.pgm": ""}

    def test_iter_image_files_rejects_missing_directory(self, tmp_path):
        with pytest.raises(ReproError, match="directory"):
            iter_image_files(tmp_path / "nope")


class TestDemoCommand:
    def test_writes_class_directories(self, demo_dir):
        from repro.eval.datasets import CORPUS_CLASS_NAMES

        subdirs = {p.name for p in demo_dir.iterdir() if p.is_dir()}
        assert subdirs == set(CORPUS_CLASS_NAMES)
        files = list(demo_dir.rglob("*.ppm"))
        assert len(files) == 2 * len(CORPUS_CLASS_NAMES)

    def test_bmp_format(self, tmp_path):
        code = main(
            ["demo", str(tmp_path / "c"), "--per-class", "1", "--size", "16",
             "--format", "bmp"]
        )
        assert code == 0
        assert len(list((tmp_path / "c").rglob("*.bmp"))) == 8

    def test_demo_images_are_readable(self, demo_dir):
        path, label = iter_image_files(demo_dir)[0]
        image = read_image_file(path)
        assert image.width == 32
        assert label in str(path)


class TestBuildAndInfo:
    def test_build_creates_database(self, built_db):
        assert (built_db / "catalog.json").exists()
        assert (built_db / "config.json").exists()

    def test_info_reports_labels(self, built_db, capsys):
        code = main(["--working-size", "32", "info", "--db", str(built_db)])
        assert code == 0
        out = capsys.readouterr().out
        assert "red_scenes" in out
        assert "features:" in out

    def test_build_empty_directory_fails_cleanly(self, tmp_path, capsys):
        code = main(["build", str(tmp_path), "--db", str(tmp_path / "db")])
        assert code == 1
        assert "no images" in capsys.readouterr().err


class TestQueryCommand:
    def test_query_finds_same_class_neighbours(self, demo_dir, built_db, capsys):
        query_file = next(demo_dir.glob("checkerboards/*.ppm"))
        code = main(
            ["--working-size", "32", "query", str(query_file),
             "--db", str(built_db), "-k", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        # The query image itself is in the database: distance 0, same label.
        assert "checkerboards" in out
        assert "distance computations" in out

    def test_query_with_explicit_feature(self, demo_dir, built_db, capsys):
        query_file = next(demo_dir.glob("noise_fine/*.ppm"))
        code = main(
            ["--working-size", "32", "query", str(query_file),
             "--db", str(built_db), "-k", "2", "--feature", "wavelet_sig_3l"]
        )
        assert code == 0
        assert "wavelet_sig_3l" in capsys.readouterr().out

    def test_query_batch_over_directory(self, demo_dir, built_db, capsys):
        code = main(
            ["--working-size", "32", "query-batch",
             str(demo_dir / "checkerboards"), "--db", str(built_db), "-k", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        # Every query image is itself in the database: best match at 0.
        assert "checkerboards" in out
        assert "queries/s" in out
        assert "distance computations" in out

    def test_query_batch_explicit_files(self, demo_dir, built_db, capsys):
        files = sorted(demo_dir.glob("noise_fine/*.ppm"))[:2]
        code = main(
            ["--working-size", "32", "query-batch", str(files[0]), str(files[1]),
             "--db", str(built_db), "-k", "1", "--feature", "wavelet_sig_3l"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "wavelet_sig_3l" in out
        assert "2 queries" in out

    def test_query_batch_unknown_file_fails_cleanly(self, built_db, capsys):
        code = main(
            ["--working-size", "32", "query-batch", "missing.png",
             "--db", str(built_db)]
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_query_unknown_file_fails_cleanly(self, built_db, capsys):
        code = main(
            ["--working-size", "32", "query", "missing.png", "--db", str(built_db)]
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_module_entry_point_exists(self):
        import repro.__main__  # noqa: F401  (import must succeed)


class TestServeHelp:
    def test_serve_help_epilog_points_at_docs(self, capsys):
        # The epilog is the discoverability hook for the serving docs
        # and the documented SIGTERM exit-code contract.
        with pytest.raises(SystemExit) as exit_info:
            main(["serve", "--help"])
        assert exit_info.value.code == 0
        out = capsys.readouterr().out
        assert "docs/serving.md" in out
        assert "docs/mutability.md" in out
        assert "SIGTERM" in out and "code 0" in out

    def test_serve_help_lists_mutation_endpoints(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        out = capsys.readouterr().out
        assert "/add" in out and "/remove" in out
