"""Tests for geometric/photometric transforms."""

import numpy as np
import pytest

from repro.errors import ImageError
from repro.image import transforms as tf
from repro.image.core import Image


class TestGeometric:
    def test_rotate90_four_times_is_identity(self, rgb_image):
        out = rgb_image
        for _ in range(4):
            out = tf.rotate90(out)
        assert out == rgb_image

    def test_rotate90_moves_corner(self):
        img = Image(np.array([[1.0, 0.0], [0.0, 0.0]]))
        rotated = tf.rotate90(img)  # counter-clockwise
        assert rotated.pixels[1, 0] == 1.0

    def test_rotate90_k_equivalence(self, rgb_image):
        assert tf.rotate90(rgb_image, 2) == tf.rotate90(tf.rotate90(rgb_image))
        assert tf.rotate90(rgb_image, -1) == tf.rotate90(rgb_image, 3)

    def test_flips_are_involutions(self, rgb_image):
        assert tf.flip_horizontal(tf.flip_horizontal(rgb_image)) == rgb_image
        assert tf.flip_vertical(tf.flip_vertical(rgb_image)) == rgb_image

    def test_flip_horizontal_mirrors_columns(self):
        img = Image(np.array([[0.0, 1.0]]))
        assert tf.flip_horizontal(img).pixels[0, 0] == 1.0

    def test_crop_extracts_rectangle(self, gray_image):
        out = tf.crop(gray_image, 4, 2, 10, 6)
        assert out.shape == (6, 10)
        assert out.pixels[0, 0] == gray_image.pixels[2, 4]

    def test_crop_validates_bounds(self, gray_image):
        with pytest.raises(ImageError, match="exceeds"):
            tf.crop(gray_image, 30, 30, 10, 10)
        with pytest.raises(ImageError, match="positive"):
            tf.crop(gray_image, 0, 0, 0, 5)

    def test_center_crop_fraction(self, gray_image):
        out = tf.center_crop(gray_image, 0.5)
        assert out.shape == (16, 16)
        with pytest.raises(ImageError):
            tf.center_crop(gray_image, 0.0)


class TestPhotometric:
    def test_brightness_shifts_mean(self, gray_image):
        brighter = tf.adjust_brightness(gray_image, 0.2)
        assert brighter.pixels.mean() > gray_image.pixels.mean()

    def test_brightness_clips(self):
        img = Image.full(4, 4, 0.9)
        assert tf.adjust_brightness(img, 0.5).pixels.max() == 1.0

    def test_contrast_one_is_identity(self, gray_image):
        assert tf.adjust_contrast(gray_image, 1.0).allclose(gray_image)

    def test_contrast_zero_flattens(self, gray_image):
        out = tf.adjust_contrast(gray_image, 0.0)
        assert np.allclose(out.pixels, 0.5)

    def test_contrast_rejects_negative(self, gray_image):
        with pytest.raises(ImageError):
            tf.adjust_contrast(gray_image, -1.0)

    def test_gamma_one_is_identity(self, gray_image):
        assert tf.adjust_gamma(gray_image, 1.0).allclose(gray_image)

    def test_gamma_below_one_brightens(self, gray_image):
        out = tf.adjust_gamma(gray_image, 0.5)
        interior = gray_image.pixels > 0
        assert np.all(out.pixels[interior] >= gray_image.pixels[interior])

    def test_gamma_rejects_nonpositive(self, gray_image):
        with pytest.raises(ImageError):
            tf.adjust_gamma(gray_image, 0.0)


class TestNoiseAndOcclusion:
    def test_gaussian_noise_changes_pixels(self, gray_image, rng):
        out = tf.add_gaussian_noise(gray_image, rng, 0.1)
        assert out != gray_image
        assert out.pixels.min() >= 0.0 and out.pixels.max() <= 1.0

    def test_gaussian_noise_zero_std_identity(self, gray_image, rng):
        assert tf.add_gaussian_noise(gray_image, rng, 0.0) == gray_image

    def test_salt_pepper_fraction(self, rng):
        img = Image.full(32, 32, 0.5)
        out = tf.add_salt_pepper(img, rng, 0.1)
        corrupted = np.sum((out.pixels == 0.0) | (out.pixels == 1.0))
        assert corrupted == round(0.1 * 32 * 32)

    def test_salt_pepper_zero_fraction(self, gray_image, rng):
        assert tf.add_salt_pepper(gray_image, rng, 0.0) == gray_image

    def test_salt_pepper_validates_fraction(self, gray_image, rng):
        with pytest.raises(ImageError):
            tf.add_salt_pepper(gray_image, rng, 1.5)

    def test_salt_pepper_rgb_sets_whole_pixel(self, rng):
        img = Image(np.full((16, 16, 3), 0.5))
        out = tf.add_salt_pepper(img, rng, 0.2)
        changed = np.any(out.pixels != 0.5, axis=2)
        pure = np.all((out.pixels == 0.0) | (out.pixels == 1.0), axis=2)
        assert np.array_equal(changed, pure)

    def test_occlude_paints_block(self, gray_image):
        out = tf.occlude(gray_image, 4, 4, 8, 8, color=0.0)
        assert np.all(out.pixels[4:12, 4:12] == 0.0)
        assert out.pixels[0, 0] == gray_image.pixels[0, 0]

    def test_occlude_validates(self, gray_image):
        with pytest.raises(ImageError):
            tf.occlude(gray_image, 30, 30, 10, 10)
