"""Tests for the LRU buffer pool."""

import pytest

from repro.db.bufferpool import BufferPool
from repro.errors import StoreError


class _FetchRecorder:
    """Fetch callback that records which pages were loaded."""

    def __init__(self):
        self.fetched = []

    def __call__(self, page_id):
        self.fetched.append(page_id)
        return f"page-{page_id}"


class TestBasics:
    def test_miss_then_hit(self):
        fetch = _FetchRecorder()
        pool = BufferPool(4, fetch)
        assert pool.get(1) == "page-1"
        assert pool.get(1) == "page-1"
        assert pool.hits == 1
        assert pool.misses == 1
        assert fetch.fetched == [1]

    def test_capacity_validated(self):
        with pytest.raises(StoreError):
            BufferPool(0, lambda p: p)

    def test_hit_ratio(self):
        pool = BufferPool(4, _FetchRecorder())
        assert pool.hit_ratio() == 0.0
        pool.get(1)
        pool.get(1)
        pool.get(1)
        assert pool.hit_ratio() == pytest.approx(2 / 3)

    def test_reset_counters_keeps_contents(self):
        fetch = _FetchRecorder()
        pool = BufferPool(4, fetch)
        pool.get(1)
        pool.reset_counters()
        assert pool.misses == 0
        pool.get(1)  # still resident
        assert pool.hits == 1
        assert fetch.fetched == [1]


class TestLRUEviction:
    def test_lru_victim_is_least_recent(self):
        fetch = _FetchRecorder()
        pool = BufferPool(2, fetch)
        pool.get(1)
        pool.get(2)
        pool.get(1)       # 1 is now most recent
        pool.get(3)       # evicts 2
        assert pool.contains(1)
        assert not pool.contains(2)
        assert pool.contains(3)
        assert pool.evictions == 1

    def test_eviction_count_under_thrash(self):
        pool = BufferPool(2, _FetchRecorder())
        for page in range(10):
            pool.get(page)
        assert pool.evictions == 8
        assert pool.resident == 2

    def test_sequential_scan_larger_than_pool_never_hits(self):
        pool = BufferPool(3, _FetchRecorder())
        for _ in range(3):
            for page in range(5):
                pool.get(page)
        assert pool.hits == 0  # classic LRU sequential-flooding behaviour

    def test_working_set_within_capacity_all_hits(self):
        pool = BufferPool(5, _FetchRecorder())
        for _ in range(4):
            for page in range(5):
                pool.get(page)
        assert pool.misses == 5
        assert pool.hits == 15


class TestDirtyPages:
    def test_flush_writes_back(self):
        written = []
        pool = BufferPool(4, lambda p: [p], write_back=lambda p, page: written.append(p))
        pool.get(1)
        pool.mark_dirty(1)
        pool.flush()
        assert written == [1]
        pool.flush()  # idempotent: already clean
        assert written == [1]

    def test_eviction_writes_back_dirty_page(self):
        written = []
        pool = BufferPool(1, lambda p: [p], write_back=lambda p, page: written.append(p))
        pool.get(1)
        pool.mark_dirty(1)
        pool.get(2)  # evicts dirty 1
        assert written == [1]

    def test_clean_eviction_does_not_write(self):
        written = []
        pool = BufferPool(1, lambda p: [p], write_back=lambda p, page: written.append(p))
        pool.get(1)
        pool.get(2)
        assert written == []

    def test_mark_dirty_requires_write_back(self):
        pool = BufferPool(2, lambda p: [p])
        pool.get(1)
        with pytest.raises(StoreError, match="write_back"):
            pool.mark_dirty(1)

    def test_mark_dirty_requires_residency(self):
        pool = BufferPool(2, lambda p: [p], write_back=lambda p, page: None)
        with pytest.raises(StoreError, match="non-resident"):
            pool.mark_dirty(9)

    def test_invalidate_drops_without_write(self):
        written = []
        pool = BufferPool(2, lambda p: [p], write_back=lambda p, page: written.append(p))
        pool.get(1)
        pool.mark_dirty(1)
        pool.invalidate(1)
        pool.flush()
        assert written == []
        assert not pool.contains(1)

    def test_put_and_clear(self):
        pool = BufferPool(2, lambda p: [p], write_back=lambda p, page: None)
        pool.put(5, "direct")
        assert pool.get(5) == "direct"
        assert pool.misses == 0
        pool.clear()
        assert pool.resident == 0
