"""HTTP front end + client + CLI: the service over a real socket.

Servers bind ephemeral ports (``port=0``) on the loopback interface;
the CLI test exercises the actual ``repro serve`` process end to end —
startup banner, client round trip, SIGTERM, clean shutdown — mirroring
the CI smoke step.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import urllib.request
from pathlib import Path

import numpy as np
import pytest

from repro.db.database import ImageDatabase
from repro.errors import ServeError
from repro.features.base import PresetSignature
from repro.features.pipeline import FeatureSchema
from repro.serve.client import ServiceClient
from repro.serve.http import QueryServer

_DIM = 6
_N = 90


@pytest.fixture(scope="module")
def served():
    """One server + client pair shared by the module's read-only tests."""
    db = ImageDatabase(FeatureSchema([PresetSignature(_DIM, "sig")]))
    rng = np.random.default_rng(31)
    db.add_vectors(rng.random((_N, _DIM)))
    db.build_indexes()
    server = QueryServer(db, port=0, max_batch=8, max_wait_ms=1.0).start()
    host, port = server.address
    client = ServiceClient(host, port)
    yield db, server, client
    server.stop()


class TestEndpoints:
    def test_healthz(self, served):
        _, _, client = served
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["images"] == _N
        assert health["features"] == ["sig"]
        assert health["uptime_s"] >= 0.0

    def test_query_parity_with_direct_call(self, served):
        db, _, client = served
        vector = np.random.default_rng(5).random(_DIM)
        response = client.query(vector, 4, feature="sig")
        direct = db.query(vector, 4)
        assert [r["image_id"] for r in response["results"]] == [
            r.image_id for r in direct
        ]
        # JSON floats round-trip exactly (repr is shortest-round-trip),
        # so even over the wire parity stays bitwise.
        assert [r["distance"] for r in response["results"]] == [
            r.distance for r in direct
        ]
        assert response["distance_computations"] > 0
        assert response["batch_size"] >= 1

    def test_range_parity_with_direct_call(self, served):
        db, _, client = served
        vector = np.random.default_rng(6).random(_DIM)
        response = client.range_query(vector, 0.7)
        direct = db.range_query(vector, 0.7)
        assert [(r["image_id"], r["distance"]) for r in response["results"]] == [
            (r.image_id, r.distance) for r in direct
        ]

    def test_repeat_query_hits_cache(self, served):
        _, _, client = served
        vector = np.random.default_rng(7).random(_DIM)
        first = client.query(vector, 3)
        second = client.query(vector, 3)
        assert not first["cache_hit"]
        assert second["cache_hit"]
        assert second["results"] == first["results"]

    def test_stats_endpoint_reflects_traffic(self, served):
        _, _, client = served
        client.query(np.random.default_rng(8).random(_DIM), 2)
        stats = client.stats()
        for field in (
            "completed",
            "mean_batch_size",
            "cache_hit_rate",
            "latency_p50_ms",
            "latency_p95_ms",
            "throughput_qps",
        ):
            assert field in stats
        assert stats["completed"] >= 1

    def test_concurrent_clients_all_get_parity(self, served):
        db, _, client = served
        rng = np.random.default_rng(9)
        pool = rng.random((6, _DIM))
        outcomes: dict[int, dict] = {}
        lock = threading.Lock()

        def worker(worker_id: int) -> None:
            response = client.query(pool[worker_id % len(pool)], 3)
            with lock:
                outcomes[worker_id] = response

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(12)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(outcomes) == 12
        for worker_id, response in outcomes.items():
            direct = db.query(pool[worker_id % len(pool)], 3)
            assert [(r["image_id"], r["distance"]) for r in response["results"]] == [
                (r.image_id, r.distance) for r in direct
            ]


class TestErrorHandling:
    def test_unknown_path_404(self, served):
        _, server, client = served
        with pytest.raises(ServeError, match="unknown path"):
            client._request("/nope")
        host, port = server.address
        request = urllib.request.Request(
            f"http://{host}:{port}/nope", data=b"{}", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=5)
        assert excinfo.value.code == 404

    def test_malformed_body_400(self, served):
        _, server, _ = served
        host, port = server.address
        request = urllib.request.Request(
            f"http://{host}:{port}/query",
            data=b"this is not json",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=5)
        assert excinfo.value.code == 400
        assert "JSON" in json.loads(excinfo.value.read())["error"]

    def test_missing_vector_400(self, served):
        _, _, client = served
        with pytest.raises(ServeError, match="vector"):
            client._request("/query", {"k": 3})

    def test_wrong_dimension_400(self, served):
        _, _, client = served
        with pytest.raises(ServeError, match="dim"):
            client.query(np.zeros(_DIM + 2), 3)

    def test_bad_k_and_radius_400(self, served):
        _, _, client = served
        with pytest.raises(ServeError, match="k must be"):
            client.query(np.zeros(_DIM), 0)
        with pytest.raises(ServeError, match="radius"):
            client.range_query(np.zeros(_DIM), -0.5)
        with pytest.raises(ServeError, match="integer"):
            client._request("/query", {"vector": [0.0] * _DIM, "k": "five"})

    def test_unknown_feature_400(self, served):
        _, _, client = served
        with pytest.raises(ServeError, match="unknown feature"):
            client.query(np.zeros(_DIM), 3, feature="nope")

    def test_unreachable_server(self):
        client = ServiceClient(port=1, timeout=0.5)
        with pytest.raises(ServeError, match="cannot reach"):
            client.healthz()


class TestServerLifecycle:
    def test_start_stop_idempotent(self):
        db = ImageDatabase(FeatureSchema([PresetSignature(_DIM, "sig")]))
        db.add_vectors(np.random.default_rng(0).random((10, _DIM)))
        server = QueryServer(db, port=0)
        with server:
            host, port = server.address
            assert ServiceClient(host, port).healthz()["images"] == 10
        server.stop()  # second stop is a no-op
        assert "stopped" in repr(server)

    def test_prebuilt_scheduler_and_option_conflict(self):
        db = ImageDatabase(FeatureSchema([PresetSignature(_DIM, "sig")]))
        db.add_vectors(np.random.default_rng(0).random((10, _DIM)))
        from repro.serve.scheduler import QueryScheduler

        scheduler = QueryScheduler(db)
        with pytest.raises(ServeError, match="not both"):
            QueryServer(db, scheduler=scheduler, max_batch=4)
        server = QueryServer(db, port=0, scheduler=scheduler)
        server.stop()


class TestServeCLI:
    def test_serve_cli_end_to_end_sigterm_clean_shutdown(self, tmp_path):
        # demo -> build -> serve -> client query -> SIGTERM; the process
        # must come down cleanly with exit code 0 (the CI smoke step).
        from repro.cli import main

        corpus = tmp_path / "corpus"
        db_dir = tmp_path / "corpus.db"
        assert main(["demo", str(corpus), "--per-class", "2", "--size", "32"]) == 0
        assert (
            main(
                ["--working-size", "32", "build", str(corpus), "--db", str(db_dir)]
            )
            == 0
        )

        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "--working-size",
                "32",
                "serve",
                "--db",
                str(db_dir),
                "--port",
                "0",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        try:
            banner = process.stdout.readline()
            assert "serving" in banner and "http://" in banner
            port = int(banner.split("http://")[1].split()[0].split(":")[1])

            client = ServiceClient(port=port, timeout=5.0)
            health = client.wait_until_ready(timeout=10.0)
            assert health["status"] == "ok" and health["images"] == 16

            assert "completed" in client.stats()  # reachable before traffic
            from repro.features.pipeline import default_schema

            schema = default_schema(working_size=32)
            dim = schema.get(schema.names[0]).dim
            response = client.query(np.zeros(dim), 3)
            assert len(response["results"]) == 3

            process.send_signal(signal.SIGTERM)
            out, _ = process.communicate(timeout=15)
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()
        assert process.returncode == 0
        assert "shutdown clean" in out
        assert "served 1 requests" in out
