"""Tests for FeatureSchema and CompositeExtractor."""

import numpy as np
import pytest

from repro.errors import FeatureError
from repro.features.base import FeatureExtractor
from repro.features.histogram import GrayHistogram, RGBJointHistogram
from repro.features.moments import ColorMoments
from repro.features.pipeline import (
    CompositeExtractor,
    FeatureSchema,
    default_schema,
    normalize_weights,
)


class TestFeatureSchema:
    def test_registration_order_preserved(self):
        schema = FeatureSchema([GrayHistogram(8), ColorMoments()])
        assert schema.names == ("gray_hist_8", "color_moments_rgb")

    def test_duplicate_names_rejected(self):
        with pytest.raises(FeatureError, match="duplicate"):
            FeatureSchema([GrayHistogram(8), GrayHistogram(8)])

    def test_lookup(self):
        schema = FeatureSchema([GrayHistogram(8)])
        assert isinstance(schema.get("gray_hist_8"), GrayHistogram)
        with pytest.raises(FeatureError, match="unknown feature"):
            schema.get("nope")

    def test_contains_and_len(self):
        schema = FeatureSchema([GrayHistogram(8)])
        assert "gray_hist_8" in schema
        assert "other" not in schema
        assert len(schema) == 1

    def test_extract_all(self, scene_image):
        schema = FeatureSchema([GrayHistogram(8), ColorMoments()])
        result = schema.extract_all(scene_image)
        assert set(result) == {"gray_hist_8", "color_moments_rgb"}
        assert result["gray_hist_8"].shape == (8,)
        assert result["color_moments_rgb"].shape == (9,)

    def test_total_dim(self):
        schema = FeatureSchema([GrayHistogram(8), ColorMoments()])
        assert schema.total_dim() == 17

    def test_add_chains(self):
        schema = FeatureSchema().add(GrayHistogram(8)).add(ColorMoments())
        assert len(schema) == 2

    def test_default_schema_extracts(self, scene_image):
        schema = default_schema()
        result = schema.extract_all(scene_image)
        assert len(result) == len(schema)
        for name, vector in result.items():
            assert vector.shape == (schema.get(name).dim,)


class TestCompositeExtractor:
    def test_dim_is_sum(self):
        composite = CompositeExtractor([GrayHistogram(8), ColorMoments()])
        assert composite.dim == 17

    def test_segments(self):
        composite = CompositeExtractor([GrayHistogram(8), ColorMoments()])
        assert composite.segments == [("gray_hist_8", 8), ("color_moments_rgb", 9)]

    def test_weight_zero_blanks_segment(self, scene_image):
        composite = CompositeExtractor(
            [GrayHistogram(8), ColorMoments()], weights=[1.0, 0.0]
        )
        vector = composite.extract(scene_image)
        assert np.allclose(vector[8:], 0.0)
        assert not np.allclose(vector[:8], 0.0)

    def test_l2_normalization_equalizes_segments(self, scene_image):
        composite = CompositeExtractor(
            [GrayHistogram(8), RGBJointHistogram(2)], normalize="l2"
        )
        vector = composite.extract(scene_image)
        assert np.linalg.norm(vector[:8]) == pytest.approx(1.0)
        assert np.linalg.norm(vector[8:]) == pytest.approx(1.0)

    def test_none_normalization_keeps_raw(self, scene_image):
        composite = CompositeExtractor([GrayHistogram(8)], normalize="none")
        raw = GrayHistogram(8).extract(scene_image)
        assert np.allclose(composite.extract(scene_image), raw)

    def test_validates(self):
        with pytest.raises(FeatureError):
            CompositeExtractor([])
        with pytest.raises(FeatureError, match="weights"):
            CompositeExtractor([GrayHistogram(8)], weights=[1.0, 2.0])
        with pytest.raises(FeatureError, match="non-negative"):
            CompositeExtractor([GrayHistogram(8)], weights=[-1.0])
        with pytest.raises(FeatureError, match="normalize"):
            CompositeExtractor([GrayHistogram(8)], normalize="max")

    def test_custom_name(self):
        composite = CompositeExtractor([GrayHistogram(8)], name="combo")
        assert composite.name == "combo"


class TestNormalizeWeights:
    def test_normalizes_to_unit_sum(self):
        weights = normalize_weights({"a": 2.0, "b": 2.0}, ["a", "b", "c"])
        assert weights == {"a": 0.5, "b": 0.5, "c": 0.0}

    def test_rejects_unknown_names(self):
        with pytest.raises(FeatureError, match="unknown"):
            normalize_weights({"z": 1.0}, ["a"])

    def test_rejects_all_zero(self):
        with pytest.raises(FeatureError, match="positive"):
            normalize_weights({"a": 0.0}, ["a"])
