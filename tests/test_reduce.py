"""Tests for the reducers: KL transform and FastMap."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.metrics.emd import MatchDistance
from repro.metrics.minkowski import EuclideanDistance, ManhattanDistance
from repro.reduce import FastMap, KLTransform, contractiveness_violations
from repro.reduce.base import Reducer


def _correlated_data(rng, n=300, dim=16, rank=3):
    """Random data whose variance is concentrated in ``rank`` directions."""
    basis = rng.normal(size=(rank, dim))
    weights = rng.normal(size=(n, rank)) * np.array([10.0, 3.0, 1.0])[:rank]
    return weights @ basis + rng.normal(0.0, 0.01, (n, dim))


class TestReducerContract:
    def test_fit_validates_shape(self, rng):
        with pytest.raises(ReproError, match="non-empty"):
            KLTransform(2).fit(np.empty((0, 4)))
        with pytest.raises(ReproError, match="non-empty"):
            KLTransform(2).fit(rng.random(8))

    def test_fit_rejects_nan(self, rng):
        data = rng.random((10, 4))
        data[3, 2] = np.nan
        with pytest.raises(ReproError, match="non-finite"):
            KLTransform(2).fit(data)

    def test_out_dim_cannot_exceed_in_dim(self, rng):
        with pytest.raises(ReproError, match="out_dim"):
            KLTransform(8).fit(rng.random((10, 4)))

    def test_out_dim_must_be_positive(self):
        with pytest.raises(ReproError, match="out_dim"):
            KLTransform(0)

    def test_transform_before_fit_rejected(self, rng):
        with pytest.raises(ReproError, match="not been fitted"):
            KLTransform(2).transform(rng.random(4))

    def test_transform_validates_dim(self, rng):
        kl = KLTransform(2).fit(rng.random((20, 6)))
        with pytest.raises(ReproError, match="dim"):
            kl.transform(rng.random(5))

    def test_single_vector_and_batch_agree(self, rng):
        kl = KLTransform(3).fit(rng.random((50, 8)))
        batch = rng.random((5, 8))
        stacked = kl.transform(batch)
        for row in range(5):
            assert np.allclose(kl.transform(batch[row]), stacked[row])

    def test_repr_shows_fitted_state(self, rng):
        kl = KLTransform(2)
        assert "unfitted" in repr(kl)
        kl.fit(rng.random((10, 4)))
        assert "in_dim=4" in repr(kl)

    def test_is_abstract(self):
        with pytest.raises(TypeError):
            Reducer(2)  # type: ignore[abstract]


class TestKLTransform:
    def test_contractive_on_random_pairs(self, rng):
        data = rng.random((200, 24))
        kl = KLTransform(6).fit(data)
        rate, worst = contractiveness_violations(
            kl, data, EuclideanDistance(), n_pairs=400
        )
        assert rate == 0.0
        assert worst <= 1.0 + 1e-9

    def test_recovers_low_rank_structure(self, rng):
        data = _correlated_data(rng, rank=3)
        kl = KLTransform(3).fit(data)
        assert kl.explained_variance_ratio > 0.999

    def test_variance_ratio_monotone_in_out_dim(self, rng):
        data = _correlated_data(rng, rank=3)
        ratios = [
            KLTransform(d).fit(data).explained_variance_ratio for d in (1, 2, 3, 8)
        ]
        assert ratios == sorted(ratios)

    def test_components_are_orthonormal(self, rng):
        kl = KLTransform(4).fit(rng.random((100, 10)))
        gram = kl.components @ kl.components.T
        assert np.allclose(gram, np.eye(4), atol=1e-10)

    def test_full_rank_projection_preserves_distances(self, rng):
        data = rng.random((60, 5))
        kl = KLTransform(5).fit(data)
        reduced = kl.transform(data)
        for _ in range(20):
            i, j = rng.choice(60, size=2, replace=False)
            original = float(np.linalg.norm(data[i] - data[j]))
            projected = float(np.linalg.norm(reduced[i] - reduced[j]))
            assert projected == pytest.approx(original)

    def test_inverse_transform_roundtrip_on_low_rank_data(self, rng):
        data = _correlated_data(rng, rank=2)
        kl = KLTransform(2).fit(data)
        restored = kl.inverse_transform(kl.transform(data))
        assert np.allclose(restored, data, atol=0.1)

    def test_reconstruction_error_decreases_with_dim(self, rng):
        data = rng.random((150, 12))
        errors = [
            KLTransform(d).fit(data).reconstruction_error(data) for d in (1, 4, 8, 12)
        ]
        assert errors == sorted(errors, reverse=True)
        assert errors[-1] == pytest.approx(0.0, abs=1e-9)

    def test_constant_data_handled(self):
        data = np.ones((20, 6))
        kl = KLTransform(2).fit(data)
        assert kl.explained_variance_ratio == 1.0
        assert np.allclose(kl.transform(data), 0.0)

    def test_eigenvalues_descending(self, rng):
        kl = KLTransform(2).fit(rng.random((80, 7)))
        eigenvalues = kl.eigenvalues
        assert np.all(np.diff(eigenvalues) <= 1e-12)

    def test_inverse_transform_validates_dim(self, rng):
        kl = KLTransform(2).fit(rng.random((10, 4)))
        with pytest.raises(ReproError, match="dim"):
            kl.inverse_transform(rng.random(3))


class TestFastMap:
    def test_embeds_euclidean_data_with_low_stress(self, rng):
        data = _correlated_data(rng, rank=3)
        fastmap = FastMap(3).fit(data)
        assert fastmap.stress(data) < 0.1

    def test_stress_decreases_with_axes(self, rng):
        data = rng.random((120, 10))
        stresses = [FastMap(d, seed=1).fit(data).stress(data) for d in (1, 3, 6)]
        assert stresses[0] >= stresses[1] >= stresses[2]

    def test_near_contractive_on_euclidean_data(self, rng):
        data = rng.random((150, 8))
        fastmap = FastMap(4).fit(data)
        rate, worst = contractiveness_violations(
            fastmap, data, EuclideanDistance(), n_pairs=300
        )
        # Heuristic, but on genuinely Euclidean data violations are rare
        # and mild (clamped residuals are the only source).
        assert rate < 0.05
        assert worst < 1.2

    def test_works_with_non_coordinate_metric(self, rng):
        from repro.features.base import l1_normalize

        histograms = np.array([l1_normalize(rng.random(16)) for _ in range(80)])
        fastmap = FastMap(3, MatchDistance()).fit(histograms)
        embedded = fastmap.transform(histograms)
        assert embedded.shape == (80, 3)
        assert np.all(np.isfinite(embedded))
        assert fastmap.stress(histograms) < 0.8

    def test_embedding_preserves_cluster_structure(self, rng):
        from repro.eval.datasets import gaussian_clusters

        vectors, labels = gaussian_clusters(
            120, 16, n_clusters=2, cluster_std=0.01, seed=5
        )
        fastmap = FastMap(2).fit(vectors)
        embedded = fastmap.transform(vectors)
        center_a = embedded[labels == 0].mean(axis=0)
        center_b = embedded[labels == 1].mean(axis=0)
        spread_a = embedded[labels == 0].std()
        assert np.linalg.norm(center_a - center_b) > 5 * spread_a

    def test_query_transform_matches_training_coordinates(self, rng):
        data = rng.random((60, 6))
        fastmap = FastMap(3).fit(data)
        embedded = fastmap.transform(data)
        # Re-embedding a training vector through the query path must give
        # the same coordinates the fit produced.
        for row in (0, 17, 59):
            assert np.allclose(fastmap.transform(data[row]), embedded[row], atol=1e-9)

    def test_duplicate_data_yields_zero_coordinates(self):
        data = np.ones((10, 4))
        fastmap = FastMap(2).fit(data)
        assert np.allclose(fastmap.transform(data), 0.0)

    def test_deterministic_given_seed(self, rng):
        data = rng.random((50, 6))
        a = FastMap(3, seed=3).fit(data).transform(data)
        b = FastMap(3, seed=3).fit(data).transform(data)
        assert np.allclose(a, b)

    def test_pivot_pairs_exposed(self, rng):
        data = rng.random((40, 5))
        fastmap = FastMap(2).fit(data)
        pairs = fastmap.pivot_pairs
        assert len(pairs) == 2
        for pivot_a, pivot_b, d_ab in pairs:
            assert pivot_a.shape == (5,)
            assert pivot_b.shape == (5,)
            assert d_ab >= 0.0

    def test_rejects_non_metric_argument(self):
        with pytest.raises(ReproError, match="Metric"):
            FastMap(2, metric="euclidean")  # type: ignore[arg-type]

    def test_works_under_l1(self, rng):
        data = rng.random((60, 6))
        fastmap = FastMap(3, ManhattanDistance()).fit(data)
        assert np.all(np.isfinite(fastmap.transform(data)))


class TestContractivenessCheck:
    def test_requires_two_vectors(self, rng):
        kl = KLTransform(1).fit(rng.random((5, 3)))
        with pytest.raises(ReproError, match="two vectors"):
            contractiveness_violations(kl, rng.random((1, 3)), EuclideanDistance())

    def test_detects_expansion(self, rng):
        class Doubler(Reducer):
            contractive = False

            def _fit(self, vectors):
                pass

            def _transform(self, vectors):
                return 2.0 * vectors[:, : self._out_dim]

        data = rng.random((50, 4))
        doubler = Doubler(4).fit(data)
        rate, worst = contractiveness_violations(doubler, data, EuclideanDistance())
        assert rate > 0.9
        assert worst > 1.5
