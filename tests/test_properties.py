"""Property-based tests (hypothesis) for core invariants.

These pin the load-bearing mathematical properties:

* metric axioms for every metric that claims ``is_metric``;
* exact equivalence of every tree index with the linear scan, on
  arbitrary data, queries, k, and radius;
* distance-count consistency between index stats and a wrapped counter;
* invertibility and energy preservation of the Haar transform;
* codec round trips on arbitrary images;
* LRU buffer pool residency bounds;
* chamfer distance-transform bounds against exact Euclidean distance.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.db.bufferpool import BufferPool
from repro.features.base import l1_normalize
from repro.features.shape import distance_transform
from repro.features.wavelet import haar2d, haar2d_inverse
from repro.image.core import Image
from repro.image.io_bmp import read_bmp_bytes, write_bmp_bytes
from repro.image.io_ppm import read_ppm_bytes, write_ppm_bytes
from repro.index.antipole import AntipoleTree
from repro.index.kdtree import KDTree
from repro.index.linear import LinearScanIndex
from repro.index.vptree import VPTree
from repro.metrics.base import CountingMetric
from repro.metrics.emd import MatchDistance
from repro.metrics.histogram import BhattacharyyaDistance, HistogramIntersection
from repro.metrics.minkowski import (
    ChebyshevDistance,
    EuclideanDistance,
    ManhattanDistance,
)
from repro.metrics.quadratic import QuadraticFormDistance, color_similarity_matrix

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

finite_vectors = hnp.arrays(
    np.float64,
    st.integers(2, 12),
    elements=st.floats(0.0, 1.0, allow_nan=False, width=64),
)


def _vector_triples(dim=6):
    return hnp.arrays(
        np.float64, (3, dim), elements=st.floats(0.0, 1.0, allow_nan=False, width=64)
    )


def _dataset_and_query(max_n=60, dim=4):
    return st.tuples(
        hnp.arrays(
            np.float64,
            st.tuples(st.integers(1, max_n), st.just(dim)),
            elements=st.floats(0.0, 1.0, allow_nan=False, width=64),
        ),
        hnp.arrays(
            np.float64, (dim,), elements=st.floats(0.0, 1.0, allow_nan=False, width=64)
        ),
    )


METRICS = [
    EuclideanDistance(),
    ManhattanDistance(),
    ChebyshevDistance(),
    BhattacharyyaDistance(),
    QuadraticFormDistance(color_similarity_matrix(2)[:6, :6] + np.eye(6) * 0.5),
]


# ---------------------------------------------------------------------------
# Metric axioms
# ---------------------------------------------------------------------------


class TestMetricAxioms:
    @pytest.mark.parametrize("metric", METRICS, ids=lambda m: m.name)
    @given(triple=_vector_triples())
    @settings(max_examples=50, deadline=None)
    def test_axioms(self, metric, triple):
        a, b, c = triple
        d_ab = metric.distance(a, b)
        d_ba = metric.distance(b, a)
        d_ac = metric.distance(a, c)
        d_bc = metric.distance(b, c)
        assert d_ab >= 0.0
        assert metric.distance(a, a) <= 1e-7
        assert d_ab == pytest.approx(d_ba, abs=1e-9)
        assert d_ac <= d_ab + d_bc + 1e-7

    @given(triple=_vector_triples())
    @settings(max_examples=50, deadline=None)
    def test_histogram_intersection_axioms_on_simplex(self, triple):
        metric = HistogramIntersection()
        assume(all(v.sum() > 0 for v in triple))  # zero vector is off-simplex
        a, b, c = (l1_normalize(v) for v in triple)
        assert metric.distance(a, b) == pytest.approx(metric.distance(b, a), abs=1e-9)
        assert metric.distance(a, c) <= metric.distance(a, b) + metric.distance(b, c) + 1e-9

    @given(triple=_vector_triples())
    @settings(max_examples=50, deadline=None)
    def test_match_distance_axioms_on_simplex(self, triple):
        metric = MatchDistance()
        assume(all(v.sum() > 0 for v in triple))  # zero vector is off-simplex
        a, b, c = (l1_normalize(v) for v in triple)
        assert metric.distance(a, c) <= metric.distance(a, b) + metric.distance(b, c) + 1e-9


# ---------------------------------------------------------------------------
# Index equivalence with linear scan
# ---------------------------------------------------------------------------


def _assert_same_distances(result_a, result_b):
    assert np.allclose(
        [n.distance for n in result_a], [n.distance for n in result_b], atol=1e-9
    )


class TestIndexEquivalence:
    @given(data=_dataset_and_query(), k=st.integers(1, 10))
    @settings(max_examples=40, deadline=None)
    def test_vptree_knn_equals_scan(self, data, k):
        vectors, query = data
        ids = list(range(len(vectors)))
        metric = EuclideanDistance()
        linear = LinearScanIndex(metric).build(ids, vectors)
        tree = VPTree(metric, leaf_size=3).build(ids, vectors)
        _assert_same_distances(tree.knn_search(query, k), linear.knn_search(query, k))

    @given(data=_dataset_and_query(), radius=st.floats(0.0, 1.5))
    @settings(max_examples=40, deadline=None)
    def test_vptree_range_equals_scan(self, data, radius):
        vectors, query = data
        ids = list(range(len(vectors)))
        metric = EuclideanDistance()
        linear = LinearScanIndex(metric).build(ids, vectors)
        tree = VPTree(metric, leaf_size=3).build(ids, vectors)
        assert {n.id for n in tree.range_search(query, radius)} == {
            n.id for n in linear.range_search(query, radius)
        }

    @given(data=_dataset_and_query(), k=st.integers(1, 10))
    @settings(max_examples=30, deadline=None)
    def test_antipole_knn_equals_scan(self, data, k):
        vectors, query = data
        ids = list(range(len(vectors)))
        metric = EuclideanDistance()
        linear = LinearScanIndex(metric).build(ids, vectors)
        tree = AntipoleTree(metric).build(ids, vectors)
        _assert_same_distances(tree.knn_search(query, k), linear.knn_search(query, k))

    @given(data=_dataset_and_query(), radius=st.floats(0.0, 1.5))
    @settings(max_examples=30, deadline=None)
    def test_antipole_range_equals_scan(self, data, radius):
        vectors, query = data
        ids = list(range(len(vectors)))
        metric = EuclideanDistance()
        linear = LinearScanIndex(metric).build(ids, vectors)
        tree = AntipoleTree(metric).build(ids, vectors)
        assert {n.id for n in tree.range_search(query, radius)} == {
            n.id for n in linear.range_search(query, radius)
        }

    @given(data=_dataset_and_query(), k=st.integers(1, 8))
    @settings(max_examples=30, deadline=None)
    def test_kdtree_knn_equals_scan(self, data, k):
        vectors, query = data
        ids = list(range(len(vectors)))
        metric = EuclideanDistance()
        linear = LinearScanIndex(metric).build(ids, vectors)
        tree = KDTree(metric, leaf_size=3).build(ids, vectors)
        _assert_same_distances(tree.knn_search(query, k), linear.knn_search(query, k))

    @given(data=_dataset_and_query(), k=st.integers(1, 6))
    @settings(max_examples=25, deadline=None)
    def test_stats_match_external_counter(self, data, k):
        vectors, query = data
        ids = list(range(len(vectors)))
        for make in (
            lambda m: VPTree(m, leaf_size=3),
            lambda m: AntipoleTree(m),
        ):
            counter = CountingMetric(EuclideanDistance())
            tree = make(counter).build(ids, vectors)
            counter.reset()
            tree.knn_search(query, k)
            assert counter.count == tree.last_stats.distance_computations


# ---------------------------------------------------------------------------
# Haar transform
# ---------------------------------------------------------------------------


class TestHaarProperties:
    @given(
        array=hnp.arrays(
            np.float64,
            st.tuples(
                st.integers(1, 8).map(lambda k: 2 * k),
                st.integers(1, 8).map(lambda k: 2 * k),
            ),
            elements=st.floats(0.0, 1.0, allow_nan=False, width=64),
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_invertible_and_energy_preserving(self, array):
        bands = haar2d(array)
        assert np.allclose(haar2d_inverse(*bands), array, atol=1e-10)
        energy_in = float((array * array).sum())
        energy_out = sum(float((b * b).sum()) for b in bands)
        assert energy_out == pytest.approx(energy_in, rel=1e-9, abs=1e-12)


# ---------------------------------------------------------------------------
# Codecs
# ---------------------------------------------------------------------------


class TestCodecProperties:
    @given(
        pixels=hnp.arrays(
            np.uint8,
            st.tuples(st.integers(1, 12), st.integers(1, 12), st.just(3)),
            elements=st.integers(0, 255),
        ),
        binary=st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_ppm_round_trip(self, pixels, binary):
        image = Image.from_uint8(pixels)
        assert read_ppm_bytes(write_ppm_bytes(image, binary=binary)) == image

    @given(
        pixels=hnp.arrays(
            np.uint8,
            st.tuples(st.integers(1, 12), st.integers(1, 12), st.just(3)),
            elements=st.integers(0, 255),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_bmp_round_trip(self, pixels):
        image = Image.from_uint8(pixels)
        assert read_bmp_bytes(write_bmp_bytes(image)) == image


# ---------------------------------------------------------------------------
# Buffer pool
# ---------------------------------------------------------------------------


class TestBufferPoolProperties:
    @given(
        capacity=st.integers(1, 8),
        accesses=st.lists(st.integers(0, 15), min_size=1, max_size=100),
    )
    @settings(max_examples=50, deadline=None)
    def test_residency_and_counters(self, capacity, accesses):
        pool = BufferPool(capacity, lambda p: p)
        for page in accesses:
            assert pool.get(page) == page  # fetch is identity: correctness
            assert pool.resident <= capacity
        assert pool.hits + pool.misses == len(accesses)
        assert pool.misses >= min(capacity, len(set(accesses)))

    @given(accesses=st.lists(st.integers(0, 5), min_size=1, max_size=50))
    @settings(max_examples=30, deadline=None)
    def test_infinite_capacity_never_evicts(self, accesses):
        pool = BufferPool(100, lambda p: p)
        for page in accesses:
            pool.get(page)
        assert pool.evictions == 0
        assert pool.misses == len(set(accesses))


# ---------------------------------------------------------------------------
# Distance transform
# ---------------------------------------------------------------------------


class TestDistanceTransformProperties:
    @given(
        mask=hnp.arrays(
            np.bool_, st.tuples(st.integers(2, 12), st.integers(2, 12)), elements=st.booleans()
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_chamfer_brackets_euclidean(self, mask):
        if not mask.any():
            return  # empty mask: all inf, nothing to compare
        dt = distance_transform(mask)
        ys, xs = np.nonzero(mask)
        feature_points = np.stack([ys, xs], axis=1)
        height, width = mask.shape
        for y in range(height):
            for x in range(width):
                exact = np.hypot(
                    feature_points[:, 0] - y, feature_points[:, 1] - x
                ).min()
                # Chamfer with (1, sqrt2) weights over-estimates Euclidean
                # by at most ~8% and never under-estimates.
                assert dt[y, x] >= exact - 1e-9
                assert dt[y, x] <= exact * 1.0824 + 1e-9

    @given(
        mask=hnp.arrays(
            np.bool_, st.tuples(st.integers(2, 10), st.integers(2, 10)), elements=st.booleans()
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_feature_pixels_are_zero(self, mask):
        dt = distance_transform(mask)
        assert np.all(dt[mask] == 0.0)
