"""Tests for retrieval-quality metrics and distance-distribution stats."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.eval.metrics import (
    average_precision,
    f1_score,
    mean_average_precision,
    mean_precision_at_k,
    precision_at_k,
    precision_recall_curve,
    recall_at_k,
)
from repro.eval.stats import (
    distance_histogram,
    distance_sample,
    estimate_radius_for_selectivity,
    intrinsic_dimensionality,
)
from repro.metrics.minkowski import EuclideanDistance


class TestPrecisionRecall:
    def test_precision_at_k(self):
        assert precision_at_k([1, 2, 3, 4], {1, 3}, 2) == 0.5
        assert precision_at_k([1, 2, 3, 4], {1, 3}, 4) == 0.5
        assert precision_at_k([1, 3], {1, 3}, 2) == 1.0

    def test_precision_short_ranking_penalized(self):
        assert precision_at_k([1], {1}, 5) == 0.2

    def test_recall_at_k(self):
        assert recall_at_k([1, 2, 3], {1, 9}, 3) == 0.5
        assert recall_at_k([1, 9], {1, 9}, 2) == 1.0

    def test_recall_empty_relevant_is_one(self):
        assert recall_at_k([1, 2], frozenset(), 2) == 1.0

    def test_duplicates_rejected(self):
        with pytest.raises(ReproError, match="duplicate"):
            precision_at_k([1, 1], {1}, 2)

    def test_k_validated(self):
        with pytest.raises(ReproError):
            precision_at_k([1], {1}, 0)

    def test_f1(self):
        assert f1_score(1.0, 1.0) == 1.0
        assert f1_score(0.0, 0.0) == 0.0
        assert f1_score(0.5, 1.0) == pytest.approx(2 / 3)
        with pytest.raises(ReproError):
            f1_score(-0.1, 0.5)


class TestAveragePrecision:
    def test_perfect_ranking(self):
        assert average_precision([1, 2, 9, 8], {1, 2}) == 1.0

    def test_worst_ranking(self):
        # Both relevant at the end of 4: (1/3 + 2/4) / 2
        assert average_precision([8, 9, 1, 2], {1, 2}) == pytest.approx((1 / 3 + 2 / 4) / 2)

    def test_missing_relevant_items_lower_score(self):
        assert average_precision([1], {1, 2}) == pytest.approx(0.5)

    def test_empty_relevant_is_one(self):
        assert average_precision([1, 2], frozenset()) == 1.0

    def test_map_over_workload(self):
        rankings = {0: [1, 2], 1: [9, 3]}
        judgments = {0: {1}, 1: {3}}
        expected = (1.0 + 0.5) / 2
        assert mean_average_precision(rankings, judgments) == pytest.approx(expected)

    def test_map_duck_types_judgment_object(self):
        from repro.eval.groundtruth import RelevanceJudgments

        judgments = RelevanceJudgments.from_labels([0, 1, 2], ["a", "a", "b"])
        rankings = {0: [1, 2], 2: [0, 1]}
        value = mean_average_precision(rankings, judgments)
        assert 0.0 <= value <= 1.0

    def test_map_validates_empty(self):
        with pytest.raises(ReproError):
            mean_average_precision({}, {})

    def test_mean_precision_at_k(self):
        rankings = {0: [1, 2], 1: [2, 3]}
        judgments = {0: {1, 2}, 1: {9}}
        assert mean_precision_at_k(rankings, judgments, 2) == pytest.approx(0.5)


class TestPRCurve:
    def test_monotone_recall(self):
        precision, recall = precision_recall_curve([1, 9, 2, 8], {1, 2})
        assert np.all(np.diff(recall) >= 0)
        assert recall[-1] == 1.0

    def test_values(self):
        precision, recall = precision_recall_curve([1, 9], {1, 2})
        assert precision.tolist() == [1.0, 0.5]
        assert recall.tolist() == [0.5, 0.5]

    def test_empty_relevant(self):
        precision, recall = precision_recall_curve([1, 2], frozenset())
        assert np.all(precision == 0.0)
        assert np.all(recall == 1.0)


class TestDistanceStats:
    def test_sample_size_and_positivity(self, rng):
        vectors = rng.random((50, 4))
        sample = distance_sample(EuclideanDistance(), vectors, n_pairs=200, seed=1)
        assert sample.shape == (200,)
        assert np.all(sample >= 0.0)

    def test_sample_excludes_self_pairs(self):
        # Two distinct points: every sampled pair has positive distance.
        vectors = np.array([[0.0, 0.0], [1.0, 1.0]])
        sample = distance_sample(EuclideanDistance(), vectors, n_pairs=50, seed=0)
        assert np.all(sample > 0.0)

    def test_sample_validates(self, rng):
        with pytest.raises(ReproError):
            distance_sample(EuclideanDistance(), rng.random((1, 3)))
        with pytest.raises(ReproError):
            distance_sample(EuclideanDistance(), rng.random((5, 3)), n_pairs=0)

    def test_intrinsic_dim_grows_with_embedding_dim(self):
        low = intrinsic_dimensionality(
            EuclideanDistance(), np.random.default_rng(0).random((300, 2)), seed=0
        )
        high = intrinsic_dimensionality(
            EuclideanDistance(), np.random.default_rng(0).random((300, 32)), seed=0
        )
        assert high > low * 3

    def test_intrinsic_dim_clustered_below_uniform(self):
        from repro.eval.datasets import gaussian_clusters, uniform_vectors

        uniform = uniform_vectors(300, 16, seed=0)
        clustered, _ = gaussian_clusters(300, 16, n_clusters=5, cluster_std=0.02, seed=0)
        metric = EuclideanDistance()
        assert intrinsic_dimensionality(metric, clustered, seed=0) < intrinsic_dimensionality(
            metric, uniform, seed=0
        )

    def test_identical_points_zero_or_inf(self):
        vectors = np.zeros((10, 3))
        assert intrinsic_dimensionality(EuclideanDistance(), vectors, seed=0) == 0.0

    def test_radius_for_selectivity_monotone(self, rng):
        vectors = rng.random((200, 4))
        metric = EuclideanDistance()
        r10 = estimate_radius_for_selectivity(metric, vectors, 0.1, seed=0)
        r50 = estimate_radius_for_selectivity(metric, vectors, 0.5, seed=0)
        assert r10 < r50

    def test_radius_achieves_target_selectivity(self, rng):
        vectors = rng.random((300, 3))
        metric = EuclideanDistance()
        radius = estimate_radius_for_selectivity(metric, vectors, 0.2, n_pairs=4000, seed=0)
        from repro.index.linear import LinearScanIndex

        index = LinearScanIndex(metric).build(list(range(300)), vectors)
        sizes = [
            len(index.range_search(vectors[i], radius)) for i in range(0, 300, 30)
        ]
        achieved = np.mean(sizes) / 300
        assert 0.1 < achieved < 0.35

    def test_selectivity_validated(self, rng):
        with pytest.raises(ReproError):
            estimate_radius_for_selectivity(EuclideanDistance(), rng.random((10, 2)), 0.0)

    def test_distance_histogram(self, rng):
        counts, edges = distance_histogram(EuclideanDistance(), rng.random((50, 3)), bins=16)
        assert counts.shape == (16,)
        assert edges.shape == (17,)
        assert counts.sum() == 2000  # default n_pairs
