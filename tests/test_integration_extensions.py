"""Integration tests: the extension modules wired through the facade.

The unit suites prove each piece in isolation; these tests prove the
pieces compose the way a downstream user would actually wire them:
M-tree / GNAT / filter-refine as the database's index factory, feedback
sessions over a database persisted and reloaded from disk, and reducers
fitted on real extracted signatures rather than synthetic vectors.
"""

import numpy as np
import pytest

from repro.db.database import ImageDatabase
from repro.db.feedback import FeedbackSession
from repro.eval.datasets import make_class_image, make_corpus
from repro.features.gabor import GaborFeatures
from repro.features.histogram import HSVHistogram
from repro.features.pipeline import FeatureSchema
from repro.features.tamura import TamuraFeatures
from repro.index.filter_refine import FilterRefineIndex
from repro.index.gnat import GNAT
from repro.index.mtree import MTree
from repro.index.vptree import VPTree
from repro.reduce import KLTransform


def _schema():
    return FeatureSchema([HSVHistogram((6, 2, 2), working_size=32)])


def _populate(db, per_class=4, seed=31):
    for image, label in make_corpus(per_class, size=32, seed=seed):
        db.add_image(image, label=label)
    return db


@pytest.fixture(scope="module")
def reference_results():
    """Ground-truth ranking from the default VP-tree database."""
    db = _populate(ImageDatabase(_schema()))
    query = make_class_image("red_scenes", np.random.default_rng(8), size=32)
    return query, [r.image_id for r in db.query(query, k=8)]


class TestAlternativeIndexFactories:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda metric: MTree(metric, capacity=6),
            lambda metric: GNAT(metric, degree=4),
            lambda metric: FilterRefineIndex(metric, KLTransform(6)),
        ],
        ids=["mtree", "gnat", "kl-filter"],
    )
    def test_same_ranking_as_vptree(self, factory, reference_results):
        query, expected = reference_results
        db = _populate(ImageDatabase(_schema(), index_factory=factory))
        got = [r.image_id for r in db.query(query, k=8)]
        assert got == expected

    def test_mtree_database_survives_incremental_growth(self):
        """Add images after the first query; the rebuilt index sees them."""
        db = _populate(ImageDatabase(_schema(), index_factory=lambda m: MTree(m)))
        query = make_class_image("checkerboards", np.random.default_rng(3), size=32)
        before = db.query(query, k=3)
        assert len(before) == 3
        new_id = db.add_image(
            make_class_image("checkerboards", np.random.default_rng(4), size=32),
            label="checkerboards",
        )
        after = db.query(query, k=len(db))
        assert new_id in {r.image_id for r in after}

    def test_filter_refine_multi_feature_query(self):
        schema = FeatureSchema(
            [
                HSVHistogram((6, 2, 2), working_size=32),
                GaborFeatures(2, 2, working_size=32),
            ]
        )
        db = _populate(
            ImageDatabase(
                schema,
                index_factory=lambda m: FilterRefineIndex(m, KLTransform(4)),
            )
        )
        query = make_class_image("stripes_diagonal", np.random.default_rng(5), size=32)
        results = db.query_multi(query, k=5)
        assert len(results) == 5
        assert all(r.per_feature for r in results)


class TestFeedbackOverPersistedDatabase:
    def test_session_on_reloaded_database(self, tmp_path):
        schema = _schema()
        db = _populate(ImageDatabase(schema))
        db.save(tmp_path / "db")
        reloaded = ImageDatabase.load(tmp_path / "db", _schema())

        query = make_class_image("green_scenes", np.random.default_rng(6), size=32)
        session = FeedbackSession(reloaded, query)
        first = session.search(6)
        relevant = [r.image_id for r in first if r.record.label == "green_scenes"]
        if relevant:
            session.mark_relevant(relevant)
            second = session.search(6)
            assert len(second) == 6
            assert session.rounds == 1

    def test_reloaded_database_rankings_match(self, tmp_path):
        db = _populate(ImageDatabase(_schema()))
        query = make_class_image("blue_gradients", np.random.default_rng(7), size=32)
        expected = [r.image_id for r in db.query(query, k=6)]
        db.save(tmp_path / "db")
        reloaded = ImageDatabase.load(tmp_path / "db", _schema())
        assert [r.image_id for r in reloaded.query(query, k=6)] == expected


class TestReducersOnRealSignatures:
    @pytest.fixture(scope="class")
    def signatures(self):
        extractor = HSVHistogram((18, 3, 3), working_size=32)
        images = [image for image, _ in make_corpus(4, size=32, seed=13)]
        return np.array([extractor.extract(image) for image in images])

    def test_kl_concentrates_histogram_variance(self, signatures):
        kl = KLTransform(8).fit(signatures)
        assert kl.explained_variance_ratio > 0.9

    def test_kl_projection_contractive_on_signatures(self, signatures):
        from repro.metrics.minkowski import EuclideanDistance
        from repro.reduce import contractiveness_violations

        kl = KLTransform(8).fit(signatures)
        rate, worst = contractiveness_violations(
            kl, signatures, EuclideanDistance(), n_pairs=200
        )
        assert rate == 0.0
        assert worst <= 1.0 + 1e-9

    def test_fastmap_embeds_signatures_under_non_euclidean_metric(self, signatures):
        from repro.metrics.emd import MatchDistance
        from repro.reduce import FastMap

        fastmap = FastMap(4, MatchDistance()).fit(signatures)
        embedded = fastmap.transform(signatures)
        assert embedded.shape == (len(signatures), 4)
        assert np.all(np.isfinite(embedded))


class TestNewTextureFeaturesInDefaultFlow:
    def test_schema_with_all_texture_families(self):
        schema = FeatureSchema(
            [
                GaborFeatures(2, 2, working_size=32),
                TamuraFeatures(working_size=32),
            ]
        )
        db = ImageDatabase(schema)
        _populate(db, per_class=2)
        query = make_class_image("noise_fine", np.random.default_rng(9), size=32)
        results = db.query(query, k=4, feature="tamura_4l_16b")
        assert len(results) == 4
        fused = db.query_fused(query, k=4)
        assert len(fused) == 4

    def test_vptree_indexes_gabor_space(self):
        schema = FeatureSchema([GaborFeatures(2, 2, working_size=32)])
        db = ImageDatabase(schema, index_factory=lambda m: VPTree(m, leaf_size=4))
        _populate(db, per_class=3)
        index = db.index_for(db.default_feature)
        assert index.size == len(db)
