"""Tests for Minkowski-family distances and the base protocol."""

import numpy as np
import pytest

from repro.errors import MetricError
from repro.metrics.base import CountingMetric, pairwise_distances
from repro.metrics.minkowski import (
    ChebyshevDistance,
    EuclideanDistance,
    ManhattanDistance,
    MinkowskiDistance,
    WeightedEuclideanDistance,
)

ALL_MINKOWSKI = [
    ManhattanDistance(),
    EuclideanDistance(),
    ChebyshevDistance(),
    MinkowskiDistance(3.0),
]


class TestKnownValues:
    def test_euclidean_345(self):
        assert EuclideanDistance().distance([0.0, 0.0], [3.0, 4.0]) == 5.0

    def test_manhattan(self):
        assert ManhattanDistance().distance([0.0, 0.0], [3.0, 4.0]) == 7.0

    def test_chebyshev(self):
        assert ChebyshevDistance().distance([0.0, 0.0], [3.0, 4.0]) == 4.0

    def test_minkowski_p2_matches_euclidean(self, rng):
        a, b = rng.random(8), rng.random(8)
        assert MinkowskiDistance(2.0).distance(a, b) == pytest.approx(
            EuclideanDistance().distance(a, b)
        )

    def test_minkowski_p1_matches_manhattan(self, rng):
        a, b = rng.random(8), rng.random(8)
        assert MinkowskiDistance(1.0).distance(a, b) == pytest.approx(
            ManhattanDistance().distance(a, b)
        )

    def test_weighted_euclidean(self):
        metric = WeightedEuclideanDistance([4.0, 1.0])
        assert metric.distance([0.0, 0.0], [1.0, 2.0]) == pytest.approx(np.sqrt(8.0))

    def test_weighted_all_ones_matches_euclidean(self, rng):
        a, b = rng.random(6), rng.random(6)
        metric = WeightedEuclideanDistance(np.ones(6))
        assert metric.distance(a, b) == pytest.approx(EuclideanDistance().distance(a, b))


class TestMetricAxiomsSpotChecks:
    @pytest.mark.parametrize("metric", ALL_MINKOWSKI, ids=lambda m: m.name)
    def test_identity(self, metric, rng):
        a = rng.random(8)
        assert metric.distance(a, a) == pytest.approx(0.0)

    @pytest.mark.parametrize("metric", ALL_MINKOWSKI, ids=lambda m: m.name)
    def test_symmetry(self, metric, rng):
        a, b = rng.random(8), rng.random(8)
        assert metric.distance(a, b) == pytest.approx(metric.distance(b, a))

    @pytest.mark.parametrize("metric", ALL_MINKOWSKI, ids=lambda m: m.name)
    def test_triangle_inequality(self, metric, rng):
        for _ in range(25):
            a, b, c = rng.random(8), rng.random(8), rng.random(8)
            assert metric.distance(a, c) <= (
                metric.distance(a, b) + metric.distance(b, c) + 1e-12
            )


class TestValidation:
    def test_shape_mismatch(self):
        with pytest.raises(MetricError, match="differ"):
            EuclideanDistance().distance([1.0], [1.0, 2.0])

    def test_empty_operands(self):
        with pytest.raises(MetricError, match="empty"):
            EuclideanDistance().distance([], [])

    def test_minkowski_rejects_p_below_one(self):
        with pytest.raises(MetricError, match="p >= 1"):
            MinkowskiDistance(0.5)

    def test_weighted_rejects_negative_weights(self):
        with pytest.raises(MetricError):
            WeightedEuclideanDistance([-1.0, 2.0])

    def test_weighted_rejects_dim_mismatch(self):
        metric = WeightedEuclideanDistance([1.0, 1.0])
        with pytest.raises(MetricError, match="dim"):
            metric.distance([1.0, 2.0, 3.0], [0.0, 0.0, 0.0])

    def test_weights_property_returns_copy(self):
        metric = WeightedEuclideanDistance([1.0, 2.0])
        metric.weights[0] = 99.0
        assert metric.weights[0] == 1.0


class TestCountingMetric:
    def test_counts_every_call(self, rng):
        counter = CountingMetric(EuclideanDistance())
        for _ in range(5):
            counter.distance(rng.random(4), rng.random(4))
        assert counter.count == 5

    def test_reset(self, rng):
        counter = CountingMetric(EuclideanDistance())
        counter.distance(rng.random(4), rng.random(4))
        counter.reset()
        assert counter.count == 0

    def test_propagates_is_metric(self):
        from repro.metrics.histogram import ChiSquareDistance

        assert CountingMetric(EuclideanDistance()).is_metric
        assert not CountingMetric(ChiSquareDistance()).is_metric

    def test_delegates_value(self):
        counter = CountingMetric(EuclideanDistance())
        assert counter.distance([0.0, 0.0], [3.0, 4.0]) == 5.0

    def test_rejects_non_metric_argument(self):
        with pytest.raises(MetricError):
            CountingMetric(lambda a, b: 0.0)

    def test_callable_protocol(self):
        counter = CountingMetric(EuclideanDistance())
        assert counter([0.0], [1.0]) == 1.0
        assert counter.count == 1


class TestPairwise:
    def test_matrix_properties(self, rng):
        vectors = rng.random((6, 4))
        matrix = pairwise_distances(EuclideanDistance(), vectors)
        assert matrix.shape == (6, 6)
        assert np.allclose(matrix, matrix.T)
        assert np.allclose(np.diag(matrix), 0.0)

    def test_rejects_non_2d(self):
        with pytest.raises(MetricError):
            pairwise_distances(EuclideanDistance(), np.zeros(5))
