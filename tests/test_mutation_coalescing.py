"""Mutation coalescing: adjacent same-kind mutations share one barrier.

ISSUE 9 tentpole (b): the scheduler worker collapses adjacent
``submit_add`` runs (and adjacent ``submit_remove`` runs) in a formed
batch into *one* engine call — one generation bump per feature, one
journal record group, one fsync — while keeping per-future semantics
bit-identical to serial application:

* every future still resolves with exactly its own allocated /
  removed ids;
* a malformed add fails only its own future and breaks the run;
* overlapping removes fail exactly the member that would have failed
  serially (the engine's own unknown-id error);
* explicit and default naming never mix into one engine call;
* mixed kinds (add next to remove) never coalesce.

These tests stage deterministic batches with ``autostart=False``:
submit everything while the worker is parked, then ``start()`` so the
whole queue drains as one formed batch.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.db.database import ImageDatabase
from repro.db.journal import JournalSet
from repro.db.recovery import database_fingerprint
from repro.errors import ServeError
from repro.features.base import PresetSignature
from repro.features.pipeline import FeatureSchema
from repro.index import LinearScanIndex
from repro.metrics.minkowski import EuclideanDistance
from repro.serve import QueryScheduler

DIM = 6
SEED_N = 10


def _make_db(rng):
    db = ImageDatabase(
        FeatureSchema([PresetSignature(DIM, "sig")]),
        index_factory=lambda metric: LinearScanIndex(metric),
    )
    db.add_vectors(rng.random((SEED_N, DIM)))
    db.build_indexes()
    return db


def _staged_scheduler(db, **kwargs):
    kwargs.setdefault("max_batch", 64)
    kwargs.setdefault("max_wait_ms", 0.5)
    return QueryScheduler(db, autostart=False, **kwargs)


class TestAdjacentAddsCoalesce:
    def test_one_generation_bump_and_distinct_ids(self, rng):
        db = _make_db(rng)
        scheduler = _staged_scheduler(db)
        try:
            before = scheduler.generations()["sig"]
            blocks = [rng.random((n, DIM)) for n in (1, 3, 2)]
            futures = [scheduler.submit_add(block) for block in blocks]
            scheduler.start()
            results = [f.result(timeout=10) for f in futures]

            # One engine barrier for the whole run: the generation moved
            # by exactly 1 even though three futures were acknowledged.
            assert scheduler.generations()["sig"] == before + 1

            all_ids = [i for r in results for i in r.ids]
            assert [len(r.ids) for r in results] == [1, 3, 2]
            assert len(set(all_ids)) == len(all_ids)

            stats = scheduler.stats()
            assert stats.mutations == 3
            assert stats.coalesced_mutations == 2

            # Attribution is positional: each future's ids map to its
            # own rows, verified by querying each inserted vector.
            for result, block in zip(results, blocks):
                for image_id, row in zip(result.ids, block):
                    served = scheduler.submit_query(row, 1).result(timeout=10)
                    assert served.results[0].image_id == image_id
                    assert served.results[0].distance == 0.0
        finally:
            scheduler.close()

    def test_coalesced_run_writes_one_journal_group(self, rng, tmp_path):
        db = _make_db(rng)
        journal = JournalSet(tmp_path, database_fingerprint(db))
        journal.reset()
        scheduler = _staged_scheduler(db, journal=journal)
        try:
            futures = [
                scheduler.submit_add(rng.random((2, DIM))) for _ in range(3)
            ]
            scheduler.start()
            for future in futures:
                future.result(timeout=10)
            # One merged engine call → one journal record, and the
            # formed batch acknowledged everything behind one group
            # fsync (log-before-ack unchanged).
            assert journal.n_records == 1
            assert journal.n_syncs == 1
            assert scheduler.stats().coalesced_mutations == 2
        finally:
            scheduler.close()

    def test_serial_adds_write_one_record_each(self, rng, tmp_path):
        # Control for the journal-group test: the same three adds
        # applied in separate formed batches cost three records.
        db = _make_db(rng)
        journal = JournalSet(tmp_path, database_fingerprint(db))
        journal.reset()
        scheduler = QueryScheduler(db, journal=journal, max_wait_ms=0.5)
        try:
            for _ in range(3):
                scheduler.submit_add(rng.random((2, DIM))).result(timeout=10)
            assert journal.n_records == 3
            assert scheduler.stats().coalesced_mutations == 0
        finally:
            scheduler.close()

    def test_names_parity_breaks_the_run(self, rng):
        # Default names derive from allocated ids, so an explicitly
        # named add cannot share an engine call with a default-named
        # one — the run must break between them.
        db = _make_db(rng)
        scheduler = _staged_scheduler(db)
        try:
            before = scheduler.generations()["sig"]
            plain = scheduler.submit_add(rng.random((1, DIM)))
            named = scheduler.submit_add(
                rng.random((1, DIM)), names=["img-explicit"]
            )
            scheduler.start()
            plain_result = plain.result(timeout=10)
            named_result = named.result(timeout=10)
            assert scheduler.generations()["sig"] == before + 2
            assert scheduler.stats().coalesced_mutations == 0
            assert len(plain_result.ids) == len(named_result.ids) == 1
        finally:
            scheduler.close()

    def test_malformed_add_fails_alone_mid_run(self, rng):
        db = _make_db(rng)
        scheduler = _staged_scheduler(db)
        try:
            good = [scheduler.submit_add(rng.random((1, DIM))) for _ in range(2)]
            bad = scheduler.submit_add(rng.random((1, DIM + 1)))  # wrong dim
            tail = scheduler.submit_add(rng.random((1, DIM)))
            scheduler.start()
            ids = [f.result(timeout=10).ids for f in good]
            with pytest.raises(Exception):
                bad.result(timeout=10)
            tail_ids = tail.result(timeout=10).ids
            # The two leading adds coalesced; the malformed one broke
            # the run and failed alone; the tail applied on its own.
            stats = scheduler.stats()
            assert stats.coalesced_mutations == 1
            assert stats.mutations == 3  # failed mutations are not counted
            all_ids = [i for chunk in ids for i in chunk] + list(tail_ids)
            assert len(set(all_ids)) == 3
        finally:
            scheduler.close()


class TestAdjacentRemovesCoalesce:
    def test_disjoint_removes_share_one_barrier(self, rng):
        db = _make_db(rng)
        scheduler = _staged_scheduler(db)
        try:
            before = scheduler.generations()["sig"]
            first = scheduler.submit_remove([0, 1])
            second = scheduler.submit_remove([2])
            scheduler.start()
            assert sorted(first.result(timeout=10).ids) == [0, 1]
            assert second.result(timeout=10).ids == [2]
            assert scheduler.generations()["sig"] == before + 1
            assert scheduler.stats().coalesced_mutations == 1
            served = scheduler.submit_query(np.zeros(DIM), SEED_N).result(
                timeout=10
            )
            assert {r.image_id for r in served.results} == set(
                range(3, SEED_N)
            )
        finally:
            scheduler.close()

    def test_overlapping_remove_fails_exactly_the_overlapper(self, rng):
        db = _make_db(rng)
        scheduler = _staged_scheduler(db)
        try:
            first = scheduler.submit_remove([0, 1])
            overlap = scheduler.submit_remove([1, 2])  # 1 already claimed
            scheduler.start()
            assert sorted(first.result(timeout=10).ids) == [0, 1]
            # The overlapper broke the run and applied alone, after the
            # first remove — so it got the engine's own unknown-id
            # error, exactly as it would have serially.  Id 2 survives:
            # validate-all-first removes touch nothing on failure.
            with pytest.raises(Exception):
                overlap.result(timeout=10)
            served = scheduler.submit_query(np.zeros(DIM), SEED_N).result(
                timeout=10
            )
            assert 2 in {r.image_id for r in served.results}
            assert scheduler.stats().coalesced_mutations == 0
        finally:
            scheduler.close()

    def test_duplicate_ids_rejected_at_admission(self, rng):
        db = _make_db(rng)
        scheduler = QueryScheduler(db, max_wait_ms=0.5)
        try:
            with pytest.raises(ServeError, match="duplicate image ids"):
                scheduler.submit_remove([3, 4, 3])
            # Admission rejection touched nothing: the ids are live and
            # a well-formed remove still works.
            result = scheduler.submit_remove([3, 4]).result(timeout=10)
            assert sorted(result.ids) == [3, 4]
        finally:
            scheduler.close()


class TestRunBoundaries:
    def test_mixed_kinds_never_coalesce(self, rng):
        db = _make_db(rng)
        scheduler = _staged_scheduler(db)
        try:
            before = scheduler.generations()["sig"]
            add_one = scheduler.submit_add(rng.random((1, DIM)))
            remove = scheduler.submit_remove([0])
            add_two = scheduler.submit_add(rng.random((1, DIM)))
            scheduler.start()
            add_one.result(timeout=10)
            remove.result(timeout=10)
            add_two.result(timeout=10)
            assert scheduler.generations()["sig"] == before + 3
            assert scheduler.stats().coalesced_mutations == 0
        finally:
            scheduler.close()

    def test_query_between_mutations_is_a_barrier(self, rng):
        # A query admitted between two adds must see exactly the first
        # add's rows — the adds are on opposite sides of the barrier and
        # must not coalesce across it.
        db = _make_db(rng)
        scheduler = _staged_scheduler(db)
        try:
            probe = rng.random(DIM) + 5.0  # far from the seed corpus
            first = scheduler.submit_add(probe[None, :])
            between = scheduler.submit_query(probe, 1)
            second = scheduler.submit_add(probe[None, :])
            scheduler.start()
            first_ids = first.result(timeout=10).ids
            served = between.result(timeout=10)
            second_ids = second.result(timeout=10).ids
            assert served.results[0].image_id == first_ids[0]
            assert served.results[0].distance == 0.0
            assert second_ids != first_ids
            assert scheduler.stats().coalesced_mutations == 0
        finally:
            scheduler.close()


class TestShardedCoalescing:
    def test_coalesced_add_bumps_each_touched_shard_once(self, rng):
        db = _make_db(rng)
        scheduler = _staged_scheduler(db, shards=2)
        try:
            before = scheduler.generations()["sig"]
            assert isinstance(before, tuple) and len(before) == 2
            # Two 2-row adds: sequential ids split every block across
            # both shards, so serially each shard would bump twice.
            # Coalesced, the merged 4-row call bumps each shard once.
            futures = [scheduler.submit_add(rng.random((2, DIM))) for _ in range(2)]
            scheduler.start()
            results = [f.result(timeout=10) for f in futures]
            after = scheduler.generations()["sig"]
            assert [a - b for a, b in zip(after, before)] == [1, 1]
            assert scheduler.stats().coalesced_mutations == 1
            all_ids = [i for r in results for i in r.ids]
            assert len(set(all_ids)) == 4
        finally:
            scheduler.close()

    def test_final_state_parity_with_fresh_build(self, rng):
        # End-to-end oracle: a coalesced mutation stream must leave the
        # engine bit-identical to a fresh build over the surviving rows.
        db = _make_db(rng)
        scheduler = _staged_scheduler(db, shards=2)
        seed_ids, seed_rows = db.feature_matrix("sig")
        table = {i: seed_rows[pos] for pos, i in enumerate(seed_ids)}
        try:
            blocks = [rng.random((2, DIM)) for _ in range(3)]
            add_futures = [scheduler.submit_add(block) for block in blocks]
            remove_future = scheduler.submit_remove([0, 3])
            scheduler.start()
            for future, block in zip(add_futures, blocks):
                for image_id, row in zip(future.result(timeout=10).ids, block):
                    table[image_id] = row
            remove_future.result(timeout=10)
            del table[0], table[3]

            ids = sorted(table)
            oracle = LinearScanIndex(EuclideanDistance()).build(
                ids, np.stack([table[i] for i in ids])
            )
            for probe in rng.random((5, DIM)):
                served = scheduler.submit_query(probe, 4).result(timeout=10)
                expected = oracle.knn_search(probe, 4)
                assert [(r.image_id, r.distance) for r in served.results] == [
                    (nb.id, nb.distance) for nb in expected
                ]
        finally:
            scheduler.close()
