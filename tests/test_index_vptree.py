"""Tests for the VP-tree: exactness, pruning, approximation contracts."""

import numpy as np
import pytest

from repro.errors import IndexingError
from repro.index.linear import LinearScanIndex
from repro.index.pivot import MaxVariancePivot, RandomPivot
from repro.index.vptree import VPTree, _interval_gap
from repro.metrics.base import CountingMetric
from repro.metrics.histogram import ChiSquareDistance, HistogramIntersection
from repro.metrics.minkowski import EuclideanDistance, ManhattanDistance


def _build_pair(rng, n=150, dim=3, metric=None):
    metric = metric or EuclideanDistance()
    vectors = rng.random((n, dim))
    ids = list(range(n))
    linear = LinearScanIndex(metric).build(ids, vectors)
    tree = VPTree(metric).build(ids, vectors)
    return linear, tree, vectors


class TestExactness:
    @pytest.mark.parametrize("dim", [1, 2, 4, 8])
    def test_knn_matches_linear_scan(self, rng, dim):
        linear, tree, _ = _build_pair(rng, dim=dim)
        for _ in range(10):
            query = rng.random(dim)
            expected = [n.distance for n in linear.knn_search(query, 8)]
            got = [n.distance for n in tree.knn_search(query, 8)]
            assert np.allclose(got, expected)

    @pytest.mark.parametrize("radius", [0.0, 0.1, 0.3, 1.0, 10.0])
    def test_range_matches_linear_scan(self, rng, radius):
        linear, tree, _ = _build_pair(rng)
        for _ in range(5):
            query = rng.random(3)
            expected = {n.id for n in linear.range_search(query, radius)}
            assert {n.id for n in tree.range_search(query, radius)} == expected

    def test_exact_under_l1(self, rng):
        linear, tree, _ = _build_pair(rng, metric=ManhattanDistance())
        query = rng.random(3)
        assert [n.id for n in tree.knn_search(query, 5)] == [
            n.id for n in linear.knn_search(query, 5)
        ]

    def test_exact_under_histogram_intersection(self, rng):
        # A non-Minkowski metric: only metric trees can index it.
        from repro.features.base import l1_normalize

        vectors = np.array([l1_normalize(rng.random(16)) for _ in range(100)])
        metric = HistogramIntersection()
        ids = list(range(100))
        linear = LinearScanIndex(metric).build(ids, vectors)
        tree = VPTree(metric).build(ids, vectors)
        query = l1_normalize(rng.random(16))
        assert [n.id for n in tree.knn_search(query, 5)] == [
            n.id for n in linear.knn_search(query, 5)
        ]

    def test_query_point_in_database_found_first(self, rng):
        _, tree, vectors = _build_pair(rng)
        result = tree.knn_search(vectors[37], 1)
        assert result[0].id == 37
        assert result[0].distance == pytest.approx(0.0)

    def test_duplicate_vectors_handled(self):
        vectors = np.zeros((20, 3))
        tree = VPTree(EuclideanDistance()).build(list(range(20)), vectors)
        result = tree.range_search(np.zeros(3), 0.0)
        assert len(result) == 20

    def test_single_item(self):
        tree = VPTree(EuclideanDistance()).build([5], np.array([[1.0, 2.0]]))
        assert tree.knn_search(np.zeros(2), 3)[0].id == 5


class TestPruning:
    def test_prunes_on_low_dimensional_data(self, rng):
        linear, tree, _ = _build_pair(rng, n=500, dim=2)
        total_tree = 0
        for _ in range(10):
            query = rng.random(2)
            tree.knn_search(query, 5)
            total_tree += tree.last_stats.distance_computations
        assert total_tree < 0.5 * 10 * 500  # at least 2x fewer than scan

    def test_small_radius_cheaper_than_large(self, rng):
        _, tree, _ = _build_pair(rng, n=400, dim=2)
        query = rng.random(2)
        tree.range_search(query, 0.01)
        small_cost = tree.last_stats.distance_computations
        tree.range_search(query, 2.0)
        large_cost = tree.last_stats.distance_computations
        assert small_cost < large_cost

    def test_distance_counts_match_counting_metric(self, rng):
        counter = CountingMetric(EuclideanDistance())
        vectors = rng.random((200, 3))
        tree = VPTree(counter).build(list(range(200)), vectors)
        counter.reset()
        tree.knn_search(rng.random(3), 5)
        assert counter.count == tree.last_stats.distance_computations
        counter.reset()
        tree.range_search(rng.random(3), 0.2)
        assert counter.count == tree.last_stats.distance_computations

    def test_build_stats_populated(self, rng):
        _, tree, _ = _build_pair(rng, n=200)
        stats = tree.build_stats
        assert stats.n_nodes > 0
        assert stats.n_leaves > 0
        assert stats.depth > 0
        assert stats.distance_computations > 0

    def test_pruned_plus_visited_accounting(self, rng):
        _, tree, _ = _build_pair(rng, n=300, dim=2)
        tree.range_search(rng.random(2), 0.05)
        stats = tree.last_stats
        assert stats.nodes_pruned > 0  # tight radius must prune something


class TestApproximation:
    def test_epsilon_zero_is_exact(self, rng):
        linear, tree, _ = _build_pair(rng)
        query = rng.random(3)
        exact = tree.knn_search_approximate(query, 5, epsilon=0.0)
        reference = linear.knn_search(query, 5)
        assert [n.id for n in exact] == [n.id for n in reference]

    def test_epsilon_bound_holds(self, rng):
        linear, tree, _ = _build_pair(rng, n=400, dim=4)
        epsilon = 0.5
        for _ in range(10):
            query = rng.random(4)
            true_kth = linear.knn_search(query, 5)[-1].distance
            approx = tree.knn_search_approximate(query, 5, epsilon=epsilon)
            assert len(approx) == 5
            # Every reported neighbour within (1 + eps) of the true k-th.
            assert approx[-1].distance <= (1.0 + epsilon) * true_kth + 1e-12

    def test_epsilon_reduces_cost(self, rng):
        _, tree, _ = _build_pair(rng, n=600, dim=6)
        query = rng.random(6)
        tree.knn_search(query, 5)
        exact_cost = tree.last_stats.distance_computations
        tree.knn_search_approximate(query, 5, epsilon=2.0)
        approx_cost = tree.last_stats.distance_computations
        assert approx_cost <= exact_cost

    def test_budget_respected(self, rng):
        _, tree, _ = _build_pair(rng, n=400, dim=6)
        budget = 50
        result = tree.knn_search_approximate(
            rng.random(6), 5, max_distance_computations=budget
        )
        # Budget may be exceeded by at most the final in-flight leaf item.
        assert tree.last_stats.distance_computations <= budget + 1
        assert len(result) <= 5

    def test_budget_still_returns_candidates(self, rng):
        _, tree, _ = _build_pair(rng, n=400, dim=6)
        result = tree.knn_search_approximate(
            rng.random(6), 5, max_distance_computations=100
        )
        assert len(result) == 5  # plenty of budget to fill k

    def test_validates_parameters(self, rng):
        _, tree, _ = _build_pair(rng)
        with pytest.raises(IndexingError):
            tree.knn_search_approximate(rng.random(3), 5, epsilon=-0.1)
        with pytest.raises(IndexingError):
            tree.knn_search_approximate(rng.random(3), 0)
        with pytest.raises(IndexingError):
            tree.knn_search_approximate(rng.random(3), 5, max_distance_computations=0)


class TestConfiguration:
    def test_rejects_non_metric(self):
        with pytest.raises(IndexingError, match="triangle inequality"):
            VPTree(ChiSquareDistance())

    def test_rejects_bad_leaf_size(self):
        with pytest.raises(IndexingError):
            VPTree(EuclideanDistance(), leaf_size=0)

    def test_leaf_size_one_still_exact(self, rng):
        vectors = rng.random((60, 3))
        ids = list(range(60))
        tree = VPTree(EuclideanDistance(), leaf_size=1).build(ids, vectors)
        linear = LinearScanIndex(EuclideanDistance()).build(ids, vectors)
        query = rng.random(3)
        assert [n.id for n in tree.knn_search(query, 6)] == [
            n.id for n in linear.knn_search(query, 6)
        ]

    def test_deterministic_given_seed(self, rng):
        vectors = rng.random((100, 3))
        ids = list(range(100))
        a = VPTree(EuclideanDistance(), seed=7).build(ids, vectors)
        b = VPTree(EuclideanDistance(), seed=7).build(ids, vectors)
        query = rng.random(3)
        a.knn_search(query, 5)
        b.knn_search(query, 5)
        assert (
            a.last_stats.distance_computations == b.last_stats.distance_computations
        )

    @pytest.mark.parametrize(
        "strategy", [RandomPivot(), MaxVariancePivot()], ids=["random", "variance"]
    )
    def test_pivot_strategies_stay_exact(self, rng, strategy):
        vectors = rng.random((120, 3))
        ids = list(range(120))
        tree = VPTree(EuclideanDistance(), pivot_strategy=strategy).build(ids, vectors)
        linear = LinearScanIndex(EuclideanDistance()).build(ids, vectors)
        query = rng.random(3)
        assert [n.id for n in tree.knn_search(query, 5)] == [
            n.id for n in linear.knn_search(query, 5)
        ]


class TestIntervalGap:
    def test_inside_interval_is_zero(self):
        assert _interval_gap(0.5, 0.2, 0.8) == 0.0

    def test_below_interval(self):
        assert _interval_gap(0.1, 0.4, 0.8) == pytest.approx(0.3)

    def test_above_interval(self):
        assert _interval_gap(1.0, 0.4, 0.8) == pytest.approx(0.2)
