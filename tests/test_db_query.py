"""Tests for multi-feature combination and rank fusion."""

import pytest

from repro.db.query import (
    RetrievalResult,
    borda_fuse,
    combine_feature_distances,
    reciprocal_rank_fuse,
)
from repro.errors import QueryError


class TestCombineFeatureDistances:
    def test_single_feature_preserves_order(self):
        distances = {"color": {1: 0.1, 2: 0.5, 3: 0.3}}
        combined = combine_feature_distances(distances, {"color": 1.0})
        ranked = sorted(combined, key=lambda c: combined[c][0])
        assert ranked == [1, 3, 2]

    def test_weights_shift_ranking(self):
        per_feature = {
            "color": {1: 0.0, 2: 1.0},
            "texture": {1: 1.0, 2: 0.0},
        }
        color_heavy = combine_feature_distances(per_feature, {"color": 10.0, "texture": 1.0})
        texture_heavy = combine_feature_distances(per_feature, {"color": 1.0, "texture": 10.0})
        assert color_heavy[1][0] < color_heavy[2][0]
        assert texture_heavy[2][0] < texture_heavy[1][0]

    def test_missing_candidate_gets_worst_distance(self):
        per_feature = {
            "color": {1: 0.1, 2: 0.2},
            "texture": {1: 0.3},  # candidate 2 unseen by texture
        }
        combined = combine_feature_distances(per_feature, {"color": 1.0, "texture": 1.0})
        assert combined[2][1]["texture"] == pytest.approx(combined[1][1]["texture"])
        assert combined[2][0] >= combined[1][0]

    def test_scale_invariance_across_features(self):
        # One feature's distances 1000x larger: median scaling equalizes.
        per_feature = {
            "a": {1: 100.0, 2: 300.0},
            "b": {1: 0.3, 2: 0.1},
        }
        combined = combine_feature_distances(per_feature, {"a": 1.0, "b": 1.0})
        # Candidate 1 best on a, candidate 2 best on b, equally scaled:
        # combined scores tie.
        assert combined[1][0] == pytest.approx(combined[2][0])

    def test_detail_contains_scaled_distances(self):
        combined = combine_feature_distances({"f": {5: 0.4}}, {"f": 1.0})
        score, detail = combined[5]
        assert set(detail) == {"f"}

    def test_validation(self):
        with pytest.raises(QueryError, match="no per-feature"):
            combine_feature_distances({}, {})
        with pytest.raises(QueryError, match="unknown"):
            combine_feature_distances({"a": {1: 0.1}}, {"b": 1.0})
        with pytest.raises(QueryError, match="non-negative"):
            combine_feature_distances({"a": {1: 0.1}}, {"a": -1.0})
        with pytest.raises(QueryError, match="positive"):
            combine_feature_distances({"a": {1: 0.1}}, {"a": 0.0})

    def test_empty_candidates(self):
        assert combine_feature_distances({"a": {}}, {"a": 1.0}) == {}


class TestBordaFuse:
    def test_unanimous_winner(self):
        rankings = [[1, 2, 3], [1, 3, 2], [1, 2, 3]]
        assert borda_fuse(rankings, 1) == [1]

    def test_consensus_beats_single_first_place(self):
        # 9 is first once but absent elsewhere; 2 is second everywhere.
        rankings = [[9, 2, 3], [2, 3, 4], [2, 4, 3]]
        assert borda_fuse(rankings, 1) == [2]

    def test_k_truncation(self):
        rankings = [[1, 2, 3, 4]]
        assert borda_fuse(rankings, 2) == [1, 2]

    def test_deterministic_tie_break_by_id(self):
        rankings = [[1], [2]]
        assert borda_fuse(rankings, 2) == [1, 2]

    def test_validation(self):
        with pytest.raises(QueryError):
            borda_fuse([], 1)
        with pytest.raises(QueryError):
            borda_fuse([[1]], 0)


class TestReciprocalRankFuse:
    def test_unanimous_winner(self):
        rankings = [[1, 2], [1, 3]]
        assert reciprocal_rank_fuse(rankings, 1) == [1]

    def test_appearing_in_more_lists_wins(self):
        rankings = [[5, 1], [2, 1], [3, 1]]
        assert reciprocal_rank_fuse(rankings, 1) == [1]

    def test_smoothing_validated(self):
        with pytest.raises(QueryError):
            reciprocal_rank_fuse([[1]], 1, smoothing=0.0)

    def test_k_and_rankings_validated(self):
        with pytest.raises(QueryError):
            reciprocal_rank_fuse([], 1)
        with pytest.raises(QueryError):
            reciprocal_rank_fuse([[1]], 0)


class TestRetrievalResult:
    def test_ordering_by_distance(self):
        a = RetrievalResult(image_id=2, distance=0.1)
        b = RetrievalResult(image_id=1, distance=0.2)
        assert a < b
        assert sorted([b, a]) == [a, b]

    def test_tie_broken_by_id(self):
        a = RetrievalResult(image_id=1, distance=0.1)
        b = RetrievalResult(image_id=2, distance=0.1)
        assert a < b
