"""Tests for quadratic-form distance and 1-D EMD (match distance)."""

import numpy as np
import pytest

from repro.errors import MetricError
from repro.features.base import l1_normalize
from repro.metrics.emd import MatchDistance, circular_match_distance, match_distance
from repro.metrics.minkowski import EuclideanDistance
from repro.metrics.quadratic import (
    QuadraticFormDistance,
    color_similarity_matrix,
    rgb_bin_centers,
)


class TestQuadraticForm:
    def test_identity_matrix_recovers_euclidean(self, rng):
        metric = QuadraticFormDistance(np.eye(8))
        a, b = rng.random(8), rng.random(8)
        assert metric.distance(a, b) == pytest.approx(EuclideanDistance().distance(a, b))

    def test_identity_axiom(self, rng):
        matrix = color_similarity_matrix(2)
        metric = QuadraticFormDistance(matrix)
        h = rng.random(8)
        assert metric.distance(h, h) == pytest.approx(0.0)

    def test_cross_bin_tolerance(self):
        # Moving mass to a *similar* color costs less than to a dissimilar
        # one -- the property Euclidean lacks and QBIC introduced A for.
        matrix = color_similarity_matrix(2)  # 8 colors; codes r*4+g*2+b
        metric = QuadraticFormDistance(matrix)
        base = np.zeros(8)
        base[0] = 1.0  # black
        near = np.zeros(8)
        near[1] = 1.0  # dark blue (differs in one channel)
        far = np.zeros(8)
        far[7] = 1.0  # white (differs in all three)
        assert metric.distance(base, near) < metric.distance(base, far)

    def test_euclidean_is_blind_to_bin_similarity(self):
        base, near, far = np.zeros(8), np.zeros(8), np.zeros(8)
        base[0], near[1], far[7] = 1.0, 1.0, 1.0
        euclid = EuclideanDistance()
        assert euclid.distance(base, near) == pytest.approx(euclid.distance(base, far))

    def test_triangle_inequality(self, rng):
        metric = QuadraticFormDistance(color_similarity_matrix(2))
        for _ in range(25):
            a, b, c = (l1_normalize(rng.random(8)) for _ in range(3))
            assert metric.distance(a, c) <= metric.distance(a, b) + metric.distance(b, c) + 1e-9

    def test_rejects_asymmetric_matrix(self):
        matrix = np.eye(3)
        matrix[0, 1] = 0.5
        with pytest.raises(MetricError, match="symmetric"):
            QuadraticFormDistance(matrix)

    def test_rejects_indefinite_matrix(self):
        matrix = np.array([[1.0, 2.0], [2.0, 1.0]])  # eigenvalues 3, -1
        with pytest.raises(MetricError, match="semi-definite"):
            QuadraticFormDistance(matrix)

    def test_rejects_dim_mismatch(self):
        metric = QuadraticFormDistance(np.eye(4))
        with pytest.raises(MetricError):
            metric.distance(np.zeros(5), np.zeros(5))


class TestColorSimilarityMatrix:
    def test_diagonal_is_one(self):
        matrix = color_similarity_matrix(3)
        assert np.allclose(np.diag(matrix), 1.0)

    def test_most_dissimilar_pair_is_zero(self):
        matrix = color_similarity_matrix(2)
        assert matrix.min() == pytest.approx(0.0, abs=1e-9)
        # Black (code 0) vs white (code 7) is the extreme pair.
        assert matrix[0, 7] == pytest.approx(0.0, abs=1e-9)

    def test_psd(self):
        for levels in (2, 3, 4):
            eigenvalues = np.linalg.eigvalsh(color_similarity_matrix(levels))
            assert eigenvalues.min() >= -1e-9

    def test_bin_centers_order(self):
        centers = rgb_bin_centers(2)
        assert np.allclose(centers[0], [0.25, 0.25, 0.25])
        assert np.allclose(centers[7], [0.75, 0.75, 0.75])
        assert np.allclose(centers[4], [0.75, 0.25, 0.25])  # r most significant


class TestMatchDistance:
    def test_adjacent_shift_costs_its_distance(self):
        h = np.array([1.0, 0.0, 0.0, 0.0])
        g_near = np.array([0.0, 1.0, 0.0, 0.0])
        g_far = np.array([0.0, 0.0, 0.0, 1.0])
        assert match_distance(h, g_near) == pytest.approx(1.0)
        assert match_distance(h, g_far) == pytest.approx(3.0)

    def test_l1_is_blind_to_shift_size(self):
        h = np.array([1.0, 0.0, 0.0, 0.0])
        g_near = np.array([0.0, 1.0, 0.0, 0.0])
        g_far = np.array([0.0, 0.0, 0.0, 1.0])
        assert np.abs(h - g_near).sum() == np.abs(h - g_far).sum()

    def test_requires_equal_mass(self):
        with pytest.raises(MetricError, match="equal mass"):
            match_distance(np.array([1.0, 0.0]), np.array([0.5, 0.0]))

    def test_identity_and_symmetry(self, rng):
        h = l1_normalize(rng.random(8))
        g = l1_normalize(rng.random(8))
        assert match_distance(h, h) == pytest.approx(0.0)
        assert match_distance(h, g) == pytest.approx(match_distance(g, h))

    def test_triangle_inequality(self, rng):
        for _ in range(25):
            h, g, f = (l1_normalize(rng.random(8)) for _ in range(3))
            assert match_distance(h, f) <= match_distance(h, g) + match_distance(g, f) + 1e-9


class TestCircularMatchDistance:
    def test_wraparound_cheaper_than_linear(self):
        # Mass at bin 0 vs bin 7 on an 8-bin circle: one step around.
        h = np.array([1.0, 0, 0, 0, 0, 0, 0, 0])
        g = np.array([0, 0, 0, 0, 0, 0, 0, 1.0])
        assert match_distance(h, g) == pytest.approx(7.0)
        assert circular_match_distance(h, g) == pytest.approx(1.0)

    def test_identity(self, rng):
        h = l1_normalize(rng.random(8))
        assert circular_match_distance(h, h) == pytest.approx(0.0)

    def test_rotation_invariance_of_cost(self):
        h = np.array([0.5, 0.5, 0, 0])
        g = np.array([0, 0.5, 0.5, 0])
        rolled_h = np.roll(h, 2)
        rolled_g = np.roll(g, 2)
        assert circular_match_distance(h, g) == pytest.approx(
            circular_match_distance(rolled_h, rolled_g)
        )


class TestMatchDistanceWrapper:
    def test_normalizes_by_default(self):
        metric = MatchDistance()
        h = np.array([2.0, 0.0])
        g = np.array([0.0, 1.0])
        assert metric.distance(h, g) == pytest.approx(1.0)

    def test_circular_flag(self):
        metric = MatchDistance(circular=True)
        h = np.zeros(8)
        g = np.zeros(8)
        h[0] = 1.0
        g[7] = 1.0
        assert metric.distance(h, g) == pytest.approx(1.0 / 1.0 * 1.0)

    def test_empty_vs_nonempty(self):
        metric = MatchDistance()
        assert metric.distance(np.zeros(4), np.zeros(4)) == 0.0
        assert metric.distance(np.zeros(4), np.array([1.0, 0, 0, 0])) == 1.0

    def test_name(self):
        assert MatchDistance().name == "match"
        assert MatchDistance(circular=True).name == "circular_match"
