"""Tests for the Image value type."""

import numpy as np
import pytest

from repro.errors import ImageError
from repro.image.core import Image


class TestConstruction:
    def test_gray_from_2d_array(self):
        img = Image(np.zeros((4, 6)))
        assert img.mode == "gray"
        assert img.width == 6
        assert img.height == 4
        assert img.is_gray

    def test_rgb_from_3d_array(self):
        img = Image(np.zeros((4, 6, 3)))
        assert img.mode == "rgb"
        assert not img.is_gray

    def test_rejects_wrong_channel_count(self):
        with pytest.raises(ImageError, match="3 channels"):
            Image(np.zeros((4, 6, 4)))

    def test_rejects_1d_array(self):
        with pytest.raises(ImageError, match="2-D"):
            Image(np.zeros(12))

    def test_rejects_empty(self):
        with pytest.raises(ImageError, match="non-empty"):
            Image(np.zeros((0, 5)))

    def test_rejects_out_of_range(self):
        with pytest.raises(ImageError, match=r"\[0, 1\]"):
            Image(np.full((2, 2), 1.5))
        with pytest.raises(ImageError, match=r"\[0, 1\]"):
            Image(np.full((2, 2), -0.5))

    def test_rejects_nan(self):
        data = np.zeros((2, 2))
        data[0, 0] = np.nan
        with pytest.raises(ImageError, match="NaN"):
            Image(data)

    def test_pixels_are_read_only(self):
        img = Image(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            img.pixels[0, 0] = 1.0

    def test_input_array_is_copied(self):
        data = np.zeros((2, 2))
        img = Image(data)
        data[0, 0] = 1.0
        assert img.pixels[0, 0] == 0.0

    def test_integer_input_converted(self):
        img = Image(np.array([[0, 1], [1, 0]]))
        assert img.pixels.dtype == np.float64


class TestConstructors:
    def test_from_uint8_scales(self):
        img = Image.from_uint8(np.array([[0, 255], [128, 64]], dtype=np.uint8))
        assert img.pixels[0, 1] == 1.0
        assert img.pixels[0, 0] == 0.0
        assert abs(img.pixels[1, 0] - 128 / 255) < 1e-12

    def test_from_uint8_rejects_other_dtypes(self):
        with pytest.raises(ImageError, match="uint8"):
            Image.from_uint8(np.zeros((2, 2), dtype=np.float64))

    def test_from_array_normalize(self):
        img = Image.from_array(np.array([[10.0, 20.0], [15.0, 10.0]]), normalize=True)
        assert img.pixels.min() == 0.0
        assert img.pixels.max() == 1.0

    def test_from_array_normalize_constant(self):
        img = Image.from_array(np.full((3, 3), 7.0), normalize=True)
        assert np.all(img.pixels == 0.0)

    def test_zeros_and_full(self):
        assert np.all(Image.zeros(3, 2).pixels == 0.0)
        img = Image.full(3, 2, (0.1, 0.2, 0.3), mode="rgb")
        assert img.mode == "rgb"
        assert np.allclose(img.pixels[1, 2], [0.1, 0.2, 0.3])

    def test_full_rejects_bad_size(self):
        with pytest.raises(ImageError, match="positive"):
            Image.zeros(0, 4)

    def test_full_rejects_bad_mode(self):
        with pytest.raises(ImageError, match="unknown image mode"):
            Image.full(2, 2, 0.5, mode="cmyk")


class TestConversions:
    def test_to_uint8_round_trip(self):
        original = np.array([[0, 100, 255]], dtype=np.uint8)
        assert np.array_equal(Image.from_uint8(original).to_uint8(), original)

    def test_to_rgb_replicates_gray(self):
        img = Image(np.array([[0.25, 0.5]]))
        rgb = img.to_rgb()
        assert rgb.mode == "rgb"
        for channel in range(3):
            assert np.allclose(rgb.channel(channel), img.pixels)

    def test_to_rgb_identity_on_rgb(self, rgb_image):
        assert rgb_image.to_rgb() is rgb_image

    def test_to_gray_identity_on_gray(self, gray_image):
        assert gray_image.to_gray() is gray_image

    def test_channel_access(self, rgb_image):
        assert rgb_image.channel(0).shape == (32, 32)
        with pytest.raises(ImageError):
            rgb_image.channel(3)

    def test_channel_rejected_on_gray(self, gray_image):
        with pytest.raises(ImageError, match="no separate channels"):
            gray_image.channel(0)


class TestOperations:
    def test_map_clips(self, gray_image):
        doubled = gray_image.map(lambda p: p * 2.0)
        assert doubled.pixels.max() <= 1.0

    def test_equality_and_hash(self):
        a = Image(np.full((2, 2), 0.5))
        b = Image(np.full((2, 2), 0.5))
        c = Image(np.full((2, 2), 0.6))
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_allclose(self):
        a = Image(np.full((2, 2), 0.5))
        b = Image(np.full((2, 2), 0.5 + 1e-12))
        assert a.allclose(b)
        assert not a.allclose(Image(np.zeros((3, 3))))

    def test_stack_channels(self):
        r = np.full((2, 2), 0.1)
        g = np.full((2, 2), 0.2)
        b = np.full((2, 2), 0.3)
        img = Image.stack_channels([r, g, b])
        assert np.allclose(img.pixels[0, 0], [0.1, 0.2, 0.3])

    def test_stack_channels_validates(self):
        with pytest.raises(ImageError, match="exactly 3"):
            Image.stack_channels([np.zeros((2, 2))])
        with pytest.raises(ImageError, match="identical shape"):
            Image.stack_channels([np.zeros((2, 2)), np.zeros((2, 3)), np.zeros((2, 2))])

    def test_repr(self, rgb_image):
        assert "rgb" in repr(rgb_image)
        assert "width=32" in repr(rgb_image)
