"""Fault-injection harness for the durability subsystem.

The durability contract (``docs/durability.md``) is *acked ⟹ durable*:
once a mutation's future resolves, the write survives a crash at any
later instant — and a crash at any *earlier* instant loses at most
unacknowledged work.  This module makes "any instant" testable by
counting the filesystem boundaries the journal and snapshot code cross
(:class:`CountingFS`) and then killing the process — by exception
(:class:`FaultFS` in ``raise`` mode, for exhaustive in-process sweeps)
or for real (``exit`` mode: ``os._exit(137)``, indistinguishable from
``kill -9`` to the recovering process) — at exactly the Nth boundary
(:class:`FaultFS`).

A *boundary* is one call into the injectable filesystem shim
(``repro.db.fsutil.FileSystem``): ``write``, ``fsync``, ``replace``
(atomic rename), or ``fsync_dir``.  Every durable byte the subsystem
ever writes passes through one of those four methods, so sweeping the
crash point across all of them covers torn journal appends, missed
fsyncs, half-finished snapshot staging, and manifest flips.

``python -m tests.faults`` (see ``main``) runs one *child workload* for
the subprocess crash suite: open a durable root, apply a scripted
mutation sequence, print an ``ACK <seq>`` line (flushed) after each
acknowledged future, and die at the injected boundary.  The parent
(``tests/test_crash_faults.py``) collects the flushed ACKs — the only
writes the contract protects — recovers the root, and compares against
an oracle database that applied exactly the acknowledged prefix.
"""

from __future__ import annotations

import sys

import numpy as np

from repro.db.fsutil import FileSystem

#: The boundary vocabulary, in the order FileSystem exposes it.
BOUNDARIES = ("write", "fsync", "replace", "fsync_dir")


class InjectedCrash(BaseException):
    """The simulated power cut.

    Deliberately a ``BaseException``: crash-consistency code must not
    be able to ``except Exception`` its way past a power failure, the
    way it legitimately may for an I/O *error*.
    """


class CountingFS(FileSystem):
    """A pass-through filesystem that counts every boundary crossed.

    A calibration run with this shim tells the sweep how many crash
    points a workload has; :class:`FaultFS` then targets each one.
    """

    def __init__(self) -> None:
        self.calls: list[str] = []

    @property
    def count(self) -> int:
        return len(self.calls)

    def _record(self, kind: str) -> None:
        self.calls.append(kind)

    def write(self, file, data) -> None:  # type: ignore[override]
        self._record("write")
        super().write(file, data)

    def fsync(self, file) -> None:  # type: ignore[override]
        self._record("fsync")
        super().fsync(file)

    def replace(self, src, dst) -> None:  # type: ignore[override]
        self._record("replace")
        super().replace(src, dst)

    def fsync_dir(self, path) -> None:  # type: ignore[override]
        self._record("fsync_dir")
        super().fsync_dir(path)


class FaultFS(CountingFS):
    """Crash *before* the ``crash_at``-th boundary executes.

    Crashing before (not after) the call models the strictest failure:
    the data the caller was about to make durable is not.  Everything
    up to the boundary went through the real filesystem, so the on-disk
    state the recoverer sees is exactly what a power cut at that
    instant would leave (modulo kernel-page-cache effects, which the
    subprocess ``exit`` mode inherits honestly and the fsync discipline
    is designed for).

    Parameters
    ----------
    crash_at:
        0-based index of the boundary to die at (as counted by a
        :class:`CountingFS` calibration run of the same workload).
    mode:
        ``'raise'`` throws :class:`InjectedCrash` — the in-process
        sweep catches it and recovers from disk within the same test.
        ``'exit'`` calls ``os._exit(137)`` — no atexit handlers, no
        ``finally`` blocks, no flushing: the honest kill -9.
    """

    def __init__(self, crash_at: int, mode: str = "raise") -> None:
        super().__init__()
        if mode not in ("raise", "exit"):
            raise ValueError(f"unknown fault mode {mode!r}")
        self.crash_at = int(crash_at)
        self.mode = mode

    def _record(self, kind: str) -> None:
        if self.count == self.crash_at:
            if self.mode == "exit":
                import os

                os._exit(137)
            raise InjectedCrash(
                f"injected crash at boundary #{self.crash_at} ({kind})"
            )
        super()._record(kind)


# ---------------------------------------------------------------------------
# Shared workload pieces (in-process sweep + subprocess child)
# ---------------------------------------------------------------------------
def make_schema(dim: int = 6):
    """The tiny single-feature schema every fault test shares."""
    from repro.features.base import PresetSignature
    from repro.features.pipeline import FeatureSchema

    return FeatureSchema([PresetSignature(dim)])


def seed_database(
    dim: int = 6,
    n: int = 12,
    seed: int = 7,
    *,
    backend=None,
    index_factory=None,
):
    """A small deterministic database to snapshot before the crash run.

    ``backend``/``index_factory`` configure the storage backend and
    index family; :func:`repro.db.recovery.open_serving_root` carries
    both into the recovered database, so the mmap fault sweep seeds
    here once and the whole durable root runs on the bounded backend.
    """
    from repro.db.database import ImageDatabase

    rng = np.random.default_rng(seed)
    db = ImageDatabase(make_schema(dim), index_factory=index_factory, backend=backend)
    db.add_vectors(rng.random((n, dim)))
    return db


def workload_steps(dim: int = 6, seed: int = 21) -> list[tuple]:
    """The scripted mutation sequence, deterministic across processes.

    Returns ``('add', matrix)`` / ``('remove', [ids])`` steps.  Removed
    ids are expressed relative to the seeded database (ids 0..n-1) and
    the adds that precede the remove, so parent, child, and oracle all
    agree on them without communicating.
    """
    rng = np.random.default_rng(seed)
    return [
        ("add", rng.random((3, dim))),
        ("add", rng.random((1, dim))),
        ("remove", [1, 12]),  # one seeded id, one id added above
        ("add", rng.random((2, dim))),
        ("remove", [14]),
        ("add", rng.random((4, dim))),
    ]


def apply_steps_directly(db, steps) -> None:
    """Apply a prefix of the workload straight to a database (the oracle)."""
    for kind, payload in steps:
        if kind == "add":
            db.add_vectors(payload)
        else:
            db.remove(payload)


def assert_states_match(recovered, oracle, dim: int = 6, seed: int = 99) -> None:
    """Recovered state must be indistinguishable from the oracle.

    Checks the catalog id set, every stored vector bit-for-bit, and —
    the acceptance criterion — that a battery of exact k-NN queries
    returns bit-identical (id, distance) rankings.  Query results are
    set-determined (top-k by ``(distance, id)``), so this holds no
    matter how the recovered database was rebuilt.
    """
    feature = recovered.schema.names[0]
    assert set(recovered.catalog.ids) == set(oracle.catalog.ids)
    for image_id in oracle.catalog.ids:
        mine = recovered.vector_of(feature, image_id)
        theirs = oracle.vector_of(feature, image_id)
        assert mine.tobytes() == theirs.tobytes(), f"vector {image_id} differs"
    rng = np.random.default_rng(seed)
    k = min(5, len(oracle))
    for query in rng.random((8, dim)):
        got = recovered.query(query, k=k, feature=feature)
        want = oracle.query(query, k=k, feature=feature)
        assert [(r.image_id, r.distance) for r in got] == [
            (r.image_id, r.distance) for r in want
        ]


# ---------------------------------------------------------------------------
# Subprocess child mode (python -m tests.faults ROOT CRASH_AT N_SHARDS [BACKEND])
# ---------------------------------------------------------------------------
def _child(root: str, crash_at: int, n_shards: int, backend: str | None = None) -> int:
    """Run the scripted workload against ``root``, dying at ``crash_at``.

    Prints one flushed ``ACK <step-index>`` line per acknowledged
    mutation *before* the next step is submitted, so the parent's view
    of stdout is exactly the set of futures that resolved before the
    crash.  ``crash_at < 0`` disables injection (the oracle/calibration
    run); the process then prints ``DONE <n-boundaries>`` and exits 0.

    With a ``backend`` spec (e.g. ``mmap:DIR``) the database runs its
    index cores on that storage backend with a linear-scan index built
    *before* the mutation stream, so every add/remove also crosses the
    backend's own write boundaries (page writes, header rewrite, flush)
    — the sweep then covers the mmap write path, not just the journal.
    """
    from pathlib import Path

    from repro.db.recovery import open_serving_root
    from repro.serve.scheduler import QueryScheduler

    fs: CountingFS
    fs = CountingFS() if crash_at < 0 else FaultFS(crash_at, mode="exit")
    backend_factory = None
    index_factory = None
    if backend is not None:
        from repro.db.backend import resolve_backend_factory
        from repro.index.linear import LinearScanIndex

        # The backend writes through the same injected filesystem as the
        # journal, so its page/header/flush calls join the boundary count.
        backend_factory = resolve_backend_factory(backend, fs=fs)
        index_factory = LinearScanIndex
    db, journal_set, _report = open_serving_root(
        Path(root),
        seed_database(backend=backend_factory, index_factory=index_factory),
        n_shards=n_shards,
        fs=fs,
    )
    scheduler = QueryScheduler(
        db, shards=n_shards, journal=journal_set, max_wait_ms=0.0, cache_size=0
    )
    if backend is not None:
        # Build the cores up front (per shard view — the engine's live
        # item set): the scripted mutations must hit the backend's
        # append/take path, not a lazy rebuild at query time.
        for shard in scheduler.engine.shards:
            shard.build_indexes()
    for index, (kind, payload) in enumerate(workload_steps()):
        if kind == "add":
            future = scheduler.submit_add(payload)
        else:
            future = scheduler.submit_remove(payload)
        future.result(timeout=30)
        # Flushed before the next submission: if this line reached the
        # parent, the mutation was acknowledged and must survive.
        print(f"ACK {index}", flush=True)
    scheduler.close()
    print(f"DONE {fs.count}", flush=True)
    return 0


def main(argv: list[str]) -> int:
    if len(argv) not in (3, 4):
        print(
            "usage: python -m tests.faults ROOT CRASH_AT N_SHARDS [BACKEND]",
            file=sys.stderr,
        )
        return 2
    backend = argv[3] if len(argv) == 4 else None
    return _child(argv[0], int(argv[1]), int(argv[2]), backend)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
