"""Tests for circular-shift matching and Hausdorff distance."""

import numpy as np
import pytest

from repro.errors import MetricError
from repro.metrics.hausdorff import HausdorffDistance, directed_hausdorff, hausdorff
from repro.metrics.minkowski import EuclideanDistance, ManhattanDistance
from repro.metrics.shifted import CircularShiftDistance


class TestCircularShiftDistance:
    def test_pure_rotation_scores_zero(self, rng):
        h = rng.random(12)
        metric = CircularShiftDistance()
        assert metric.distance(h, np.roll(h, 5)) == pytest.approx(0.0)

    def test_never_exceeds_base_distance(self, rng):
        base = EuclideanDistance()
        metric = CircularShiftDistance(base)
        for _ in range(10):
            a, b = rng.random(8), rng.random(8)
            assert metric.distance(a, b) <= base.distance(a, b) + 1e-12

    def test_max_shift_limits_window(self):
        h = np.zeros(12)
        h[0] = 1.0
        g = np.roll(h, 6)
        limited = CircularShiftDistance(max_shift=2)
        unlimited = CircularShiftDistance()
        assert unlimited.distance(h, g) == pytest.approx(0.0)
        assert limited.distance(h, g) > 0.5

    def test_max_shift_zero_is_base_distance(self, rng):
        a, b = rng.random(8), rng.random(8)
        metric = CircularShiftDistance(max_shift=0)
        assert metric.distance(a, b) == pytest.approx(EuclideanDistance().distance(a, b))

    def test_flagged_non_metric(self):
        assert not CircularShiftDistance().is_metric

    def test_custom_base_metric(self, rng):
        a, b = rng.random(6), rng.random(6)
        metric = CircularShiftDistance(ManhattanDistance(), max_shift=0)
        assert metric.distance(a, b) == pytest.approx(ManhattanDistance().distance(a, b))

    def test_rejects_negative_max_shift(self):
        with pytest.raises(MetricError):
            CircularShiftDistance(max_shift=-1)

    def test_name_mentions_limit(self):
        assert "3" in CircularShiftDistance(max_shift=3).name
        assert "all" in CircularShiftDistance().name


class TestHausdorffFunctions:
    def test_identical_sets(self, rng):
        points = rng.random((10, 2))
        assert hausdorff(points, points) == pytest.approx(0.0)

    def test_known_value(self):
        a = np.array([[0.0, 0.0], [1.0, 0.0]])
        b = np.array([[0.0, 0.0]])
        assert directed_hausdorff(a, b) == pytest.approx(1.0)
        assert directed_hausdorff(b, a) == pytest.approx(0.0)
        assert hausdorff(a, b) == pytest.approx(1.0)

    def test_asymmetry_of_directed_form(self):
        a = np.array([[0.0, 0.0]])
        b = np.array([[0.0, 0.0], [5.0, 0.0]])
        assert directed_hausdorff(a, b) != directed_hausdorff(b, a)

    def test_subset_has_zero_directed_distance(self, rng):
        b = rng.random((20, 2))
        a = b[:5]
        assert directed_hausdorff(a, b) == pytest.approx(0.0)

    def test_triangle_inequality(self, rng):
        for _ in range(10):
            a = rng.random((6, 2))
            b = rng.random((6, 2))
            c = rng.random((6, 2))
            assert hausdorff(a, c) <= hausdorff(a, b) + hausdorff(b, c) + 1e-12

    def test_rejects_empty_set(self):
        with pytest.raises(MetricError, match="non-empty"):
            directed_hausdorff(np.zeros((0, 2)), np.zeros((3, 2)))

    def test_rejects_dim_mismatch(self):
        with pytest.raises(MetricError, match="dimensionality"):
            directed_hausdorff(np.zeros((2, 2)), np.zeros((2, 3)))

    def test_1d_points_accepted(self):
        assert hausdorff(np.array([0.0, 1.0]), np.array([0.0, 3.0])) == pytest.approx(2.0)


class TestHausdorffMetricAdapter:
    def test_flat_buffer_unpacking(self):
        metric = HausdorffDistance(point_dim=2)
        a = np.array([0.0, 0.0, 1.0, 0.0])  # points (0,0), (1,0)
        b = np.array([0.0, 0.0])            # point (0,0)
        assert metric.distance(a, b) == pytest.approx(1.0)

    def test_nan_padding_dropped(self):
        metric = HausdorffDistance(point_dim=2)
        a = np.array([0.0, 0.0, np.nan, np.nan])
        b = np.array([3.0, 4.0])
        assert metric.distance(a, b) == pytest.approx(5.0)

    def test_rejects_ragged_buffer(self):
        metric = HausdorffDistance(point_dim=2)
        with pytest.raises(MetricError, match="whole number"):
            metric.distance(np.array([1.0, 2.0, 3.0]), np.array([0.0, 0.0]))

    def test_rejects_bad_point_dim(self):
        with pytest.raises(MetricError):
            HausdorffDistance(point_dim=0)
