"""Tests for edge and shape features."""

import numpy as np
import pytest

from repro.errors import FeatureError
from repro.features.edges import EdgeDensity, EdgeOrientationHistogram
from repro.features.shape import (
    RegionMoments,
    ShapeHistogram,
    chamfer_propagate,
    distance_transform,
    salience_distance_transform,
)
from repro.image import synth, transforms
from repro.image.core import Image


class TestEdgeOrientationHistogram:
    def test_normalized(self, scene_image):
        h = EdgeOrientationHistogram(18).extract(scene_image)
        assert h.shape == (18,)
        assert h.sum() == pytest.approx(1.0)

    def test_vertical_stripes_peak_at_zero_orientation(self):
        img = synth.stripes(64, 64, 8.0, angle=0.0)
        h = EdgeOrientationHistogram(18).extract(img)
        # Vertical stripes -> horizontal gradient -> orientation ~0 (folded).
        assert np.argmax(h) in (0, 17)

    def test_horizontal_stripes_peak_at_quarter_turn(self):
        img = synth.stripes(64, 64, 8.0, angle=np.pi / 2)
        h = EdgeOrientationHistogram(18).extract(img)
        assert abs(int(np.argmax(h)) - 9) <= 1

    def test_distinguishes_stripe_orientations(self):
        horizontal = synth.stripes(64, 64, 8.0, angle=np.pi / 2)
        diagonal = synth.stripes(64, 64, 8.0, angle=np.pi / 4)
        extractor = EdgeOrientationHistogram(18)
        d = np.abs(extractor.extract(horizontal) - extractor.extract(diagonal)).sum()
        assert d > 0.5

    def test_not_rotation_invariant_but_shift_related(self):
        # The paper's point: rotating the image circularly shifts the
        # orientation histogram.
        img = synth.stripes(64, 64, 8.0, angle=0.0)
        rotated = transforms.rotate90(img)
        extractor = EdgeOrientationHistogram(18)
        h = extractor.extract(img)
        h_rot = extractor.extract(rotated)
        assert np.abs(h - h_rot).sum() > 0.5  # not invariant
        shifted = np.roll(h, 9)  # 90 degrees = 9 bins of 10 degrees
        assert np.abs(shifted - h_rot).sum() < 0.2  # but shift-matched

    def test_unweighted_mode(self, scene_image):
        h = EdgeOrientationHistogram(18, magnitude_weighted=False).extract(scene_image)
        assert h.sum() == pytest.approx(1.0)

    def test_flat_image_gives_zero_histogram(self):
        h = EdgeOrientationHistogram(18).extract(Image.full(32, 32, 0.5))
        assert np.allclose(h, 0.0)

    def test_validates(self):
        with pytest.raises(FeatureError):
            EdgeOrientationHistogram(1)
        with pytest.raises(FeatureError):
            EdgeOrientationHistogram(18, sigma=-1.0)


class TestEdgeDensity:
    def test_busy_beats_flat(self, rng):
        busy = synth.checkerboard(64, 64, 4)
        flat = synth.value_noise(64, 64, rng, scale=32)
        extractor = EdgeDensity()
        assert extractor.extract(busy)[0] > extractor.extract(flat)[0]

    def test_range(self, scene_image):
        value = EdgeDensity().extract(scene_image)[0]
        assert 0.0 <= value <= 1.0


class TestChamferPropagation:
    def test_distance_to_single_seed(self):
        mask = np.zeros((9, 9), dtype=bool)
        mask[4, 4] = True
        dt = distance_transform(mask)
        assert dt[4, 4] == 0.0
        assert dt[4, 8] == pytest.approx(4.0)          # axial
        assert dt[8, 8] == pytest.approx(4 * np.sqrt(2))  # diagonal
        assert dt[0, 0] == pytest.approx(4 * np.sqrt(2))

    def test_mixed_path(self):
        mask = np.zeros((8, 8), dtype=bool)
        mask[0, 0] = True
        dt = distance_transform(mask)
        # (2, 5): 2 diagonal + 3 axial steps.
        assert dt[2, 5] == pytest.approx(2 * np.sqrt(2) + 3)

    def test_empty_mask_gives_inf(self):
        dt = distance_transform(np.zeros((4, 4), dtype=bool))
        assert np.all(np.isinf(dt))

    def test_full_mask_gives_zero(self):
        dt = distance_transform(np.ones((4, 4), dtype=bool))
        assert np.all(dt == 0.0)

    def test_nonuniform_seeds(self):
        seeds = np.full((1, 5), np.inf)
        seeds[0, 0] = 2.0
        seeds[0, 4] = 0.0
        dt = chamfer_propagate(seeds)
        # Position 1: min(2 + 1, 0 + 3) = 3; position 3: min(2+3, 0+1)=1.
        assert dt[0, 1] == pytest.approx(3.0)
        assert dt[0, 3] == pytest.approx(1.0)

    def test_monotone_in_seed_costs(self, rng):
        mask = rng.random((16, 16)) < 0.1
        if not mask.any():
            mask[0, 0] = True
        base = distance_transform(mask)
        seeded = chamfer_propagate(np.where(mask, 1.0, np.inf))
        assert np.all(seeded >= base)
        assert np.allclose(seeded, base + 1.0)

    def test_rejects_non_2d(self):
        with pytest.raises(FeatureError):
            chamfer_propagate(np.zeros(5))


class TestSalienceDistanceTransform:
    def test_strong_edges_dominate(self):
        # One strong edge and one weak edge: near the weak edge, the SDT
        # is larger than the plain DT would be.
        img = np.full((32, 32), 0.5)
        img[:, 16:] = 1.0     # strong edge at x=16
        img[8, 4] = 0.52      # tiny blip at (8, 4)
        sdt = salience_distance_transform(Image(img), sigma=0.0)
        assert sdt[8, 15] < sdt[8, 5]  # strong edge pulls harder

    def test_flat_image_is_all_inf(self):
        sdt = salience_distance_transform(Image.full(16, 16, 0.5), sigma=0.0)
        assert np.all(np.isinf(sdt))

    def test_validates_scale(self, gray_image):
        with pytest.raises(FeatureError):
            salience_distance_transform(gray_image, salience_scale=-1.0)


class TestShapeHistogram:
    def test_normalized(self, scene_image):
        h = ShapeHistogram(16).extract(scene_image)
        assert h.sum() == pytest.approx(1.0)

    def test_cluttered_vs_sparse(self, rng):
        # Cluttered: mass at small distances; sparse: mass spread farther.
        cluttered = synth.checkerboard(64, 64, 4)
        sparse = synth.draw_disk(synth.solid(64, 64, (0.2,) * 3), (32, 32), 6, (0.9,) * 3)
        extractor = ShapeHistogram(16, salience=False)
        h_cluttered = extractor.extract(cluttered)
        h_sparse = extractor.extract(sparse)
        assert h_cluttered[0] > h_sparse[0]

    def test_featureless_image_mass_in_last_cell(self):
        h = ShapeHistogram(16).extract(Image.full(32, 32, 0.5))
        assert h[-1] == pytest.approx(1.0)

    def test_plain_dt_variant(self, scene_image):
        h = ShapeHistogram(16, salience=False).extract(scene_image)
        assert h.sum() == pytest.approx(1.0)

    def test_validates(self):
        with pytest.raises(FeatureError):
            ShapeHistogram(1)
        with pytest.raises(FeatureError):
            ShapeHistogram(16, max_fraction=0.0)


class TestRegionMoments:
    def test_dim(self):
        assert RegionMoments().dim == 5

    def test_centroid_tracks_object(self):
        left = synth.draw_disk(synth.solid(64, 64, (0.1,) * 3), (16, 32), 8, (0.9,) * 3)
        right = synth.draw_disk(synth.solid(64, 64, (0.1,) * 3), (48, 32), 8, (0.9,) * 3)
        m_left = RegionMoments().extract(left)
        m_right = RegionMoments().extract(right)
        assert m_left[1] < 0.5 < m_right[1]  # centroid x

    def test_disk_has_low_eccentricity(self):
        disk = synth.draw_disk(synth.solid(64, 64, (0.1,) * 3), (32, 32), 12, (0.9,) * 3)
        assert RegionMoments().extract(disk)[3] < 0.4

    def test_bar_has_high_eccentricity(self):
        bar = synth.draw_rectangle(
            synth.solid(64, 64, (0.1,) * 3), (8, 28), (56, 36), (0.9,) * 3
        )
        assert RegionMoments().extract(bar)[3] > 0.8

    def test_area_fraction(self):
        disk = synth.draw_disk(synth.solid(64, 64, (0.1,) * 3), (32, 32), 12, (0.9,) * 3)
        area = RegionMoments().extract(disk)[0]
        assert area == pytest.approx(np.pi * 12**2 / 64**2, rel=0.2)

    def test_flat_image_gives_zeros_or_valid(self):
        m = RegionMoments().extract(Image.full(32, 32, 0.5))
        assert m.shape == (5,)
        assert np.all(np.isfinite(m))
