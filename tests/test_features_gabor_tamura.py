"""Tests for the Gabor filter bank and Tamura texture features."""

import numpy as np
import pytest

from repro.errors import FeatureError
from repro.features.gabor import (
    GaborFeatures,
    gabor_bank,
    gabor_kernel,
    gabor_response_magnitude,
)
from repro.features.tamura import (
    TamuraFeatures,
    tamura_coarseness,
    tamura_contrast,
    tamura_directionality,
)
from repro.image import synth
from repro.image.core import Image


def _stripes(angle, period=8.0, size=64):
    return synth.stripes(
        size, size, period, angle=angle, color_a=(0.1,) * 3, color_b=(0.9,) * 3
    ).to_gray()


def _noise(rng, size=64):
    return synth.gaussian_noise_image(size, size, rng, mean=0.5, std=0.15, channels=1)


class TestGaborKernel:
    def test_kernel_is_zero_mean_and_unit_norm(self):
        kernel = gabor_kernel(6.0, 0.3)
        assert kernel.mean() == pytest.approx(0.0, abs=1e-12)
        assert np.linalg.norm(kernel) == pytest.approx(1.0)

    def test_kernel_is_odd_sized_square(self):
        kernel = gabor_kernel(4.0, 0.0)
        assert kernel.shape[0] == kernel.shape[1]
        assert kernel.shape[0] % 2 == 1

    def test_kernel_size_grows_with_wavelength(self):
        small = gabor_kernel(3.0, 0.0)
        large = gabor_kernel(12.0, 0.0)
        assert large.shape[0] > small.shape[0]

    def test_rotation_by_pi_is_identity_for_even_phase(self):
        a = gabor_kernel(5.0, 0.4, phase=0.0)
        b = gabor_kernel(5.0, 0.4 + np.pi, phase=0.0)
        assert np.allclose(a, b, atol=1e-9)

    def test_rejects_bad_parameters(self):
        with pytest.raises(FeatureError):
            gabor_kernel(1.0, 0.0)
        with pytest.raises(FeatureError):
            gabor_kernel(4.0, 0.0, sigma_ratio=0.0)
        with pytest.raises(FeatureError):
            gabor_kernel(4.0, 0.0, gamma=-1.0)

    def test_bank_layout(self):
        bank = gabor_bank(3, 4, min_wavelength=3.0)
        assert len(bank) == 12
        wavelengths = sorted({w for w, _ in bank})
        assert wavelengths == [3.0, 6.0, 12.0]
        orientations = sorted({o for _, o in bank})
        assert len(orientations) == 4

    def test_bank_rejects_bad_arguments(self):
        with pytest.raises(FeatureError):
            gabor_bank(0, 4)


class TestGaborResponse:
    def test_tuned_filter_responds_strongest(self):
        """A stripe pattern excites the filter tuned to its orientation."""
        image = _stripes(angle=0.0, period=8.0)
        tuned = gabor_response_magnitude(image.pixels, 8.0, 0.0).mean()
        orthogonal = gabor_response_magnitude(image.pixels, 8.0, np.pi / 2).mean()
        assert tuned > 3.0 * orthogonal

    def test_constant_image_gives_zero_response(self):
        flat = np.full((32, 32), 0.7)
        response = gabor_response_magnitude(flat, 6.0, 0.5)
        assert response.max() < 1e-9

    def test_magnitude_is_phase_invariant(self):
        """Shifting the stripes must not change the response energy much."""
        a = synth.stripes(64, 64, 8.0, angle=0.0).to_gray()
        b = Image(np.roll(a.pixels, 4, axis=1))  # half a period sideways
        resp_a = gabor_response_magnitude(a.pixels, 8.0, 0.0).mean()
        resp_b = gabor_response_magnitude(b.pixels, 8.0, 0.0).mean()
        assert resp_a == pytest.approx(resp_b, rel=0.15)


class TestGaborFeatures:
    def test_declared_dim_matches_output(self, rgb_image):
        extractor = GaborFeatures(2, 3)
        assert extractor.dim == 12
        assert extractor.extract(rgb_image).shape == (12,)

    def test_separates_stripe_orientations(self):
        """Horizontal vs diagonal stripes: same colors, different channels."""
        extractor = GaborFeatures(3, 4)
        horizontal = extractor.extract(_stripes(np.pi / 2))
        diagonal = extractor.extract(_stripes(np.pi / 4))
        separation = float(np.linalg.norm(horizontal - diagonal))
        same_a = extractor.extract(_stripes(np.pi / 2, period=8.5))
        within = float(np.linalg.norm(horizontal - same_a))
        assert separation > 2.0 * within

    def test_deterministic(self, scene_image):
        extractor = GaborFeatures()
        assert np.array_equal(
            extractor.extract(scene_image), extractor.extract(scene_image)
        )

    def test_rgb_and_gray_agree_on_achromatic_input(self):
        gray = _stripes(0.3)
        extractor = GaborFeatures(2, 2)
        assert np.allclose(
            extractor.extract(gray), extractor.extract(gray.to_rgb()), atol=1e-9
        )

    def test_bank_property_matches_dim(self):
        extractor = GaborFeatures(2, 5)
        assert len(extractor.bank) * 2 == extractor.dim

    def test_rejects_oversized_wavelength(self):
        with pytest.raises(FeatureError, match="wavelength"):
            GaborFeatures(5, 2, working_size=32)

    def test_name_reflects_configuration(self):
        assert GaborFeatures(3, 4).name == "gabor_3s_4o"


class TestTamuraCoarseness:
    def test_fine_texture_scores_low(self, rng):
        fine = _noise(rng).pixels
        coarse = synth.value_noise(64, 64, rng, scale=16, channels=1).pixels
        assert tamura_coarseness(fine) < tamura_coarseness(coarse)

    def test_checkerboard_scale_ordering(self):
        small = synth.checkerboard(64, 64, 2, (0.0,) * 3, (1.0,) * 3).to_gray()
        large = synth.checkerboard(64, 64, 16, (0.0,) * 3, (1.0,) * 3).to_gray()
        assert tamura_coarseness(small.pixels) < tamura_coarseness(large.pixels)

    def test_bounded_by_window_range(self, rng):
        value = tamura_coarseness(_noise(rng).pixels, levels=4)
        assert 2.0 <= value <= 16.0

    def test_small_image_rejected(self):
        with pytest.raises(FeatureError):
            tamura_coarseness(np.zeros((4, 4)))

    def test_rejects_bad_input(self):
        with pytest.raises(FeatureError):
            tamura_coarseness(np.zeros(16))
        with pytest.raises(FeatureError):
            tamura_coarseness(np.zeros((32, 32)), levels=0)


class TestTamuraContrast:
    def test_constant_image_is_zero(self):
        assert tamura_contrast(np.full((32, 32), 0.5)) == 0.0

    def test_binary_beats_gentle_gradient(self):
        binary = synth.checkerboard(64, 64, 8, (0.0,) * 3, (1.0,) * 3).to_gray()
        gradient = synth.linear_gradient(
            64, 64, (0.45,) * 3, (0.55,) * 3, angle=0.0
        ).to_gray()
        assert tamura_contrast(binary.pixels) > 3.0 * tamura_contrast(gradient.pixels)

    def test_scales_with_amplitude(self, rng):
        base = rng.normal(0.0, 1.0, (48, 48))
        narrow = 0.5 + 0.05 * base
        wide = 0.5 + 0.20 * base
        assert tamura_contrast(np.clip(wide, 0, 1)) > tamura_contrast(
            np.clip(narrow, 0, 1)
        )

    def test_rejects_bad_shape(self):
        with pytest.raises(FeatureError):
            tamura_contrast(np.zeros(10))


class TestTamuraDirectionality:
    def test_stripes_are_directional(self):
        assert tamura_directionality(_stripes(np.pi / 4).pixels) > 0.8

    def test_isotropic_noise_is_not(self, rng):
        assert tamura_directionality(_noise(rng).pixels) < 0.5

    def test_stripes_beat_noise(self, rng):
        stripes = tamura_directionality(_stripes(0.0).pixels)
        noise = tamura_directionality(_noise(rng).pixels)
        assert stripes > noise + 0.3

    def test_flat_image_is_zero(self):
        assert tamura_directionality(np.full((32, 32), 0.3)) == 0.0

    def test_orientation_angle_does_not_matter_much(self):
        horizontal = tamura_directionality(_stripes(np.pi / 2).pixels)
        diagonal = tamura_directionality(_stripes(np.pi / 4).pixels)
        assert horizontal == pytest.approx(diagonal, abs=0.25)

    def test_rejects_bad_parameters(self):
        with pytest.raises(FeatureError):
            tamura_directionality(np.zeros((32, 32)), bins=2)
        with pytest.raises(FeatureError):
            tamura_directionality(np.zeros((32, 32)), peak_factor=0.5)
        with pytest.raises(FeatureError):
            tamura_directionality(np.zeros(9))


class TestTamuraFeatures:
    def test_declared_dim_matches_output(self, rgb_image):
        extractor = TamuraFeatures()
        assert extractor.dim == 3
        assert extractor.extract(rgb_image).shape == (3,)

    def test_separates_texture_classes(self, rng):
        """Checkerboard vs noise vs stripes land in different regions."""
        extractor = TamuraFeatures()
        stripes = extractor.extract(_stripes(0.0).to_rgb())
        noise = extractor.extract(_noise(rng).to_rgb())
        # Directionality separates them decisively.
        assert stripes[2] > noise[2] + 0.3

    def test_deterministic(self, scene_image):
        extractor = TamuraFeatures()
        assert np.array_equal(
            extractor.extract(scene_image), extractor.extract(scene_image)
        )

    def test_configuration_validated(self):
        with pytest.raises(FeatureError):
            TamuraFeatures(working_size=8)
        with pytest.raises(FeatureError):
            TamuraFeatures(levels=0)
        with pytest.raises(FeatureError):
            TamuraFeatures(bins=3)

    def test_name_reflects_configuration(self):
        assert TamuraFeatures(levels=3, bins=8).name == "tamura_3l_8b"

    def test_composable_in_schema(self, scene_image):
        from repro.features.pipeline import FeatureSchema

        schema = FeatureSchema([TamuraFeatures(), GaborFeatures(2, 2)])
        signatures = schema.extract_all(scene_image)
        assert set(signatures) == {"tamura_4l_16b", "gabor_2s_2o"}
