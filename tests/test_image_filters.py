"""Tests for convolution, smoothing, gradients, thresholding."""

import numpy as np
import pytest

from repro.errors import ImageError
from repro.image.core import Image
from repro.image.filters import (
    SOBEL_X,
    SOBEL_Y,
    binomial_blur3,
    convolve2d,
    convolve_separable,
    edge_map,
    gaussian_blur,
    gaussian_kernel1d,
    gradient_magnitude,
    gradient_orientation,
    otsu_threshold,
    sobel_gradients,
)


class TestConvolve2d:
    def test_identity_kernel(self, rng):
        array = rng.random((8, 8))
        kernel = np.zeros((3, 3))
        kernel[1, 1] = 1.0
        assert np.allclose(convolve2d(array, kernel), array)

    def test_shift_free_averaging(self):
        array = np.full((6, 6), 0.5)
        kernel = np.full((3, 3), 1.0 / 9.0)
        assert np.allclose(convolve2d(array, kernel), 0.5)

    def test_rejects_even_kernel(self):
        with pytest.raises(ImageError, match="odd"):
            convolve2d(np.zeros((4, 4)), np.zeros((2, 2)))

    def test_rejects_unknown_pad_mode(self):
        with pytest.raises(ImageError, match="pad mode"):
            convolve2d(np.zeros((4, 4)), np.zeros((3, 3)), pad_mode="wrap")

    def test_constant_pad_darkens_border(self):
        array = np.ones((5, 5))
        kernel = np.full((3, 3), 1.0 / 9.0)
        out = convolve2d(array, kernel, pad_mode="constant")
        assert out[2, 2] == pytest.approx(1.0)
        assert out[0, 0] == pytest.approx(4.0 / 9.0)

    def test_separable_matches_full(self, rng):
        array = rng.random((10, 12))
        rows = np.array([1.0, 2.0, 1.0]) / 4.0
        cols = np.array([1.0, 0.0, -1.0])
        full_kernel = np.outer(rows, cols)
        assert np.allclose(
            convolve_separable(array, rows, cols), convolve2d(array, full_kernel)
        )


class TestGaussian:
    def test_kernel_normalized_and_symmetric(self):
        kernel = gaussian_kernel1d(1.5)
        assert kernel.sum() == pytest.approx(1.0)
        assert np.allclose(kernel, kernel[::-1])

    def test_kernel_rejects_bad_sigma(self):
        with pytest.raises(ImageError):
            gaussian_kernel1d(0.0)

    def test_blur_preserves_constant(self):
        out = gaussian_blur(np.full((8, 8), 0.7), 1.0)
        assert np.allclose(out, 0.7)

    def test_blur_reduces_variance(self, rng):
        noisy = rng.random((32, 32))
        blurred = gaussian_blur(noisy, 1.5)
        assert blurred.var() < noisy.var()

    def test_binomial_blur_matches_paper_kernel(self, rng):
        # The 3x3 1/16 [[1,2,1],[2,4,2],[1,2,1]] mask applied directly.
        array = rng.random((8, 8))
        kernel = np.array([[1, 2, 1], [2, 4, 2], [1, 2, 1]], dtype=np.float64) / 16.0
        assert np.allclose(binomial_blur3(array), convolve2d(array, kernel))

    def test_accepts_image_argument(self, rgb_image):
        out = gaussian_blur(rgb_image, 1.0)
        assert out.shape == (32, 32)  # converted to gray


class TestSobel:
    def test_kernels_match_standard_definition(self):
        assert SOBEL_X[1, 2] == 2.0 and SOBEL_X[1, 0] == -2.0
        assert SOBEL_Y[0, 1] == 2.0 and SOBEL_Y[2, 1] == -2.0

    def test_vertical_edge_detected_by_gx(self):
        # Left half dark, right half bright: strong gx, no gy.
        array = np.zeros((8, 8))
        array[:, 4:] = 1.0
        gx, gy = sobel_gradients(array)
        assert np.abs(gx).max() > 1.0
        assert np.abs(gy[2:-2, 2:-2]).max() == pytest.approx(0.0)

    def test_horizontal_edge_detected_by_gy(self):
        array = np.zeros((8, 8))
        array[4:, :] = 1.0
        gx, gy = sobel_gradients(array)
        assert np.abs(gy).max() > 1.0
        assert np.abs(gx[2:-2, 2:-2]).max() == pytest.approx(0.0)

    def test_flat_image_has_zero_gradient(self):
        gx, gy = sobel_gradients(np.full((8, 8), 0.5))
        assert np.allclose(gx, 0.0)
        assert np.allclose(gy, 0.0)

    def test_magnitude_is_hypot(self, rng):
        gx = rng.normal(size=(5, 5))
        gy = rng.normal(size=(5, 5))
        assert np.allclose(gradient_magnitude(gx, gy), np.hypot(gx, gy))

    def test_orientation_folded_to_half_turn(self, rng):
        gx = rng.normal(size=(5, 5))
        gy = rng.normal(size=(5, 5))
        theta = gradient_orientation(gx, gy)
        assert theta.min() >= 0.0
        assert theta.max() < np.pi
        # Opposite gradients describe the same edge orientation.
        assert np.allclose(gradient_orientation(-gx, -gy), theta, atol=1e-9)

    def test_vertical_edge_orientation_is_zero(self):
        array = np.zeros((8, 8))
        array[:, 4:] = 1.0
        gx, gy = sobel_gradients(array)
        magnitude = gradient_magnitude(gx, gy)
        theta = gradient_orientation(gx, gy)
        strong = magnitude > 0.5 * magnitude.max()
        folded = np.minimum(theta[strong], np.pi - theta[strong])
        assert np.all(folded < 1e-9)


class TestOtsu:
    def test_bimodal_separation(self, rng):
        low = rng.normal(0.2, 0.02, 500)
        high = rng.normal(0.8, 0.02, 500)
        threshold = otsu_threshold(np.concatenate([low, high]))
        assert 0.3 < threshold < 0.7

    def test_constant_input(self):
        assert otsu_threshold(np.full(10, 0.4)) == pytest.approx(0.4)

    def test_rejects_empty(self):
        with pytest.raises(ImageError):
            otsu_threshold(np.array([]))


class TestEdgeMap:
    def test_detects_disk_boundary(self, rgb_image):
        edges = edge_map(rgb_image, sigma=1.0)
        assert edges.dtype == bool
        assert edges.any()
        # Edges concentrate around radius 8 from the centre.
        ys, xs = np.nonzero(edges)
        radii = np.hypot(xs - 16, ys - 16)
        assert np.median(radii) == pytest.approx(8.0, abs=2.5)

    def test_flat_image_has_no_edges(self):
        edges = edge_map(Image.full(16, 16, 0.5), sigma=0.0, threshold=0.1)
        assert not edges.any()

    def test_explicit_threshold_respected(self):
        array = np.zeros((8, 8))
        array[:, 4:] = 1.0
        assert edge_map(array, sigma=0.0, threshold=100.0).sum() == 0
