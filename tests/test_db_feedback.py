"""Tests for Rocchio relevance feedback and the session loop."""

import numpy as np
import pytest

from repro.db.database import ImageDatabase
from repro.db.feedback import FeedbackSession, Rocchio
from repro.errors import QueryError
from repro.eval.datasets import make_corpus
from repro.features.histogram import HSVHistogram
from repro.features.pipeline import FeatureSchema


@pytest.fixture(scope="module")
def corpus_db():
    """A small labelled database shared by the session tests."""
    schema = FeatureSchema([HSVHistogram((6, 2, 2), working_size=32)])
    db = ImageDatabase(schema)
    for image, label in make_corpus(6, size=32, seed=11):
        db.add_image(image, label=label)
    return db


class TestRocchioRule:
    def test_no_judgments_is_identity(self, rng):
        rule = Rocchio()
        query = rng.random(8)
        assert np.allclose(rule.refine(query), query)

    def test_moves_toward_relevant(self, rng):
        rule = Rocchio(alpha=1.0, beta=1.0, gamma=0.0)
        query = np.zeros(4)
        target = np.ones(4)
        refined = rule.refine(query, relevant=[target])
        # Halfway (alpha + beta normalization): (0 + 1) / 2.
        assert np.allclose(refined, 0.5)

    def test_moves_away_from_non_relevant(self):
        rule = Rocchio(alpha=1.0, beta=0.0, gamma=0.5, clip_negative=False)
        query = np.full(4, 0.5)
        refined = rule.refine(query, non_relevant=[np.ones(4)])
        assert np.all(refined < query)

    def test_negative_clip_keeps_histograms_valid(self):
        rule = Rocchio(alpha=1.0, beta=0.0, gamma=2.0)
        refined = rule.refine(np.zeros(3), non_relevant=[np.ones(3)])
        assert np.all(refined >= 0.0)

    def test_multiple_relevant_use_centroid(self, rng):
        rule = Rocchio(alpha=0.0, beta=1.0, gamma=0.0)
        examples = [rng.random(5) for _ in range(4)]
        refined = rule.refine(np.zeros(5), relevant=examples)
        assert np.allclose(refined, np.mean(examples, axis=0))

    def test_rejects_negative_weights(self):
        with pytest.raises(QueryError):
            Rocchio(alpha=-0.1)

    def test_rejects_all_zero_anchor(self):
        with pytest.raises(QueryError):
            Rocchio(alpha=0.0, beta=0.0)

    def test_repr(self):
        assert "alpha=1.0" in repr(Rocchio())


class TestFeedbackSession:
    def _query_image(self):
        from repro.eval.datasets import make_class_image

        rng = np.random.default_rng(99)
        return make_class_image("red_scenes", rng, size=32)

    def test_search_without_feedback_matches_plain_query(self, corpus_db):
        image = self._query_image()
        session = FeedbackSession(corpus_db, image)
        expected = corpus_db.query(image, 5)
        got = session.search(5)
        assert [r.image_id for r in got] == [r.image_id for r in expected]
        assert session.rounds == 0

    def test_positive_feedback_improves_precision(self, corpus_db):
        """Marking same-class results relevant must not hurt precision@5."""
        image = self._query_image()
        session = FeedbackSession(corpus_db, image)
        first = session.search(8)

        def precision(results):
            labels = [r.record.label for r in results[:5]]
            return labels.count("red_scenes") / 5.0

        before = precision(first)
        relevant = [r.image_id for r in first if r.record.label == "red_scenes"]
        non_relevant = [r.image_id for r in first if r.record.label != "red_scenes"]
        session.mark_relevant(relevant)
        session.mark_non_relevant(non_relevant)
        after = precision(session.search(8))
        assert after >= before

    def test_round_counter_and_query_movement(self, corpus_db):
        image = self._query_image()
        session = FeedbackSession(corpus_db, image)
        original = session.query_vector
        first = session.search(6)
        session.mark_relevant([first[0].image_id])
        session.search(6)
        assert session.rounds == 1
        assert not np.allclose(session.query_vector, original)

    def test_judgments_flip_consistently(self, corpus_db):
        image = self._query_image()
        session = FeedbackSession(corpus_db, image)
        results = session.search(4)
        target = results[0].image_id
        session.mark_relevant([target])
        session.mark_non_relevant([target])  # user changed their mind
        relevant, non_relevant = session.judged
        assert target not in relevant
        assert target in non_relevant

    def test_reset_restores_original_ranking(self, corpus_db):
        image = self._query_image()
        session = FeedbackSession(corpus_db, image)
        first = session.search(5)
        session.mark_non_relevant([r.image_id for r in first[:2]])
        session.search(5)
        session.reset()
        assert session.rounds == 0
        again = session.search(5)
        assert [r.image_id for r in again] == [r.image_id for r in first]

    def test_vector_query_accepted(self, corpus_db):
        vector = corpus_db.vector_of(corpus_db.default_feature, 0)
        session = FeedbackSession(corpus_db, vector)
        results = session.search(3)
        assert results[0].image_id == 0

    def test_unknown_image_id_rejected(self, corpus_db):
        session = FeedbackSession(corpus_db, self._query_image())
        with pytest.raises(Exception):
            session.mark_relevant([987654])

    def test_unknown_feature_rejected(self, corpus_db):
        with pytest.raises(QueryError, match="unknown feature"):
            FeedbackSession(corpus_db, self._query_image(), feature="nope")

    def test_wrong_vector_dim_rejected(self, corpus_db):
        with pytest.raises(QueryError, match="dim"):
            FeedbackSession(corpus_db, np.zeros(3))

    def test_empty_database_rejected(self):
        schema = FeatureSchema([HSVHistogram((6, 2, 2), working_size=32)])
        with pytest.raises(QueryError, match="empty"):
            FeedbackSession(ImageDatabase(schema), np.zeros(24))

    def test_repr_shows_counts(self, corpus_db):
        session = FeedbackSession(corpus_db, self._query_image())
        first = session.search(3)
        session.mark_relevant([first[0].image_id])
        assert "relevant=1" in repr(session)


class TestVectorOfAccessor:
    def test_returns_copy(self, corpus_db):
        feature = corpus_db.default_feature
        a = corpus_db.vector_of(feature, 0)
        a[0] = 123.0
        b = corpus_db.vector_of(feature, 0)
        assert b[0] != 123.0

    def test_unknown_id_rejected(self, corpus_db):
        with pytest.raises(QueryError, match="no image"):
            corpus_db.vector_of(corpus_db.default_feature, 424242)

    def test_unknown_feature_rejected(self, corpus_db):
        with pytest.raises(QueryError, match="unknown feature"):
            corpus_db.vector_of("nope", 0)
