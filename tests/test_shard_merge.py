"""Property tests for the scatter-gather k-way merge (``repro.serve.shard``).

The sharded engine's exactness reduces to one algebraic fact: merging
per-shard result lists — each sorted by ``(distance, id)`` — with a
k-way merge on the same key equals sorting the concatenation and
truncating.  These tests pin that fact under hypothesis across the
shapes production hits: duplicate distances with id tie-breaks, empty
shards, ``k`` larger than the total hit count, and single-shard
degenerate inputs.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.query import RetrievalResult
from repro.errors import ServeError
from repro.serve.shard import merge_knn_results, merge_range_results, shard_of

# A deliberately tiny distance alphabet: with up to ~60 results drawn
# from 8 values, duplicate distances (the tie-break case) are the norm,
# not the exception.
_DISTANCES = st.sampled_from([0.0, 0.25, 0.5, 0.5, 1.0, 1.5, 2.0, 3.25])


@st.composite
def sharded_results(draw):
    """Per-shard sorted result lists with globally unique ids.

    Ids are assigned to shards by :func:`shard_of` — the router the
    engine itself uses — so some shards end up empty whenever the drawn
    id set skips their residue class.
    """
    n_shards = draw(st.integers(min_value=1, max_value=5))
    ids = draw(
        st.lists(
            st.integers(min_value=0, max_value=200),
            unique=True,
            max_size=60,
        )
    )
    per_shard = [[] for _ in range(n_shards)]
    for image_id in ids:
        distance = draw(_DISTANCES)
        per_shard[shard_of(image_id, n_shards)].append(
            RetrievalResult(image_id=image_id, distance=distance)
        )
    for shard in per_shard:
        shard.sort(key=lambda r: (r.distance, r.image_id))
    return per_shard


def _reference(per_shard, k=None):
    """Sorted-truncated concatenation — the merge's defining equation."""
    flat = sorted(
        (r for shard in per_shard for r in shard),
        key=lambda r: (r.distance, r.image_id),
    )
    return flat if k is None else flat[:k]


class TestMergeKnn:
    @settings(max_examples=200)
    @given(per_shard=sharded_results(), k=st.integers(min_value=1, max_value=80))
    def test_equals_sorted_truncated_concatenation(self, per_shard, k):
        merged = merge_knn_results(per_shard, k)
        assert merged == _reference(per_shard, k)

    @settings(max_examples=100)
    @given(per_shard=sharded_results())
    def test_k_beyond_total_returns_everything(self, per_shard):
        total = sum(len(shard) for shard in per_shard)
        merged = merge_knn_results(per_shard, total + 17)
        assert merged == _reference(per_shard)

    @settings(max_examples=100)
    @given(per_shard=sharded_results(), k=st.integers(min_value=1, max_value=80))
    def test_duplicate_distances_tie_break_on_id(self, per_shard, k):
        merged = merge_knn_results(per_shard, k)
        for earlier, later in zip(merged, merged[1:]):
            assert (earlier.distance, earlier.image_id) <= (
                later.distance,
                later.image_id,
            )
        # Unique global ids in, unique ids out.
        assert len({r.image_id for r in merged}) == len(merged)

    def test_all_empty_shards(self):
        assert merge_knn_results([[], [], []], 5) == []

    def test_no_shards(self):
        assert merge_knn_results([], 5) == []

    def test_rejects_nonpositive_k(self):
        with pytest.raises(ServeError):
            merge_knn_results([[]], 0)


class TestMergeRange:
    @settings(max_examples=200)
    @given(per_shard=sharded_results())
    def test_equals_sorted_concatenation(self, per_shard):
        assert merge_range_results(per_shard) == _reference(per_shard)

    def test_all_empty_shards(self):
        assert merge_range_results([[], []]) == []


class TestShardOf:
    @given(
        image_id=st.integers(min_value=0, max_value=10_000),
        n_shards=st.integers(min_value=1, max_value=16),
    )
    def test_in_range_and_deterministic(self, image_id, n_shards):
        home = shard_of(image_id, n_shards)
        assert 0 <= home < n_shards
        assert home == shard_of(image_id, n_shards)

    def test_single_shard_is_identity_zero(self):
        assert all(shard_of(i, 1) == 0 for i in range(32))

    def test_rejects_nonpositive_shard_count(self):
        with pytest.raises(ServeError):
            shard_of(3, 0)
