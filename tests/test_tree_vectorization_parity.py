"""Build/search parity suite for the vectorized tree indexes.

The tree vectorization PR rewired every tree's hot loops from scalar
``Metric.distance`` calls onto ``Metric.distance_batch`` kernels.  The
contract is strict: batching saves interpreter overhead, never metric
evaluations, and changes nothing observable —

* **golden parity** — tree structure (pivots, split radii, page
  contents), build stats, neighbor sets, distance floats, and every
  per-query cost counter are bit-identical to the scalar-era
  implementation.  The goldens in ``tests/data/golden_tree_parity.json``
  were captured by running this module's profiler against the pre-change
  code (``python tests/test_tree_vectorization_parity.py --write``);
  the current code must reproduce them exactly.
* **kernel/fallback parity** — hiding a metric's vectorized kernel (so
  ``distance_batch`` degrades to the per-row loop) must not change one
  bit of any build or query, including the approximate modes.
* **batch entry-point parity** — ``knn_search_batch`` /
  ``range_search_batch`` (shared traversals on the VP-tree, and — since
  the EMD/Hausdorff kernel PR — on the GNAT and kd-tree in range mode)
  equal the scalar entry points result-for-result and
  counter-for-counter.  The goldens also pin the batched entry points
  whole, including over the formerly loop-fallback metrics (EMD,
  circular EMD, Hausdorff), so a shared traversal can never drift from
  the per-query era it replaced.
* **kernel-only queries** — batched queries must reach the metric
  exclusively through ``distance_batch``: with the scalar ``distance``
  rigged to raise, every batch entry point still answers.
* **operand symmetry** — sharing pivot distances across a query batch
  evaluates ``d(pivot, q)`` where the scalar path evaluated
  ``d(q, pivot)``; every shipped metric must be bitwise symmetric.
"""

from __future__ import annotations

import dataclasses
import json
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.index.antipole import AntipoleTree, _Cluster, _Split
from repro.index.gnat import GNAT, _InnerNode, _LeafNode
from repro.index.kdtree import KDTree, _KDLeaf, _KDNode
from repro.index.mtree import MTree
from repro.index.pivot import MaxVariancePivot, RandomPivot
from repro.index.vptree import VPTree, _Leaf, _Node
from repro.metrics.base import CountingMetric, Metric, hide_batch_kernel
from repro.metrics.quadratic import QuadraticFormDistance
from repro.metrics.divergence import CanberraDistance, CosineDistance, JensenShannonDistance
from repro.metrics.emd import MatchDistance
from repro.metrics.hausdorff import HausdorffDistance
from repro.metrics.histogram import (
    BhattacharyyaDistance,
    ChiSquareDistance,
    HistogramIntersection,
)
from repro.metrics.minkowski import (
    ChebyshevDistance,
    EuclideanDistance,
    ManhattanDistance,
    MinkowskiDistance,
    WeightedEuclideanDistance,
)

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_tree_parity.json"

_N = 160
_DIM = 12
_N_QUERIES = 6
_K = 5
_RADIUS = {"L2": 1.2, "L1": 3.5, "EMD": 0.45, "CEMD": 0.40, "HAUS": 0.32}

#: The kd-tree only accepts Minkowski metrics; the loop-fallback-era
#: metrics (EMD, circular EMD, Hausdorff) are pinned on the two trees
#: that grew shared batched traversals alongside their kernels.
_METRIC_COMPAT = {
    "EMD": {"vptree", "gnat"},
    "CEMD": {"vptree", "gnat"},
    "HAUS": {"vptree", "gnat"},
}


def _dataset():
    rng = np.random.default_rng(97)
    vectors = rng.random((_N, _DIM))
    queries = rng.random((_N_QUERIES, _DIM))
    return list(range(_N)), vectors, queries


def _metrics():
    # The random vectors are non-negative, so they are valid (unequal-mass)
    # histograms for the normalizing match distance, and valid 6-point 2-D
    # buffers for the Hausdorff adapter.
    return {
        "L2": EuclideanDistance(),
        "L1": ManhattanDistance(),
        "EMD": MatchDistance(),
        "CEMD": MatchDistance(circular=True),
        "HAUS": HausdorffDistance(point_dim=2),
    }


def _factories():
    return {
        "vptree": lambda m: VPTree(m, leaf_size=4, seed=3),
        "vptree-variance": lambda m: VPTree(
            m, leaf_size=4, seed=3, pivot_strategy=MaxVariancePivot()
        ),
        "vptree-random": lambda m: VPTree(
            m, leaf_size=4, seed=3, pivot_strategy=RandomPivot()
        ),
        "mtree-mmrad": lambda m: MTree(m, capacity=4, promotion="mmrad", seed=5),
        "mtree-maxdist": lambda m: MTree(m, capacity=4, promotion="maxdist", seed=5),
        "mtree-random": lambda m: MTree(m, capacity=4, promotion="random", seed=5),
        "gnat": lambda m: GNAT(m, degree=4, seed=2),
        "antipole": lambda m: AntipoleTree(m, seed=1),
        "kdtree": lambda m: KDTree(m, leaf_size=4),
    }


def _profile_keys():
    for index_name in _factories():
        for metric_name in _metrics():
            compat = _METRIC_COMPAT.get(metric_name)
            if compat is not None and index_name not in compat:
                continue
            yield f"{index_name}/{metric_name}"


# ----------------------------------------------------------------------
# Structure serializers (shape, split values, page contents — exact)
# ----------------------------------------------------------------------
def _structure(index) -> object:
    if isinstance(index, VPTree):
        return _vp_structure(index._root)
    if isinstance(index, GNAT):
        return _gnat_structure(index._root)
    if isinstance(index, MTree):
        return {
            "height": index.height,
            "n_pages": index.n_pages,
            "n_splits": index.n_splits,
            "root": _mtree_structure(index._root),
        }
    if isinstance(index, AntipoleTree):
        return {
            "threshold": index.effective_diameter_threshold,
            "root": _antipole_structure(index._root),
        }
    if isinstance(index, KDTree):
        return _kd_structure(index._root)
    raise AssertionError(f"no serializer for {type(index).__name__}")


def _vp_structure(node):
    if node is None:
        return None
    if isinstance(node, _Leaf):
        return {"leaf": list(node.ids)}
    assert isinstance(node, _Node)
    return {
        "pivot": node.pivot_id,
        "bounds": [node.in_low, node.in_high, node.out_low, node.out_high],
        "inside": _vp_structure(node.inside),
        "outside": _vp_structure(node.outside),
    }


def _gnat_structure(node):
    if node is None:
        return None
    if isinstance(node, _LeafNode):
        return {"leaf": list(node.ids)}
    assert isinstance(node, _InnerNode)
    return {
        "splits": list(node.split_ids),
        "low": node.low.tolist(),
        "high": node.high.tolist(),
        "children": [_gnat_structure(child) for child in node.children],
    }


def _mtree_structure(node):
    if node is None:
        return None
    return {
        "leaf": node.is_leaf,
        "entries": [
            {
                "id": entry.item_id,
                "radius": entry.radius,
                "d_parent": entry.d_parent,
                "child": _mtree_structure(entry.child),
            }
            for entry in node.entries
        ],
    }


def _antipole_structure(node):
    if node is None:
        return None
    if isinstance(node, _Cluster):
        return {
            "centroid": node.centroid_id,
            "members": list(node.member_ids),
            "cached": node.member_centroid_distances.tolist(),
            "radius": node.radius,
        }
    assert isinstance(node, _Split)
    return {
        "a": node.a_id,
        "b": node.b_id,
        "a_radius": node.a_radius,
        "b_radius": node.b_radius,
        "a_child": _antipole_structure(node.a_child),
        "b_child": _antipole_structure(node.b_child),
    }


def _kd_structure(node):
    if node is None:
        return None
    if isinstance(node, _KDLeaf):
        return {"leaf": list(node.ids)}
    assert isinstance(node, _KDNode)
    return {
        "dim": node.split_dim,
        "value": node.split_value,
        "left": _kd_structure(node.left),
        "right": _kd_structure(node.right),
    }


# ----------------------------------------------------------------------
# Profiling: everything observable about builds and queries
# ----------------------------------------------------------------------
def _neighbors(result):
    return [[nb.id, nb.distance] for nb in result]


def _stats(stats):
    return dataclasses.asdict(stats)


def _capture(index_name: str, metric_name: str, metric: Metric | None = None) -> dict:
    ids, vectors, queries = _dataset()
    metric = metric if metric is not None else _metrics()[metric_name]
    index = _factories()[index_name](metric).build(ids, vectors)
    build = _stats(index.build_stats)
    build["extra"] = dict(index.build_stats.extra)
    profile = {
        "build": build,
        "structure": _structure(index),
        "queries": [],
    }
    radius = _RADIUS[metric_name]
    for query in queries:
        record = {}
        record["knn"] = _neighbors(index.knn_search(query, _K))
        record["knn_stats"] = _stats(index.last_stats)
        record["range"] = _neighbors(index.range_search(query, radius))
        record["range_stats"] = _stats(index.last_stats)
        if isinstance(index, VPTree):
            record["knn_eps"] = _neighbors(
                index.knn_search_approximate(query, _K, epsilon=0.5)
            )
            record["knn_eps_stats"] = _stats(index.last_stats)
            record["knn_budget"] = _neighbors(
                index.knn_search_approximate(query, _K, max_distance_computations=60)
            )
            record["knn_budget_stats"] = _stats(index.last_stats)
        if isinstance(index, AntipoleTree):
            record["range_ids"] = index.range_search_ids(query, radius)
            record["range_ids_stats"] = _stats(index.last_stats)
        profile["queries"].append(record)
    # The batched entry points, captured whole: indexes that grow a shared
    # traversal must keep reproducing the per-query-era results, visit
    # order (observable through the counters), and per-query stats.
    profile["knn_batch"] = [_neighbors(r) for r in index.knn_search_batch(queries, _K)]
    profile["knn_batch_stats"] = [_stats(s) for s in index.last_batch_stats]
    profile["range_batch"] = [
        _neighbors(r) for r in index.range_search_batch(queries, radius)
    ]
    profile["range_batch_stats"] = [_stats(s) for s in index.last_batch_stats]
    return profile


def _capture_all() -> dict:
    return {
        key: _capture(*key.split("/"))
        for key in _profile_keys()
    }


# ----------------------------------------------------------------------
# Golden parity: current code vs the recorded pre-change behavior
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def golden() -> dict:
    assert GOLDEN_PATH.exists(), (
        f"{GOLDEN_PATH} missing; regenerate with "
        f"`python tests/test_tree_vectorization_parity.py --write` on a "
        f"known-good checkout"
    )
    return json.loads(GOLDEN_PATH.read_text())


@pytest.mark.parametrize("key", list(_profile_keys()))
def test_golden_parity(golden, key):
    index_name, metric_name = key.split("/")
    assert key in golden, f"golden profile for {key} missing; regenerate"
    assert _capture(index_name, metric_name) == golden[key]


# ----------------------------------------------------------------------
# Kernel vs loop-fallback parity through the batched call sites
# ----------------------------------------------------------------------
@pytest.mark.parametrize("key", list(_profile_keys()))
def test_scalar_kernel_parity(key):
    index_name, metric_name = key.split("/")
    kernel = _capture(index_name, metric_name)
    fallback = _capture(
        index_name, metric_name, hide_batch_kernel(_metrics()[metric_name])
    )
    assert fallback == kernel


# ----------------------------------------------------------------------
# No scalar calls leak through the batched entry points
# ----------------------------------------------------------------------
def _forbid_scalar_distance(metric: Metric) -> Metric:
    """A clone of ``metric`` whose scalar ``distance`` raises.

    Batched tree queries are required to reach the metric exclusively
    through ``distance_batch``; building an index with the real metric
    and then querying through this clone proves no per-row scalar call
    survives on the batched paths.
    """
    import copy

    cls = type(metric)

    def _refuse(self, a, b):
        raise AssertionError(
            f"scalar {cls.__name__}.distance() called on a batched query path"
        )

    hidden = type(f"KernelOnly{cls.__name__}", (cls,), {"distance": _refuse})
    clone = copy.copy(metric)
    clone.__class__ = hidden
    return clone


_KERNEL_ONLY_CASES = [
    ("vptree", "EMD"),
    ("vptree", "CEMD"),
    ("vptree", "HAUS"),
    ("gnat", "EMD"),
    ("gnat", "CEMD"),
    ("gnat", "HAUS"),
    ("kdtree", "L2"),
    ("kdtree", "L1"),
]


@pytest.mark.parametrize(
    "index_name,metric_name", _KERNEL_ONLY_CASES, ids=lambda v: str(v)
)
def test_batched_queries_never_call_scalar_distance(index_name, metric_name):
    ids, vectors, queries = _dataset()
    metric = _metrics()[metric_name]
    index = _factories()[index_name](metric).build(ids, vectors)
    # Build used the real metric; from here on every scalar call raises.
    index._metric = _forbid_scalar_distance(metric)
    knn = index.knn_search_batch(queries, _K)
    rng_results = index.range_search_batch(queries, _RADIUS[metric_name])
    assert len(knn) == len(rng_results) == _N_QUERIES
    assert all(len(result) == _K for result in knn)


# ----------------------------------------------------------------------
# Batched entry points vs scalar entry points
# ----------------------------------------------------------------------
@pytest.mark.parametrize("key", list(_profile_keys()))
def test_batch_entry_points_match_scalar(key):
    index_name, metric_name = key.split("/")
    ids, vectors, queries = _dataset()
    index = _factories()[index_name](_metrics()[metric_name]).build(ids, vectors)

    scalar_knn, scalar_knn_stats = [], []
    for query in queries:
        scalar_knn.append(index.knn_search(query, _K))
        scalar_knn_stats.append(index.last_stats)
    batch_knn = index.knn_search_batch(queries, _K)
    assert batch_knn == scalar_knn
    assert index.last_batch_stats == scalar_knn_stats

    radius = _RADIUS[metric_name]
    scalar_range, scalar_range_stats = [], []
    for query in queries:
        scalar_range.append(index.range_search(query, radius))
        scalar_range_stats.append(index.last_stats)
    batch_range = index.range_search_batch(queries, radius)
    assert batch_range == scalar_range
    assert index.last_batch_stats == scalar_range_stats


# ----------------------------------------------------------------------
# Counting metric cross-check: batching is never a way around accounting
# ----------------------------------------------------------------------
# The kd-tree is excluded: it only accepts the concrete Minkowski metric
# classes, so a CountingMetric cannot wrap its way in (its accounting is
# still pinned by the golden stats and the batch entry-point test).
@pytest.mark.parametrize(
    "index_name", [name for name in _factories() if name != "kdtree"]
)
def test_counting_metric_agrees_with_stats(index_name):
    ids, vectors, queries = _dataset()
    counter = CountingMetric(EuclideanDistance())
    index = _factories()[index_name](counter).build(ids, vectors)
    assert counter.count == index.build_stats.distance_computations

    counter.reset()
    index.knn_search(queries[0], _K)
    assert counter.count == index.last_stats.distance_computations

    counter.reset()
    index.range_search(queries[1], _RADIUS["L2"])
    assert counter.count == index.last_stats.distance_computations

    counter.reset()
    index.knn_search_batch(queries, _K)
    assert counter.count == index.last_stats.distance_computations
    assert counter.count == sum(
        stats.distance_computations for stats in index.last_batch_stats
    )


def test_vptree_approximate_counting():
    ids, vectors, queries = _dataset()
    counter = CountingMetric(EuclideanDistance())
    tree = VPTree(counter, leaf_size=4, seed=3).build(ids, vectors)
    for kwargs in ({"epsilon": 0.5}, {"max_distance_computations": 60}):
        counter.reset()
        tree.knn_search_approximate(queries[0], _K, **kwargs)
        assert counter.count == tree.last_stats.distance_computations
    budget = 60
    tree.knn_search_approximate(queries[0], _K, max_distance_computations=budget)
    assert tree.last_stats.distance_computations <= budget


# ----------------------------------------------------------------------
# Operand symmetry: shared pivot distances flip the operand order
# ----------------------------------------------------------------------
_SYMMETRIC_METRICS = [
    EuclideanDistance(),
    ManhattanDistance(),
    ChebyshevDistance(),
    MinkowskiDistance(3.0),
    WeightedEuclideanDistance(np.linspace(0.5, 2.0, 16)),
    HistogramIntersection(),
    ChiSquareDistance(),
    BhattacharyyaDistance(),
    CosineDistance(),
    CanberraDistance(),
    JensenShannonDistance(),
    MatchDistance(),
    MatchDistance(circular=True),
    QuadraticFormDistance(np.exp(-0.3 * np.abs(np.subtract.outer(np.arange(16), np.arange(16))))),
]


@pytest.mark.parametrize("metric", _SYMMETRIC_METRICS, ids=lambda m: m.name)
def test_kernel_operand_symmetry(metric):
    rng = np.random.default_rng(11)
    matrix = rng.random((20, 16)) + 1e-3
    matrix /= matrix.sum(axis=1, keepdims=True)  # valid for histogram metrics
    anchor = matrix[0]
    transposed = metric.distance_batch(anchor, matrix)
    for row, got in zip(matrix, transposed):
        assert metric.distance(row, anchor) == got


def test_hausdorff_operand_symmetry():
    rng = np.random.default_rng(12)
    metric = HausdorffDistance(point_dim=2)
    sets = rng.random((10, 16))
    anchor = sets[0]
    transposed = metric.distance_batch(anchor, sets)
    for row, got in zip(sets, transposed):
        assert metric.distance(row, anchor) == got


# ----------------------------------------------------------------------
# Leaf blocks are contiguous (kernels never see strided views)
# ----------------------------------------------------------------------
def test_leaf_blocks_contiguous():
    ids, vectors, _ = _dataset()

    def walk_vp(node):
        if node is None:
            return
        if isinstance(node, _Leaf):
            assert node.vectors.flags["C_CONTIGUOUS"]
            return
        walk_vp(node.inside)
        walk_vp(node.outside)

    walk_vp(VPTree(EuclideanDistance(), leaf_size=4).build(ids, vectors)._root)

    def walk_gnat(node):
        if node is None:
            return
        if isinstance(node, _LeafNode):
            assert node.vectors.flags["C_CONTIGUOUS"]
            return
        for child in node.children:
            walk_gnat(child)

    walk_gnat(GNAT(EuclideanDistance(), degree=4).build(ids, vectors)._root)

    def walk_kd(node):
        if node is None:
            return
        if isinstance(node, _KDLeaf):
            assert node.vectors.flags["C_CONTIGUOUS"]
            return
        walk_kd(node.left)
        walk_kd(node.right)

    walk_kd(KDTree(EuclideanDistance(), leaf_size=4).build(ids, vectors)._root)

    def walk_antipole(node):
        if node is None:
            return
        if isinstance(node, _Cluster):
            assert node.member_vectors.flags["C_CONTIGUOUS"]
            return
        walk_antipole(node.a_child)
        walk_antipole(node.b_child)

    walk_antipole(AntipoleTree(EuclideanDistance(), seed=1).build(ids, vectors)._root)


if __name__ == "__main__":
    if "--write" in sys.argv:
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(json.dumps(_capture_all(), indent=1))
        print(f"wrote {GOLDEN_PATH}")
    else:
        print("usage: python tests/test_tree_vectorization_parity.py --write")
