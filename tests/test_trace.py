"""The tracing subsystem's contracts: spans, recorder, slow log.

Pinned guarantees (see ``repro/serve/trace.py`` and the scheduler's
trace plumbing):

* **traceparent handling** — a valid W3C header donates its trace id;
  anything malformed yields a fresh id (a bad header never fails a
  request);
* **exact cost attribution** — the engine spans' per-shard
  ``distance_computations`` sum to precisely the request's reported
  ``SearchStats``, sharded or not;
* **span-sum sanity** — on an unsharded scheduler the span durations
  sum to within the trace's end-to-end latency (stages are recorded
  back-to-back on one worker);
* **bounded sinks** — the flight recorder is a true ring (old traces
  fall off), the slow log captures by threshold and survives fast
  churn, and ``trace_depth=0`` disables everything.
"""

import numpy as np
import pytest

from repro.db.database import ImageDatabase
from repro.features.base import PresetSignature
from repro.features.pipeline import FeatureSchema
from repro.serve.scheduler import QueryScheduler
from repro.serve.trace import (
    FlightRecorder,
    SlowQueryLog,
    Trace,
    format_trace,
    parse_traceparent,
)

_DIM = 8
_N = 96


@pytest.fixture
def vector_db(rng):
    db = ImageDatabase(FeatureSchema([PresetSignature(_DIM, "sig")]))
    db.add_vectors(rng.random((_N, _DIM)))
    db.build_indexes()
    return db


# ---------------------------------------------------------------------------
# traceparent parsing
# ---------------------------------------------------------------------------
class TestParseTraceparent:
    def test_valid_header(self):
        parsed = parse_traceparent(
            "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
        )
        assert parsed == (
            "4bf92f3577b34da6a3ce929d0e0e4736",
            "00f067aa0ba902b7",
        )

    def test_case_and_whitespace_normalized(self):
        parsed = parse_traceparent(
            "  00-4BF92F3577B34DA6A3CE929D0E0E4736-00F067AA0BA902B7-01  "
        )
        assert parsed is not None
        assert parsed[0] == "4bf92f3577b34da6a3ce929d0e0e4736"

    @pytest.mark.parametrize(
        "header",
        [
            None,
            "",
            "not-a-traceparent",
            "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",  # 3 parts
            "00-short-00f067aa0ba902b7-01",
            "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-zz",
            "ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",  # ver ff
            "00-" + "0" * 32 + "-00f067aa0ba902b7-01",  # all-zero trace
            "00-4bf92f3577b34da6a3ce929d0e0e4736-" + "0" * 16 + "-01",
        ],
    )
    def test_invalid_headers_yield_none(self, header):
        assert parse_traceparent(header) is None

    def test_trace_generates_fresh_id_for_bad_header(self):
        trace = Trace("knn", traceparent="garbage")
        assert len(trace.trace_id) == 32
        assert trace.parent_id is None

    def test_trace_adopts_good_header(self):
        trace = Trace(
            "knn",
            traceparent="00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
        )
        assert trace.trace_id == "4bf92f3577b34da6a3ce929d0e0e4736"
        assert trace.parent_id == "00f067aa0ba902b7"


# ---------------------------------------------------------------------------
# Sinks
# ---------------------------------------------------------------------------
class TestSinks:
    def test_ring_evicts_oldest(self):
        recorder = FlightRecorder(depth=3)
        traces = []
        for index in range(5):
            trace = Trace(f"knn")
            trace.annotate(index=index)
            trace.finish()
            recorder.record(trace)
            traces.append(trace)
        kept = recorder.traces()
        assert len(kept) == 3
        assert [t.annotations["index"] for t in kept] == [4, 3, 2]
        assert recorder.recorded == 5
        assert recorder.find(traces[0].trace_id) is None
        assert recorder.find(traces[4].trace_id) is traces[4]

    def test_depth_zero_disables(self):
        recorder = FlightRecorder(depth=0)
        assert not recorder.enabled
        trace = Trace("knn")
        trace.finish()
        recorder.record(trace)
        assert len(recorder) == 0 and recorder.recorded == 0

    def test_slow_log_threshold(self):
        slow = SlowQueryLog(threshold_s=0.05, depth=4)
        fast, slow_trace = Trace("knn"), Trace("knn")
        fast.finish()
        fast.latency_s = 0.01
        slow_trace.finish()
        slow_trace.latency_s = 0.08
        assert not slow.offer(fast)
        assert slow.offer(slow_trace)
        assert slow.captured == 1
        assert slow.traces() == [slow_trace]

    def test_slow_log_disabled_with_none(self):
        slow = SlowQueryLog(threshold_s=None)
        trace = Trace("knn")
        trace.finish()
        trace.latency_s = 999.0
        assert not slow.offer(trace)

    def test_finish_is_idempotent(self):
        trace = Trace("knn")
        assert trace.finish("ok")
        first_latency = trace.latency_s
        assert not trace.finish("error")
        assert trace.status == "ok"
        assert trace.latency_s == first_latency

    def test_negative_durations_clamped(self):
        trace = Trace("knn")
        trace.add_span("engine", 1.0, -0.5)
        assert trace.spans[0].duration_s == 0.0


# ---------------------------------------------------------------------------
# Scheduler integration
# ---------------------------------------------------------------------------
class TestSchedulerTracing:
    def test_query_trace_shape_and_exact_cost(self, vector_db, rng):
        with QueryScheduler(vector_db, max_wait_ms=0.5) as scheduler:
            served = scheduler.submit_query(rng.random(_DIM), 5).result(5)
            trace = scheduler.flight_recorder.find(served.trace_id)
            assert trace is not None and trace.finished
            assert trace.status == "ok"
            assert trace.stage_names() == [
                "admit",
                "cache-lookup",
                "queue-wait",
                "batch-form",
                "engine",
                "merge",
                "respond",
            ]
            engine_spans = [s for s in trace.spans if s.stage == "engine"]
            assert sum(
                s.annotations["distance_computations"] for s in engine_spans
            ) == served.stats.distance_computations

    def test_span_durations_sum_within_latency(self, vector_db, rng):
        # Unsharded: every stage runs back-to-back on one worker, so the
        # spans partition (a subset of) the request's wall time.
        with QueryScheduler(vector_db, max_wait_ms=0.5) as scheduler:
            served = scheduler.submit_query(rng.random(_DIM), 5).result(5)
            trace = scheduler.flight_recorder.find(served.trace_id)
            span_sum = sum(span.duration_s for span in trace.spans)
            assert span_sum <= trace.latency_s + 1e-9

    def test_cache_hit_trace_shape(self, vector_db, rng):
        with QueryScheduler(vector_db, max_wait_ms=0.5) as scheduler:
            vector = rng.random(_DIM)
            scheduler.submit_query(vector, 5).result(5)
            hit = scheduler.submit_query(vector, 5).result(5)
            assert hit.cache_hit
            trace = scheduler.flight_recorder.find(hit.trace_id)
            assert trace.stage_names() == ["admit", "cache-lookup"]
            lookup = trace.spans[-1]
            assert lookup.annotations["hit"] is True
            assert trace.annotations.get("cache_hit") is True

    def test_mutation_trace_includes_journal_spans(self, vector_db, rng, tmp_path):
        from repro.db.journal import JournalSet
        from repro.db.recovery import database_fingerprint

        journal = JournalSet(tmp_path, database_fingerprint(vector_db))
        journal.reset()
        with QueryScheduler(
            vector_db, journal=journal, max_wait_ms=0.5
        ) as scheduler:
            applied = scheduler.submit_add(rng.random((2, _DIM))).result(5)
            trace = scheduler.flight_recorder.find(applied.trace_id)
            stages = trace.stage_names()
            assert "journal-append" in stages
            assert "journal-fsync" in stages
            assert stages.index("journal-append") < stages.index("apply")
            assert stages[-1] == "respond"

    def test_unjournaled_mutation_trace(self, vector_db, rng):
        with QueryScheduler(vector_db, max_wait_ms=0.5) as scheduler:
            applied = scheduler.submit_add(rng.random((2, _DIM))).result(5)
            trace = scheduler.flight_recorder.find(applied.trace_id)
            assert trace.stage_names() == [
                "queue-wait",
                "batch-form",
                "apply",
                "respond",
            ]

    def test_sharded_per_shard_engine_spans(self, vector_db, rng):
        with QueryScheduler(vector_db, shards=3, max_wait_ms=0.5) as scheduler:
            served = scheduler.submit_query(rng.random(_DIM), 5).result(5)
            trace = scheduler.flight_recorder.find(served.trace_id)
            engine_spans = [s for s in trace.spans if s.stage == "engine"]
            assert len(engine_spans) == 3
            assert sorted(s.annotations["shard"] for s in engine_spans) == [0, 1, 2]
            assert sum(
                s.annotations["distance_computations"] for s in engine_spans
            ) == served.stats.distance_computations
            assert "merge" in trace.stage_names()

    def test_trace_depth_zero_disables_everything(self, vector_db, rng):
        with QueryScheduler(vector_db, trace_depth=0) as scheduler:
            assert not scheduler.tracing_enabled
            assert scheduler.new_trace("knn") is None
            served = scheduler.submit_query(rng.random(_DIM), 5).result(5)
            assert served.trace_id is None
            assert len(scheduler.flight_recorder) == 0

    def test_failed_mutation_finishes_trace_with_error(self, vector_db):
        with QueryScheduler(vector_db, max_wait_ms=0.5) as scheduler:
            future = scheduler.submit_remove([999_999])
            with pytest.raises(Exception):
                future.result(5)
            statuses = [t.status for t in scheduler.flight_recorder.traces()]
            assert "error" in statuses

    def test_slow_query_captured_under_injected_stall(self, vector_db, rng):
        with QueryScheduler(
            vector_db, max_wait_ms=0.5, slow_query_ms=5.0
        ) as scheduler:
            engine = scheduler.engine
            original = engine.query_batch

            def stalled(*args, **kwargs):
                import time as _time

                _time.sleep(0.02)
                return original(*args, **kwargs)

            engine.query_batch = stalled
            try:
                served = scheduler.submit_query(rng.random(_DIM), 5).result(5)
            finally:
                engine.query_batch = original
            slow = scheduler.slow_log.traces()
            assert any(t.trace_id == served.trace_id for t in slow)
            assert scheduler.slow_log.captured >= 1

    def test_stage_histogram_populated(self, vector_db, rng):
        with QueryScheduler(vector_db, max_wait_ms=0.5) as scheduler:
            scheduler.submit_query(rng.random(_DIM), 5).result(5)
            text = scheduler.render_metrics()
            assert 'repro_stage_seconds_count{stage="engine"}' in text
            assert 'repro_stage_seconds_count{stage="queue-wait"}' in text


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------
class TestFormatTrace:
    def test_waterfall_renders_all_spans(self, vector_db, rng):
        with QueryScheduler(vector_db, max_wait_ms=0.5) as scheduler:
            served = scheduler.submit_query(rng.random(_DIM), 5).result(5)
            trace = scheduler.flight_recorder.find(served.trace_id)
            rendered = format_trace(trace.to_dict())
            assert served.trace_id in rendered
            for stage in trace.stage_names():
                assert stage in rendered
            assert "distance_computations=" in rendered

    def test_empty_trace_renders(self):
        assert "no spans" in format_trace({"trace_id": "x", "spans": []})
