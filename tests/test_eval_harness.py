"""Tests for workload runners and table formatting."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.eval.harness import (
    QueryWorkloadResult,
    ascii_table,
    format_float,
    run_knn_workload,
    run_range_workload,
)
from repro.index.linear import LinearScanIndex
from repro.index.vptree import VPTree
from repro.metrics.minkowski import EuclideanDistance


@pytest.fixture
def index_and_queries(rng):
    vectors = rng.random((100, 3))
    index = LinearScanIndex(EuclideanDistance()).build(list(range(100)), vectors)
    queries = rng.random((10, 3))
    return index, queries


class TestWorkloadRunners:
    def test_knn_workload_averages(self, index_and_queries):
        index, queries = index_and_queries
        result = run_knn_workload(index, queries, k=5)
        assert result.n_queries == 10
        assert result.mean_distance_computations == 100.0  # linear scan
        assert result.mean_result_size == 5.0
        assert result.mean_latency_seconds > 0.0
        assert len(result.stats) == 10

    def test_range_workload(self, index_and_queries):
        index, queries = index_and_queries
        result = run_range_workload(index, queries, radius=2.0)
        assert result.mean_result_size == 100.0  # everything within 2.0

    def test_single_query_accepted_as_1d(self, index_and_queries, rng):
        index, _ = index_and_queries
        result = run_knn_workload(index, rng.random(3), k=3)
        assert result.n_queries == 1

    def test_empty_workload_rejected(self, index_and_queries):
        index, _ = index_and_queries
        with pytest.raises(ReproError, match="empty"):
            run_knn_workload(index, np.empty((0, 3)), k=1)

    def test_speedup_helper(self, rng):
        vectors = rng.random((200, 2))
        queries = rng.random((5, 2))
        linear = LinearScanIndex(EuclideanDistance()).build(list(range(200)), vectors)
        tree = VPTree(EuclideanDistance()).build(list(range(200)), vectors)
        base = run_knn_workload(linear, queries, k=5)
        result = run_knn_workload(tree, queries, k=5)
        result.set_speedup(base.mean_distance_computations)
        assert result.speedup_vs_scan is not None
        assert result.speedup_vs_scan > 1.0

    def test_speedup_none_until_set(self, index_and_queries):
        index, queries = index_and_queries
        result = run_knn_workload(index, queries, k=1)
        assert result.speedup_vs_scan is None


class TestFormatting:
    def test_format_float_cases(self):
        assert format_float(0.0) == "0"
        assert format_float(1.5) == "1.5"
        assert format_float(123456.0) == "1.23e+05"
        assert format_float(float("inf")) == "inf"
        assert format_float(float("nan")) == "nan"
        assert format_float(0.000001) == "1e-06"

    def test_ascii_table_shape(self):
        table = ascii_table(
            ["name", "value"], [["a", 1.0], ["b", 2.5]], title="demo"
        )
        lines = table.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1]
        assert "-+-" in lines[2]
        assert len(lines) == 5

    def test_ascii_table_alignment(self):
        table = ascii_table(["x"], [["long-cell-content"]])
        header, separator, row = table.splitlines()
        assert len(header) == len(row)

    def test_ascii_table_validates(self):
        with pytest.raises(ReproError):
            ascii_table([], [])
        with pytest.raises(ReproError, match="cells"):
            ascii_table(["a", "b"], [["only-one"]])

    def test_ascii_table_empty_rows(self):
        table = ascii_table(["a", "b"], [])
        assert "a" in table
