"""Tests for cosine, Canberra and Jensen-Shannon distances."""

import numpy as np
import pytest

from repro.errors import MetricError
from repro.features.base import l1_normalize
from repro.metrics.divergence import (
    CanberraDistance,
    CosineDistance,
    JensenShannonDistance,
)


class TestCosineDistance:
    def test_identical_direction_is_zero(self, rng):
        metric = CosineDistance()
        v = rng.random(8)
        assert metric.distance(v, v) == pytest.approx(0.0)
        assert metric.distance(v, 3.0 * v) == pytest.approx(0.0)

    def test_orthogonal_is_one(self):
        metric = CosineDistance()
        assert metric.distance([1.0, 0.0], [0.0, 1.0]) == pytest.approx(1.0)

    def test_opposite_is_two(self):
        metric = CosineDistance()
        assert metric.distance([1.0, 0.0], [-1.0, 0.0]) == pytest.approx(2.0)

    def test_zero_vector_convention(self, rng):
        metric = CosineDistance()
        zero = np.zeros(4)
        assert metric.distance(zero, rng.random(4)) == 1.0
        assert metric.distance(zero, zero) == 1.0

    def test_symmetric(self, rng):
        metric = CosineDistance()
        a, b = rng.random(6), rng.random(6)
        assert metric.distance(a, b) == pytest.approx(metric.distance(b, a))

    def test_declared_non_metric(self):
        assert CosineDistance().is_metric is False

    def test_shape_mismatch_rejected(self):
        with pytest.raises(MetricError):
            CosineDistance().distance([1.0, 2.0], [1.0])


class TestCanberraDistance:
    def test_identity(self, rng):
        v = rng.random(8)
        assert CanberraDistance().distance(v, v) == pytest.approx(0.0)

    def test_symmetric(self, rng):
        metric = CanberraDistance()
        a, b = rng.random(6), rng.random(6)
        assert metric.distance(a, b) == pytest.approx(metric.distance(b, a))

    def test_triangle_inequality_on_random_triples(self, rng):
        metric = CanberraDistance()
        for _ in range(100):
            a, b, c = rng.random((3, 5))
            assert metric.distance(a, c) <= (
                metric.distance(a, b) + metric.distance(b, c) + 1e-12
            )

    def test_emphasizes_small_bins(self):
        metric = CanberraDistance()
        # Same absolute difference (0.1), but in a small bin vs a large one.
        small_bin = metric.distance([0.0, 1.0], [0.1, 1.0])
        large_bin = metric.distance([1.0, 1.0], [1.1, 1.0])
        assert small_bin > 5.0 * large_bin

    def test_both_zero_coordinate_ignored(self):
        assert CanberraDistance().distance([0.0, 1.0], [0.0, 2.0]) == pytest.approx(
            1.0 / 3.0
        )

    def test_all_zeros(self):
        assert CanberraDistance().distance(np.zeros(4), np.zeros(4)) == 0.0

    def test_bounded_by_dimension(self, rng):
        metric = CanberraDistance()
        a, b = rng.random(7), rng.random(7)
        assert metric.distance(a, b) <= 7.0


class TestJensenShannonDistance:
    def test_identity(self, rng):
        metric = JensenShannonDistance()
        p = l1_normalize(rng.random(12))
        assert metric.distance(p, p) == pytest.approx(0.0, abs=1e-9)

    def test_symmetric(self, rng):
        metric = JensenShannonDistance()
        p = l1_normalize(rng.random(12))
        q = l1_normalize(rng.random(12))
        assert metric.distance(p, q) == pytest.approx(metric.distance(q, p))

    def test_disjoint_supports_is_one(self):
        metric = JensenShannonDistance()
        assert metric.distance([1.0, 0.0], [0.0, 1.0]) == pytest.approx(1.0)

    def test_triangle_inequality_on_random_triples(self, rng):
        metric = JensenShannonDistance()
        for _ in range(100):
            p, q, r = (l1_normalize(rng.random(6)) for _ in range(3))
            assert metric.distance(p, r) <= (
                metric.distance(p, q) + metric.distance(q, r) + 1e-12
            )

    def test_scale_invariant_via_normalization(self, rng):
        metric = JensenShannonDistance()
        p = rng.random(8)
        q = rng.random(8)
        assert metric.distance(p, q) == pytest.approx(
            metric.distance(10.0 * p, 0.3 * q)
        )

    def test_rejects_negative_values(self):
        with pytest.raises(MetricError, match="non-negative"):
            JensenShannonDistance().distance([0.5, -0.1], [0.5, 0.5])

    def test_empty_histogram_convention(self):
        metric = JensenShannonDistance()
        zero = np.zeros(4)
        assert metric.distance(zero, zero) == 0.0
        assert metric.distance(zero, np.ones(4)) == 1.0

    def test_bounded_by_one(self, rng):
        metric = JensenShannonDistance()
        for _ in range(50):
            p = l1_normalize(rng.random(10))
            q = l1_normalize(rng.random(10))
            assert 0.0 <= metric.distance(p, q) <= 1.0

    def test_indexable_by_metric_trees(self, rng):
        from repro.index.linear import LinearScanIndex
        from repro.index.vptree import VPTree

        histograms = np.array([l1_normalize(rng.random(8)) for _ in range(80)])
        ids = list(range(80))
        metric = JensenShannonDistance()
        tree = VPTree(metric).build(ids, histograms)
        linear = LinearScanIndex(metric).build(ids, histograms)
        query = l1_normalize(rng.random(8))
        assert [n.id for n in tree.knn_search(query, 5)] == [
            n.id for n in linear.knn_search(query, 5)
        ]

    def test_cosine_refused_by_metric_trees(self):
        from repro.errors import IndexingError
        from repro.index.vptree import VPTree

        with pytest.raises(IndexingError, match="triangle inequality"):
            VPTree(CosineDistance())
