"""Tests for color histogram extractors."""

import numpy as np
import pytest

from repro.errors import FeatureError
from repro.features.histogram import (
    GrayHistogram,
    HSVHistogram,
    RGBJointHistogram,
    RGBMarginalHistogram,
)
from repro.image import synth, transforms
from repro.image.core import Image


class TestGrayHistogram:
    def test_dim_and_normalization(self, gray_image):
        h = GrayHistogram(32).extract(gray_image)
        assert h.shape == (32,)
        assert h.sum() == pytest.approx(1.0)
        assert h.min() >= 0.0

    def test_black_image_mass_in_first_bin(self):
        h = GrayHistogram(16).extract(Image.zeros(8, 8))
        assert h[0] == pytest.approx(1.0)

    def test_white_image_mass_in_last_bin(self):
        h = GrayHistogram(16).extract(Image.full(8, 8, 1.0))
        assert h[-1] == pytest.approx(1.0)

    def test_size_invariance(self, rng):
        img = synth.value_noise(64, 64, rng)
        small = img.resize(32, 32)
        h_big = GrayHistogram(16).extract(img)
        h_small = GrayHistogram(16).extract(small)
        assert np.abs(h_big - h_small).sum() < 0.15

    def test_rejects_bad_bins(self):
        with pytest.raises(FeatureError):
            GrayHistogram(0)
        with pytest.raises(FeatureError):
            GrayHistogram(8, working_size=0)


class TestRGBJointHistogram:
    def test_dim_is_levels_cubed(self):
        assert RGBJointHistogram(4).dim == 64
        assert RGBJointHistogram(2).dim == 8

    def test_pure_red_in_expected_bin(self):
        red = synth.solid(8, 8, (1.0, 0.0, 0.0))
        h = RGBJointHistogram(2).extract(red)
        assert h[4] == pytest.approx(1.0)  # code r=1,g=0,b=0 -> 4

    def test_distinguishes_red_from_green(self):
        red = synth.solid(16, 16, (0.9, 0.1, 0.1))
        green = synth.solid(16, 16, (0.1, 0.9, 0.1))
        extractor = RGBJointHistogram(4)
        h_red = extractor.extract(red)
        h_green = extractor.extract(green)
        assert np.abs(h_red - h_green).sum() == pytest.approx(2.0)  # disjoint

    def test_rotation_invariance(self, scene_image):
        extractor = RGBJointHistogram(4)
        h = extractor.extract(scene_image)
        h_rot = extractor.extract(transforms.rotate90(scene_image))
        assert np.abs(h - h_rot).sum() < 1e-9

    def test_flip_invariance(self, scene_image):
        extractor = RGBJointHistogram(4)
        h = extractor.extract(scene_image)
        h_flip = extractor.extract(transforms.flip_horizontal(scene_image))
        assert np.abs(h - h_flip).sum() < 1e-9

    def test_layout_blindness(self):
        # Two different layouts with identical color mass: the histogram
        # limitation the paper calls out explicitly.
        top_red = synth.solid(16, 16, (0.0, 0.0, 1.0))
        top_red = synth.draw_rectangle(top_red, (0, 0), (15, 7), (1.0, 0.0, 0.0))
        bottom_red = synth.solid(16, 16, (0.0, 0.0, 1.0))
        bottom_red = synth.draw_rectangle(bottom_red, (0, 8), (15, 15), (1.0, 0.0, 0.0))
        extractor = RGBJointHistogram(4, working_size=16)
        diff = np.abs(
            extractor.extract(top_red) - extractor.extract(bottom_red)
        ).sum()
        assert diff < 0.1


class TestRGBMarginalHistogram:
    def test_dim(self):
        assert RGBMarginalHistogram(32).dim == 96

    def test_sections_individually_normalized(self, scene_image):
        h = RGBMarginalHistogram(16).extract(scene_image)
        for channel in range(3):
            assert h[channel * 16 : (channel + 1) * 16].sum() == pytest.approx(1.0)


class TestHSVHistogram:
    def test_default_dim(self):
        assert HSVHistogram().dim == 162

    def test_normalized(self, scene_image):
        h = HSVHistogram().extract(scene_image)
        assert h.sum() == pytest.approx(1.0)

    def test_hue_separation_better_than_value(self):
        # Same value/saturation, different hue: HSV histogram separates.
        red = synth.solid(16, 16, (0.8, 0.2, 0.2))
        blue = synth.solid(16, 16, (0.2, 0.2, 0.8))
        extractor = HSVHistogram((18, 3, 3))
        diff = np.abs(extractor.extract(red) - extractor.extract(blue)).sum()
        assert diff == pytest.approx(2.0)

    def test_rejects_bad_bins(self):
        with pytest.raises(FeatureError):
            HSVHistogram((18, 0, 3))
