"""Tracing over the wire: headers, /debug endpoints, access log.

Every HTTP answer from a tracing server carries ``X-Repro-Trace-Id``
and a ``trace_id`` body field; an inbound W3C ``traceparent`` donates
its trace id so the request joins the caller's distributed trace.  The
trace is finished *before* the response bytes go out, so a client that
immediately fetches ``/debug/trace?id=`` always sees the complete span
set — that race-freedom is load-bearing for the CI smoke step and
pinned here.
"""

import io
import json
import urllib.request

import numpy as np
import pytest

from repro.db.database import ImageDatabase
from repro.errors import ServeError
from repro.features.base import PresetSignature
from repro.features.pipeline import FeatureSchema
from repro.serve.client import ServiceClient
from repro.serve.http import QueryServer
from repro.serve.logsys import StructuredLog
from repro.serve.metrics import validate_exposition

_DIM = 6
_N = 80
_TRACEPARENT = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"


def _make_db(seed: int = 31):
    db = ImageDatabase(FeatureSchema([PresetSignature(_DIM, "sig")]))
    db.add_vectors(np.random.default_rng(seed).random((_N, _DIM)))
    db.build_indexes()
    return db


@pytest.fixture(scope="module")
def served():
    db = _make_db()
    server = QueryServer(db, port=0, max_batch=8, max_wait_ms=1.0).start()
    host, port = server.address
    yield server, ServiceClient(host, port)
    server.stop()


class TestTraceHeaders:
    def test_response_carries_trace_id(self, served):
        server, client = served
        response = client.query(np.random.default_rng(1).random(_DIM), 3)
        assert "trace_id" in response and len(response["trace_id"]) == 32

    def test_header_matches_body(self, served):
        server, _ = served
        host, port = server.address
        body = json.dumps(
            {"vector": [0.25] * _DIM, "k": 3}
        ).encode()
        request = urllib.request.Request(
            f"http://{host}:{port}/query",
            data=body,
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=5) as response:
            payload = json.loads(response.read())
            assert response.headers["X-Repro-Trace-Id"] == payload["trace_id"]

    def test_inbound_traceparent_donates_trace_id(self, served):
        _, client = served
        response = client.query(
            np.random.default_rng(2).random(_DIM), 3, traceparent=_TRACEPARENT
        )
        assert response["trace_id"] == "4bf92f3577b34da6a3ce929d0e0e4736"
        trace = client.debug_trace(response["trace_id"])
        assert trace["parent_id"] == "00f067aa0ba902b7"

    def test_malformed_traceparent_gets_fresh_id(self, served):
        _, client = served
        response = client.query(
            np.random.default_rng(3).random(_DIM), 3, traceparent="bogus-header"
        )
        assert len(response["trace_id"]) == 32
        assert response["trace_id"] != "4bf92f3577b34da6a3ce929d0e0e4736"


class TestDebugEndpoints:
    def test_trace_fetch_right_after_response(self, served):
        # The trace finishes before response bytes are written, so a
        # same-connection follow-up fetch must see every span.
        _, client = served
        response = client.query(np.random.default_rng(4).random(_DIM), 3)
        trace = client.debug_trace(response["trace_id"])
        stages = [span["stage"] for span in trace["spans"]]
        for stage in ("queue-wait", "engine", "merge", "respond"):
            assert stage in stages, stages
        assert trace["status"] == "ok"
        assert trace["route"] == "knn"

    def test_engine_span_cost_matches_reported_stats(self, served):
        _, client = served
        response = client.query(np.random.default_rng(5).random(_DIM), 3)
        trace = client.debug_trace(response["trace_id"])
        # Annotations are flattened into the span's wire dict.
        engine_cost = sum(
            span["distance_computations"]
            for span in trace["spans"]
            if span["stage"] == "engine"
        )
        assert engine_cost == response["distance_computations"]

    def test_traces_listing(self, served):
        _, client = served
        response = client.query(np.random.default_rng(6).random(_DIM), 4)
        listing = client.debug_traces()
        assert listing["enabled"] is True
        assert listing["depth"] > 0
        assert listing["recorded"] >= 1
        assert any(
            t["trace_id"] == response["trace_id"] for t in listing["traces"]
        )
        newest = listing["traces"][0]
        for field in ("trace_id", "route", "status", "latency_ms", "n_spans"):
            assert field in newest

    def test_trace_missing_id_400(self, served):
        _, client = served
        with pytest.raises(ServeError, match="id"):
            client._request("/debug/trace")

    def test_trace_unknown_id_404(self, served):
        _, client = served
        with pytest.raises(ServeError, match="no retained trace"):
            client.debug_trace("f" * 32)

    def test_slow_log_endpoint_shape(self, served):
        _, client = served
        slow = client.debug_slow()
        assert "threshold_ms" in slow
        assert "captured" in slow
        assert isinstance(slow["traces"], list)

    def test_error_request_leaves_error_trace(self, served):
        _, client = served
        with pytest.raises(ServeError):
            client.query(
                np.zeros(_DIM), 0, traceparent=_TRACEPARENT.replace("4bf9", "5caa")
            )
        trace = client.debug_trace("5caa2f3577b34da6a3ce929d0e0e4736")
        assert trace["status"] == "error"

    def test_stats_exposes_recent_qps(self, served):
        _, client = served
        client.query(np.random.default_rng(7).random(_DIM), 2)
        stats = client.stats()
        assert "recent_qps" in stats
        assert stats["recent_qps"] >= 0.0

    def test_live_metrics_pass_exposition_validator(self, served):
        _, client = served
        client.query(np.random.default_rng(8).random(_DIM), 2)
        text = client.metrics()
        families = validate_exposition(text)
        assert "repro_stage_seconds" in families
        assert "repro_process" in families
        assert 'repro_process{figure="rss_bytes"}' in text


class TestTracingDisabled:
    def test_depth_zero_server_omits_trace_id(self):
        db = _make_db(seed=7)
        with QueryServer(db, port=0, trace_depth=0, max_wait_ms=0.5) as server:
            host, port = server.address
            client = ServiceClient(host, port)
            response = client.query(np.zeros(_DIM), 3)
            assert "trace_id" not in response
            listing = client.debug_traces()
            assert listing["enabled"] is False


class TestAccessLog:
    def test_access_log_lines_are_json_with_trace_ids(self):
        db = _make_db(seed=9)
        stream = io.StringIO()
        log = StructuredLog(stream)
        with QueryServer(
            db, port=0, max_wait_ms=0.5, access_log=log
        ) as server:
            host, port = server.address
            client = ServiceClient(host, port)
            response = client.query(np.zeros(_DIM), 3)
            client.stats()
        lines = [json.loads(l) for l in stream.getvalue().splitlines()]
        requests = [l for l in lines if l["event"] == "http_request"]
        assert len(requests) >= 2
        query_line = next(l for l in requests if l["path"] == "/query")
        assert query_line["method"] == "POST"
        assert query_line["status"] == 200
        assert query_line["trace_id"] == response["trace_id"]
        assert query_line["latency_ms"] >= 0.0
