"""End-to-end integration tests: the full pipeline on a labelled corpus.

These exercise the exact flow the paper describes — decode, extract,
index, query, rank — and check the *retrieval semantics*, not just unit
behaviour: same-class images must rank above different-class images for
features that separate those classes.
"""

import numpy as np
import pytest

from repro.db.database import ImageDatabase
from repro.eval.datasets import make_corpus_images
from repro.eval.groundtruth import RelevanceJudgments
from repro.eval.metrics import mean_precision_at_k
from repro.features.histogram import HSVHistogram, RGBJointHistogram
from repro.features.pipeline import FeatureSchema
from repro.features.texture import GLCMFeatures
from repro.features.wavelet import WaveletSignature
from repro.image.io_ppm import read_ppm, write_ppm
from repro.index.antipole import AntipoleTree
from repro.index.linear import LinearScanIndex
from repro.index.vptree import VPTree
from repro.metrics.minkowski import EuclideanDistance


@pytest.fixture(scope="module")
def corpus():
    return make_corpus_images(4, size=32, seed=11)


@pytest.fixture(scope="module")
def populated_db(corpus):
    images, labels = corpus
    schema = FeatureSchema(
        [
            HSVHistogram((18, 3, 3), working_size=32),
            RGBJointHistogram(4, working_size=32),
            GLCMFeatures(16, working_size=32),
            WaveletSignature(3, working_size=32),
        ]
    )
    db = ImageDatabase(schema)
    for image, label in zip(images, labels):
        db.add_image(image, label=label)
    db.build_indexes()
    return db


class TestEndToEndRetrieval:
    def test_leave_one_out_precision_color_feature(self, populated_db, corpus):
        db = populated_db
        ids = db.catalog.ids
        labels = [db.catalog.get(i).label for i in ids]
        judgments = RelevanceJudgments.from_labels(ids, labels)

        rankings = {}
        for image_id in ids:
            _, matrix = db.feature_matrix("hsv_hist_18x3x3")
            vector = matrix[ids.index(image_id)]
            results = db.query(vector, k=6, feature="hsv_hist_18x3x3")
            rankings[image_id] = [r.image_id for r in results if r.image_id != image_id][:5]

        precision = mean_precision_at_k(rankings, judgments, 3)
        # Color separates most of the 8 classes: far above the 1/8 chance level.
        assert precision > 0.5

    def test_multi_feature_no_worse_than_random(self, populated_db, corpus):
        images, labels = corpus
        db = populated_db
        query_image = images[0]
        results = db.query_multi(query_image, k=5)
        same_class = sum(1 for r in results if r.record.label == labels[0])
        assert same_class >= 2

    def test_index_choice_does_not_change_results(self, corpus):
        images, labels = corpus
        schema = FeatureSchema([RGBJointHistogram(4, working_size=32)])
        dbs = {}
        for name, factory in (
            ("linear", lambda m: LinearScanIndex(m)),
            ("vptree", lambda m: VPTree(m)),
            ("antipole", lambda m: AntipoleTree(m)),
        ):
            db = ImageDatabase(schema, index_factory=factory)
            for image, label in zip(images, labels):
                db.add_image(image, label=label)
            dbs[name] = db

        query = images[3]
        reference = [
            round(r.distance, 10) for r in dbs["linear"].query(query, k=8)
        ]
        for name in ("vptree", "antipole"):
            got = [round(r.distance, 10) for r in dbs[name].query(query, k=8)]
            assert got == reference, name

    def test_codec_round_trip_preserves_retrieval(self, tmp_path, populated_db, corpus):
        # Write the query to PPM, read it back, query again: same answer.
        images, _ = corpus
        db = populated_db
        query = images[5]
        path = tmp_path / "query.ppm"
        write_ppm(query, path)
        reloaded = read_ppm(path)

        direct = [r.image_id for r in db.query(query, k=5)]
        via_file = [r.image_id for r in db.query(reloaded, k=5)]
        assert direct == via_file

    def test_save_load_query_consistency(self, tmp_path, populated_db, corpus):
        images, _ = corpus
        db = populated_db
        db.save(tmp_path / "db")
        loaded = ImageDatabase.load(tmp_path / "db", db.schema)
        query = images[9]
        assert [r.image_id for r in db.query(query, k=5)] == [
            r.image_id for r in loaded.query(query, k=5)
        ]


class TestCostAccounting:
    def test_tree_cheaper_than_scan_on_clustered_corpus(self, populated_db, corpus):
        # Image features are clustered by class, so the metric tree must
        # prune: this is the paper's core claim on real(istic) data.
        images, _ = corpus
        db = populated_db
        feature = "hsv_hist_18x3x3"
        ids, matrix = db.feature_matrix(feature)
        metric = EuclideanDistance()

        linear = LinearScanIndex(metric).build(ids, matrix)
        tree = VPTree(metric).build(ids, matrix)

        scan_total = 0
        tree_total = 0
        for row in range(0, len(ids), 4):
            linear.knn_search(matrix[row], 5)
            scan_total += linear.last_stats.distance_computations
            tree.knn_search(matrix[row], 5)
            tree_total += tree.last_stats.distance_computations
        assert tree_total < scan_total
