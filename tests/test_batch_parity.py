"""Batch/scalar parity: the batched engine must change nothing but speed.

The contracts pinned here (see ``repro.metrics.base`` and
``repro.index.base``):

* ``Metric.distance_batch(q, V)[i]`` is bit-identical to
  ``Metric.distance(q, V[i])`` for every metric — vectorized kernel or
  loop fallback, degenerate operands included;
* a batch over n rows counts as exactly n evaluations on
  :class:`CountingMetric`;
* ``knn_search_batch`` / ``range_search_batch`` return, per query,
  exactly the ids, distances, and :class:`SearchStats` counters of the
  scalar calls, on **every** index class.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import IndexingError, MetricError
from repro.index.antipole import AntipoleTree
from repro.index.filter_refine import FilterRefineIndex
from repro.index.gnat import GNAT
from repro.index.kdtree import KDTree
from repro.index.laesa import LAESAIndex
from repro.index.linear import LinearScanIndex
from repro.index.mtree import MTree
from repro.index.vptree import VPTree
from repro.metrics.base import CountingMetric, validate_batch_operands
from repro.metrics.divergence import (
    CanberraDistance,
    CosineDistance,
    JensenShannonDistance,
)
from repro.metrics.emd import MatchDistance
from repro.metrics.hausdorff import HausdorffDistance
from repro.metrics.histogram import (
    BhattacharyyaDistance,
    ChiSquareDistance,
    HistogramIntersection,
)
from repro.metrics.minkowski import (
    ChebyshevDistance,
    EuclideanDistance,
    ManhattanDistance,
    MinkowskiDistance,
    WeightedEuclideanDistance,
)
from repro.metrics.quadratic import QuadraticFormDistance
from repro.metrics.shifted import CircularShiftDistance
from repro.reduce import KLTransform

_DIM = 6


def _psd_matrix(dim=_DIM):
    rng = np.random.default_rng(11)
    basis = rng.random((dim, dim))
    return basis @ basis.T + np.eye(dim)


def _all_metrics():
    rng = np.random.default_rng(12)
    return [
        ManhattanDistance(),
        EuclideanDistance(),
        ChebyshevDistance(),
        MinkowskiDistance(3.0),
        WeightedEuclideanDistance(rng.random(_DIM)),
        HistogramIntersection(),
        ChiSquareDistance(),
        BhattacharyyaDistance(),
        QuadraticFormDistance(_psd_matrix()),
        CosineDistance(),
        CanberraDistance(),
        JensenShannonDistance(),
        MatchDistance(),  # stacked-cumsum kernel
        CircularShiftDistance(),  # stacked-shift kernel, all shifts
        CircularShiftDistance(max_shift=2),  # stacked-shift kernel, capped
        CircularShiftDistance(ManhattanDistance(), max_shift=3),
        CircularShiftDistance(MatchDistance()),  # vectorized base since the EMD kernel
    ]


METRICS = _all_metrics()
METRIC_IDS = [metric.name for metric in METRICS]


# ---------------------------------------------------------------------------
# Metric-level parity
# ---------------------------------------------------------------------------
class TestMetricBatchParity:
    @pytest.mark.parametrize("metric", METRICS, ids=METRIC_IDS)
    def test_batch_bit_identical_to_scalar(self, metric, rng):
        vectors = rng.random((30, _DIM))
        query = rng.random(_DIM)
        batch = metric.distance_batch(query, vectors)
        scalar = np.array([metric.distance(query, row) for row in vectors])
        assert np.array_equal(batch, scalar)

    @pytest.mark.parametrize("metric", METRICS, ids=METRIC_IDS)
    def test_degenerate_rows_and_query(self, metric, rng):
        # Zero rows, a row equal to the query, and a zero query exercise
        # every degenerate branch (empty histograms, zero norms).
        vectors = rng.random((10, _DIM))
        vectors[3] = 0.0
        for query in (rng.random(_DIM), np.zeros(_DIM), vectors[7].copy()):
            batch = metric.distance_batch(query, vectors)
            scalar = np.array([metric.distance(query, row) for row in vectors])
            assert np.array_equal(batch, scalar)

    @pytest.mark.parametrize("metric", METRICS, ids=METRIC_IDS)
    def test_empty_batch(self, metric, rng):
        out = metric.distance_batch(rng.random(_DIM), np.empty((0, _DIM)))
        assert out.shape == (0,)
        assert out.dtype == np.float64

    def test_supports_batch_flags(self):
        assert EuclideanDistance().supports_batch
        assert QuadraticFormDistance(_psd_matrix()).supports_batch
        assert MatchDistance().supports_batch
        assert HausdorffDistance(point_dim=2).supports_batch
        assert CountingMetric(EuclideanDistance()).supports_batch
        assert CountingMetric(MatchDistance()).supports_batch
        # The stacked-shift kernel is vectorized iff its base metric is;
        # since the EMD kernel landed, every shipped base qualifies.
        assert CircularShiftDistance().supports_batch
        assert CircularShiftDistance(ManhattanDistance()).supports_batch
        assert CircularShiftDistance(MatchDistance()).supports_batch

    def test_shift_kernel_counts_rows_not_shifts(self, rng):
        # A batch over n rows is n distance computations regardless of
        # how many shifts the kernel evaluates internally.
        counter = CountingMetric(CircularShiftDistance())
        counter.distance_batch(rng.random(_DIM), rng.random((13, _DIM)))
        assert counter.count == 13

    def test_shift_kernel_exact_zero_rows(self, rng):
        # The scalar loop early-exits at an exact zero; the kernel's
        # np.minimum must land on the same value.
        metric = CircularShiftDistance()
        vectors = rng.random((6, _DIM))
        query = vectors[2].copy()
        vectors[4] = np.roll(query, 3)  # zero at a non-trivial shift
        batch = metric.distance_batch(query, vectors)
        scalar = np.array([metric.distance(query, row) for row in vectors])
        assert np.array_equal(batch, scalar)
        assert batch[2] == 0.0 and batch[4] == 0.0

    def test_validate_batch_operands_rejects_bad_shapes(self, rng):
        with pytest.raises(MetricError, match="2-D"):
            validate_batch_operands(rng.random(4), rng.random(4), "x")
        with pytest.raises(MetricError, match="dim"):
            validate_batch_operands(rng.random(4), rng.random((3, 5)), "x")
        with pytest.raises(MetricError, match="empty"):
            validate_batch_operands(np.empty(0), np.empty((2, 0)), "x")

    def test_counting_metric_counts_batch_rows(self, rng):
        counter = CountingMetric(EuclideanDistance())
        counter.distance_batch(rng.random(_DIM), rng.random((17, _DIM)))
        assert counter.count == 17
        counter.distance(rng.random(_DIM), rng.random(_DIM))
        assert counter.count == 18

    def test_counting_metric_loop_fallback_not_double_counted(self, rng):
        counter = CountingMetric(MatchDistance())
        counter.distance_batch(rng.random(_DIM), rng.random((9, _DIM)))
        assert counter.count == 9

    def test_counting_metric_batch_values_delegate(self, rng):
        inner = EuclideanDistance()
        counter = CountingMetric(inner)
        query, vectors = rng.random(_DIM), rng.random((8, _DIM))
        assert np.array_equal(
            counter.distance_batch(query, vectors),
            inner.distance_batch(query, vectors),
        )


# ---------------------------------------------------------------------------
# Index-level parity
# ---------------------------------------------------------------------------
INDEX_FACTORIES = {
    "linear": lambda metric: LinearScanIndex(metric),
    "vptree": lambda metric: VPTree(metric, leaf_size=4),
    "antipole": lambda metric: AntipoleTree(metric),
    "kdtree": lambda metric: KDTree(metric, leaf_size=4),
    "laesa": lambda metric: LAESAIndex(metric, n_pivots=4),
    "mtree": lambda metric: MTree(metric),
    "gnat": lambda metric: GNAT(metric, degree=4),
    "filter_refine": lambda metric: FilterRefineIndex(metric, KLTransform(3)),
}

#: Metrics exercised per index: Euclidean everywhere, plus a vectorized
#: histogram metric and a loop-fallback metric where the index admits them
#: (the kd-tree is Minkowski-only by design).
INDEX_METRICS = {
    name: (
        [EuclideanDistance(), ManhattanDistance()]
        if name == "kdtree"
        else [EuclideanDistance(), HistogramIntersection(), MatchDistance()]
    )
    for name in INDEX_FACTORIES
}
# MatchDistance is a metric but the trees that require the triangle
# inequality get it too — it satisfies the axioms on normalized inputs.
# The circular-shift measure is non-metric, so only the linear scan may
# carry it; its stacked-shift kernel gets index-level parity there.
INDEX_METRICS["linear"] = INDEX_METRICS["linear"] + [
    CircularShiftDistance(max_shift=2)
]

_INDEX_CASES = [
    (name, metric)
    for name, metrics in INDEX_METRICS.items()
    for metric in metrics
]
_INDEX_CASE_IDS = [f"{name}-{metric.name}" for name, metric in _INDEX_CASES]


def _build(name, metric, rng, n=70):
    vectors = rng.random((n, _DIM))
    index = INDEX_FACTORIES[name](metric).build(list(range(n)), vectors)
    queries = rng.random((8, _DIM))
    return index, queries


class TestIndexBatchParity:
    @pytest.mark.parametrize("name,metric", _INDEX_CASES, ids=_INDEX_CASE_IDS)
    def test_knn_batch_identical_to_scalar(self, name, metric, rng):
        index, queries = _build(name, metric, rng)
        scalar_results, scalar_stats = [], []
        for query in queries:
            scalar_results.append(index.knn_search(query, 5))
            scalar_stats.append(index.last_stats)
        batch_results = index.knn_search_batch(queries, 5)
        assert batch_results == scalar_results  # ids AND distances, bitwise
        assert index.last_batch_stats == scalar_stats
        merged = index.last_stats
        assert merged.distance_computations == sum(
            stats.distance_computations for stats in scalar_stats
        )

    @pytest.mark.parametrize("name,metric", _INDEX_CASES, ids=_INDEX_CASE_IDS)
    def test_range_batch_identical_to_scalar(self, name, metric, rng):
        index, queries = _build(name, metric, rng)
        radius = 0.25 if isinstance(metric, (HistogramIntersection, MatchDistance)) else 0.7
        scalar_results, scalar_stats = [], []
        for query in queries:
            scalar_results.append(index.range_search(query, radius))
            scalar_stats.append(index.last_stats)
        batch_results = index.range_search_batch(queries, radius)
        assert batch_results == scalar_results
        assert index.last_batch_stats == scalar_stats

    @pytest.mark.parametrize("name", list(INDEX_FACTORIES), ids=list(INDEX_FACTORIES))
    def test_external_counter_agrees_across_paths(self, name, rng):
        # The kd-tree's isinstance check precludes wrapping; everyone else
        # must report identical counts through a wrapped metric.
        if name == "kdtree":
            pytest.skip("KDTree requires an unwrapped Minkowski metric")
        counter = CountingMetric(EuclideanDistance())
        index, queries = _build(name, counter, rng)
        counter.reset()
        for query in queries:
            index.knn_search(query, 4)
        scalar_count = counter.count
        counter.reset()
        index.knn_search_batch(queries, 4)
        assert counter.count == scalar_count
        assert counter.count == index.last_stats.distance_computations

    def test_batch_validation(self, rng):
        index = LinearScanIndex(EuclideanDistance()).build(
            list(range(10)), rng.random((10, _DIM))
        )
        with pytest.raises(IndexingError, match="2-D"):
            index.knn_search_batch(rng.random(_DIM), 3)
        with pytest.raises(IndexingError, match="dim"):
            index.knn_search_batch(rng.random((2, _DIM + 1)), 3)
        with pytest.raises(IndexingError, match="non-finite"):
            index.knn_search_batch(np.full((2, _DIM), np.nan), 3)
        with pytest.raises(IndexingError, match="k must be"):
            index.knn_search_batch(rng.random((2, _DIM)), 0)
        with pytest.raises(IndexingError, match="radius"):
            index.range_search_batch(rng.random((2, _DIM)), -1.0)
        unbuilt = LinearScanIndex(EuclideanDistance())
        with pytest.raises(IndexingError, match="not been built"):
            unbuilt.knn_search_batch(rng.random((2, _DIM)), 1)

    def test_empty_batch_returns_empty(self, rng):
        index = LinearScanIndex(EuclideanDistance()).build(
            list(range(10)), rng.random((10, _DIM))
        )
        assert index.knn_search_batch(np.empty((0, _DIM)), 3) == []
        assert index.last_batch_stats == []
        assert index.last_stats.distance_computations == 0

    def test_scalar_query_clears_batch_stats(self, rng):
        index = LinearScanIndex(EuclideanDistance()).build(
            list(range(10)), rng.random((10, _DIM))
        )
        index.knn_search_batch(rng.random((4, _DIM)), 2)
        assert len(index.last_batch_stats) == 4
        index.knn_search(rng.random(_DIM), 2)
        assert index.last_batch_stats == []
        assert index.last_stats.distance_computations == 10

    def test_filter_refine_batch_aggregates_filter_views(self, rng):
        index = FilterRefineIndex(EuclideanDistance(), KLTransform(3)).build(
            list(range(50)), rng.random((50, _DIM))
        )
        queries = rng.random((5, _DIM))
        per_query_counts, per_query_filter = [], []
        for query in queries:
            index.knn_search(query, 3)
            per_query_counts.append(index.last_candidate_count)
            per_query_filter.append(index.last_filter_stats)
            assert 0.0 <= index.last_candidate_ratio <= 1.0
        index.knn_search_batch(queries, 3)
        assert index.last_batch_candidate_counts == per_query_counts
        assert index.last_batch_filter_stats == per_query_filter
        assert index.last_candidate_count == sum(per_query_counts)
        assert index.last_filter_stats.distance_computations == sum(
            stats.distance_computations for stats in per_query_filter
        )
        assert 0.0 <= index.last_candidate_ratio <= 1.0
        # A scalar query supersedes the batch views.
        index.knn_search(queries[0], 3)
        assert index.last_batch_candidate_counts == []
        assert index.last_candidate_count == per_query_counts[0]

    def test_linear_scan_cost_still_exactly_n(self, rng):
        index = LinearScanIndex(EuclideanDistance()).build(
            list(range(25)), rng.random((25, _DIM))
        )
        index.knn_search_batch(rng.random((3, _DIM)), 2)
        assert [s.distance_computations for s in index.last_batch_stats] == [25, 25, 25]
        assert index.last_stats.distance_computations == 75


# ---------------------------------------------------------------------------
# Property-based parity (hypothesis): arbitrary data, exact equality
# ---------------------------------------------------------------------------
def _dataset_queries(max_n=40, dim=4, max_m=5):
    return st.tuples(
        hnp.arrays(
            np.float64,
            st.tuples(st.integers(1, max_n), st.just(dim)),
            elements=st.floats(0.0, 1.0, allow_nan=False, width=64),
        ),
        hnp.arrays(
            np.float64,
            st.tuples(st.integers(1, max_m), st.just(dim)),
            elements=st.floats(0.0, 1.0, allow_nan=False, width=64),
        ),
    )


class TestBatchParityProperties:
    @given(data=_dataset_queries(), k=st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_linear_knn_batch_equals_scalar(self, data, k):
        vectors, queries = data
        index = LinearScanIndex(EuclideanDistance()).build(
            list(range(len(vectors))), vectors
        )
        scalar = [index.knn_search(query, k) for query in queries]
        assert index.knn_search_batch(queries, k) == scalar

    @given(data=_dataset_queries(), radius=st.floats(0.0, 1.5))
    @settings(max_examples=40, deadline=None)
    def test_laesa_range_batch_equals_scalar(self, data, radius):
        vectors, queries = data
        index = LAESAIndex(EuclideanDistance(), n_pivots=3).build(
            list(range(len(vectors))), vectors
        )
        scalar_results, scalar_stats = [], []
        for query in queries:
            scalar_results.append(index.range_search(query, radius))
            scalar_stats.append(index.last_stats)
        assert index.range_search_batch(queries, radius) == scalar_results
        assert index.last_batch_stats == scalar_stats

    @given(data=_dataset_queries(max_n=30), k=st.integers(1, 5))
    @settings(max_examples=25, deadline=None)
    def test_vptree_knn_batch_equals_scalar(self, data, k):
        vectors, queries = data
        index = VPTree(EuclideanDistance(), leaf_size=3).build(
            list(range(len(vectors))), vectors
        )
        scalar = [index.knn_search(query, k) for query in queries]
        assert index.knn_search_batch(queries, k) == scalar
