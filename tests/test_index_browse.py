"""Tests for distance browsing (incremental nearest-neighbor)."""

import numpy as np
import pytest

from repro.errors import IndexingError
from repro.index.browse import browse
from repro.index.linear import LinearScanIndex
from repro.index.mtree import MTree
from repro.index.vptree import VPTree
from repro.metrics.base import CountingMetric
from repro.metrics.minkowski import EuclideanDistance


def _tree(rng, n=200, dim=3, metric=None):
    metric = metric or EuclideanDistance()
    vectors = rng.random((n, dim))
    return VPTree(metric).build(list(range(n)), vectors), vectors


class TestOrderingContract:
    def test_distances_nondecreasing(self, rng):
        tree, _ = _tree(rng)
        stream = browse(tree, rng.random(3))
        distances = [nb.distance for nb in stream]
        assert len(distances) == 200
        assert all(a <= b for a, b in zip(distances, distances[1:]))

    def test_matches_full_knn(self, rng):
        tree, vectors = _tree(rng)
        query = rng.random(3)
        expected = [nb.distance for nb in tree.knn_search(query, 200)]
        got = [nb.distance for nb in browse(tree, query)]
        assert np.allclose(got, expected)

    def test_yields_every_item_exactly_once(self, rng):
        tree, _ = _tree(rng, n=150)
        ids = [nb.id for nb in browse(tree, rng.random(3))]
        assert sorted(ids) == list(range(150))

    def test_query_point_first(self, rng):
        tree, vectors = _tree(rng)
        first = next(browse(tree, vectors[42]))
        assert first.id == 42
        assert first.distance == pytest.approx(0.0)

    def test_duplicates_all_surface(self):
        vectors = np.zeros((25, 2))
        tree = VPTree(EuclideanDistance()).build(list(range(25)), vectors)
        results = list(browse(tree, np.zeros(2)))
        assert len(results) == 25
        assert all(nb.distance == 0.0 for nb in results)

    def test_single_item_tree(self):
        tree = VPTree(EuclideanDistance()).build([7], np.array([[0.5, 0.5]]))
        assert [nb.id for nb in browse(tree, np.zeros(2))] == [7]


class TestLaziness:
    def test_few_results_cost_few_distances(self, rng):
        """Taking 5 of 800 neighbors must not pay anything near 800."""
        counter = CountingMetric(EuclideanDistance())
        vectors = rng.random((800, 2))
        tree = VPTree(counter).build(list(range(800)), vectors)
        counter.reset()
        stream = browse(tree, rng.random(2))
        for _ in range(5):
            next(stream)
        assert counter.count < 400

    def test_exhausting_costs_all_distances(self, rng):
        counter = CountingMetric(EuclideanDistance())
        vectors = rng.random((100, 2))
        tree = VPTree(counter).build(list(range(100)), vectors)
        counter.reset()
        list(browse(tree, rng.random(2)))
        assert counter.count == 100

    def test_stats_track_browsing(self, rng):
        tree, _ = _tree(rng, n=300)
        stream = browse(tree, rng.random(3))
        next(stream)
        early = tree.last_stats.distance_computations
        for _ in range(100):
            next(stream)
        later = tree.last_stats.distance_computations
        assert 0 < early <= later

    def test_abandoned_iterator_does_no_more_work(self, rng):
        counter = CountingMetric(EuclideanDistance())
        vectors = rng.random((400, 2))
        tree = VPTree(counter).build(list(range(400)), vectors)
        counter.reset()
        stream = browse(tree, rng.random(2))
        next(stream)
        spent = counter.count
        del stream
        assert counter.count == spent


class TestFallback:
    def test_linear_scan_fallback_matches(self, rng):
        metric = EuclideanDistance()
        vectors = rng.random((60, 3))
        linear = LinearScanIndex(metric).build(list(range(60)), vectors)
        query = rng.random(3)
        got = list(browse(linear, query))
        assert [nb.id for nb in got] == [
            nb.id for nb in linear.knn_search(query, 60)
        ]

    def test_mtree_fallback_matches(self, rng):
        metric = EuclideanDistance()
        vectors = rng.random((80, 3))
        tree = MTree(metric).build(list(range(80)), vectors)
        query = rng.random(3)
        distances = [nb.distance for nb in browse(tree, query)]
        assert all(a <= b for a, b in zip(distances, distances[1:]))
        assert len(distances) == 80

    def test_unbuilt_index_rejected(self):
        with pytest.raises(IndexingError, match="built"):
            browse(VPTree(EuclideanDistance()), np.zeros(2))

    def test_wrong_dim_query_rejected(self, rng):
        tree, _ = _tree(rng, dim=3)
        with pytest.raises(IndexingError, match="dim"):
            next(browse(tree, rng.random(5)))
