"""Tests for the PPM/PGM and BMP codecs."""

import numpy as np
import pytest

from repro.errors import CodecError
from repro.image.core import Image
from repro.image.io_bmp import read_bmp, read_bmp_bytes, write_bmp, write_bmp_bytes
from repro.image.io_ppm import read_ppm, read_ppm_bytes, write_ppm, write_ppm_bytes


@pytest.fixture
def gray_bytes_image(rng):
    return Image.from_uint8(rng.integers(0, 256, (7, 5), dtype=np.uint8))


@pytest.fixture
def rgb_bytes_image(rng):
    return Image.from_uint8(rng.integers(0, 256, (6, 9, 3), dtype=np.uint8))


class TestPPMRoundTrip:
    @pytest.mark.parametrize("binary", [True, False])
    def test_gray_round_trip(self, gray_bytes_image, binary):
        data = write_ppm_bytes(gray_bytes_image, binary=binary)
        assert read_ppm_bytes(data) == gray_bytes_image

    @pytest.mark.parametrize("binary", [True, False])
    def test_rgb_round_trip(self, rgb_bytes_image, binary):
        data = write_ppm_bytes(rgb_bytes_image, binary=binary)
        assert read_ppm_bytes(data) == rgb_bytes_image

    def test_16bit_round_trip(self, rng):
        img = Image(rng.integers(0, 65536, (4, 4)).astype(np.float64) / 65535.0)
        data = write_ppm_bytes(img, binary=True, maxval=65535)
        assert read_ppm_bytes(data).allclose(img, atol=1e-9)

    def test_file_round_trip(self, tmp_path, rgb_bytes_image):
        path = tmp_path / "img.ppm"
        write_ppm(rgb_bytes_image, path)
        assert read_ppm(path) == rgb_bytes_image

    def test_magic_bytes(self, gray_bytes_image, rgb_bytes_image):
        assert write_ppm_bytes(gray_bytes_image, binary=True).startswith(b"P5")
        assert write_ppm_bytes(gray_bytes_image, binary=False).startswith(b"P2")
        assert write_ppm_bytes(rgb_bytes_image, binary=True).startswith(b"P6")
        assert write_ppm_bytes(rgb_bytes_image, binary=False).startswith(b"P3")


class TestPPMParsing:
    def test_comments_in_header(self):
        data = b"P2\n# a comment\n2 2\n# another\n255\n0 64 128 255\n"
        img = read_ppm_bytes(data)
        assert img.shape == (2, 2)
        assert img.pixels[1, 1] == 1.0

    def test_single_whitespace_variants(self):
        data = b"P2 2 1 255 10 20"
        img = read_ppm_bytes(data)
        assert img.shape == (1, 2)

    def test_rejects_unknown_magic(self):
        with pytest.raises(CodecError, match="magic"):
            read_ppm_bytes(b"P9\n1 1\n255\n0")

    def test_rejects_truncated_binary(self):
        data = b"P5\n4 4\n255\n" + b"\x00" * 5
        with pytest.raises(CodecError, match="truncated"):
            read_ppm_bytes(data)

    def test_rejects_truncated_ascii(self):
        with pytest.raises(CodecError, match="truncated"):
            read_ppm_bytes(b"P2\n2 2\n255\n1 2 3")

    def test_rejects_bad_maxval(self):
        with pytest.raises(CodecError, match="maxval"):
            read_ppm_bytes(b"P2\n1 1\n0\n0")
        with pytest.raises(CodecError, match="maxval"):
            write_ppm_bytes(Image.zeros(1, 1), maxval=70000)

    def test_rejects_sample_above_maxval(self):
        with pytest.raises(CodecError, match="exceeds"):
            read_ppm_bytes(b"P2\n1 1\n100\n101")

    def test_rejects_negative_dimensions_token(self):
        with pytest.raises(CodecError, match="invalid header byte"):
            read_ppm_bytes(b"P2\n-1 1\n255\n0")

    def test_rejects_eof_in_header(self):
        with pytest.raises(CodecError, match="end of file"):
            read_ppm_bytes(b"P2\n2")


class TestBMP:
    def test_rgb_round_trip(self, rgb_bytes_image):
        data = write_bmp_bytes(rgb_bytes_image)
        assert read_bmp_bytes(data) == rgb_bytes_image

    def test_gray_written_as_rgb(self, gray_bytes_image):
        data = write_bmp_bytes(gray_bytes_image)
        out = read_bmp_bytes(data)
        assert out.mode == "rgb"
        assert out.to_gray().allclose(gray_bytes_image, atol=1e-9)

    def test_file_round_trip(self, tmp_path, rgb_bytes_image):
        path = tmp_path / "img.bmp"
        write_bmp(rgb_bytes_image, path)
        assert read_bmp(path) == rgb_bytes_image

    def test_row_padding_widths(self, rng):
        # Widths 1..5 exercise all 4-byte padding cases.
        for width in range(1, 6):
            img = Image.from_uint8(rng.integers(0, 256, (3, width, 3), dtype=np.uint8))
            assert read_bmp_bytes(write_bmp_bytes(img)) == img

    def test_magic(self, rgb_bytes_image):
        assert write_bmp_bytes(rgb_bytes_image).startswith(b"BM")

    def test_rejects_bad_magic(self):
        with pytest.raises(CodecError, match="not a BMP"):
            read_bmp_bytes(b"XX" + b"\x00" * 60)

    def test_rejects_short_data(self):
        with pytest.raises(CodecError, match="shorter"):
            read_bmp_bytes(b"BM\x00")

    def test_rejects_unsupported_bpp(self, rgb_bytes_image):
        data = bytearray(write_bmp_bytes(rgb_bytes_image))
        data[28] = 8  # bpp lives at offset 28
        with pytest.raises(CodecError, match="24-bit"):
            read_bmp_bytes(bytes(data))

    def test_rejects_compressed(self, rgb_bytes_image):
        data = bytearray(write_bmp_bytes(rgb_bytes_image))
        data[30] = 1  # compression field
        with pytest.raises(CodecError, match="uncompressed"):
            read_bmp_bytes(bytes(data))

    def test_rejects_truncated_payload(self, rgb_bytes_image):
        data = write_bmp_bytes(rgb_bytes_image)
        with pytest.raises(CodecError, match="truncated"):
            read_bmp_bytes(data[:-4])

    def test_top_down_bmp(self, rgb_bytes_image):
        # Flip the height sign and reorder rows: decoder must handle both.
        import struct

        data = bytearray(write_bmp_bytes(rgb_bytes_image))
        height = rgb_bytes_image.height
        struct.pack_into("<i", data, 22, -height)
        header_size = 14 + 40
        row_bytes = (rgb_bytes_image.width * 3 + 3) & ~3
        rows = [
            bytes(data[header_size + i * row_bytes : header_size + (i + 1) * row_bytes])
            for i in range(height)
        ]
        data[header_size:] = b"".join(reversed(rows))
        assert read_bmp_bytes(bytes(data)) == rgb_bytes_image


class TestCrossCodec:
    def test_ppm_and_bmp_agree(self, rgb_bytes_image):
        via_ppm = read_ppm_bytes(write_ppm_bytes(rgb_bytes_image))
        via_bmp = read_bmp_bytes(write_bmp_bytes(rgb_bytes_image))
        assert via_ppm == via_bmp
