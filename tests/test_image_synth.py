"""Tests for synthetic image generators."""

import numpy as np
import pytest

from repro.errors import ImageError
from repro.image import synth
from repro.image.color import rgb_to_gray


class TestSolidAndGradients:
    def test_solid_color(self):
        img = synth.solid(8, 6, (0.2, 0.4, 0.6))
        assert img.shape == (6, 8, 3)
        assert np.allclose(img.pixels, [0.2, 0.4, 0.6])

    def test_solid_rejects_out_of_range_color(self):
        with pytest.raises(ImageError, match=r"\[0, 1\]"):
            synth.solid(4, 4, (1.5, 0.0, 0.0))

    def test_linear_gradient_endpoints(self):
        img = synth.linear_gradient(16, 4, (0, 0, 0), (1, 1, 1), angle=0.0)
        assert np.allclose(img.pixels[:, 0], 0.0)
        assert np.allclose(img.pixels[:, -1], 1.0)

    def test_linear_gradient_vertical(self):
        img = synth.linear_gradient(4, 16, (0, 0, 0), (1, 1, 1), angle=np.pi / 2)
        assert np.allclose(img.pixels[0, :], 0.0)
        assert np.allclose(img.pixels[-1, :], 1.0)

    def test_radial_gradient_center_value(self):
        img = synth.radial_gradient(17, 17, (1, 0, 0), (0, 0, 1))
        assert np.allclose(img.pixels[8, 8], [1, 0, 0])
        assert img.pixels[0, 0, 2] > img.pixels[8, 8, 2]


class TestPatterns:
    def test_checkerboard_alternates(self):
        img = synth.checkerboard(8, 8, 2, 0.0, 1.0)
        gray = rgb_to_gray(img).pixels
        assert gray[0, 0] == pytest.approx(0.0)
        assert gray[0, 2] == pytest.approx(1.0)
        assert gray[2, 0] == pytest.approx(1.0)
        assert gray[2, 2] == pytest.approx(0.0)

    def test_checkerboard_rejects_bad_cell(self):
        with pytest.raises(ImageError):
            synth.checkerboard(8, 8, 0)

    def test_stripes_period(self):
        img = synth.stripes(16, 4, 4.0, angle=0.0, color_a=0.0, color_b=1.0)
        gray = rgb_to_gray(img).pixels
        # Period 4 with duty 0.5: two dark then two bright, repeating.
        assert np.allclose(gray[0, :8], [0, 0, 1, 1, 0, 0, 1, 1])

    def test_stripes_horizontal_bands(self):
        img = synth.stripes(4, 16, 8.0, angle=np.pi / 2)
        gray = rgb_to_gray(img).pixels
        # Rows are constant (bands run horizontally).
        assert np.allclose(gray.std(axis=1), 0.0)

    def test_stripes_validate(self):
        with pytest.raises(ImageError):
            synth.stripes(8, 8, 0.0)
        with pytest.raises(ImageError):
            synth.stripes(8, 8, 4.0, duty=1.0)


class TestNoise:
    def test_value_noise_smooth(self, rng):
        img = synth.value_noise(32, 32, rng, scale=8)
        horizontal_jumps = np.abs(np.diff(img.pixels, axis=1)).mean()
        assert horizontal_jumps < 0.1  # smooth by construction

    def test_value_noise_deterministic(self):
        a = synth.value_noise(16, 16, np.random.default_rng(3))
        b = synth.value_noise(16, 16, np.random.default_rng(3))
        assert a == b

    def test_value_noise_channels(self, rng):
        assert synth.value_noise(8, 8, rng, channels=3).mode == "rgb"
        with pytest.raises(ImageError):
            synth.value_noise(8, 8, rng, channels=2)

    def test_gaussian_noise_clipped(self, rng):
        img = synth.gaussian_noise_image(16, 16, rng, mean=0.5, std=3.0)
        assert img.pixels.min() >= 0.0
        assert img.pixels.max() <= 1.0


class TestShapes:
    def test_disk_center_painted(self):
        base = synth.solid(16, 16, (0, 0, 0))
        img = synth.draw_disk(base, (8, 8), 4, (1, 0, 0))
        assert np.allclose(img.pixels[8, 8], [1, 0, 0])
        assert np.allclose(img.pixels[0, 0], [0, 0, 0])

    def test_disk_area_close_to_circle(self):
        base = synth.solid(64, 64, (0, 0, 0))
        img = synth.draw_disk(base, (32, 32), 10, (1, 1, 1))
        area = (img.pixels[:, :, 0] > 0).sum()
        assert area == pytest.approx(np.pi * 100, rel=0.1)

    def test_disk_does_not_mutate_input(self):
        base = synth.solid(8, 8, (0, 0, 0))
        synth.draw_disk(base, (4, 4), 2, (1, 1, 1))
        assert np.allclose(base.pixels, 0.0)

    def test_rectangle(self):
        base = synth.solid(16, 16, (0, 0, 0))
        img = synth.draw_rectangle(base, (2, 3), (6, 9), (0, 1, 0))
        assert np.allclose(img.pixels[3, 2], [0, 1, 0])
        assert np.allclose(img.pixels[9, 6], [0, 1, 0])
        assert np.allclose(img.pixels[10, 7], [0, 0, 0])

    def test_rectangle_validates_corners(self):
        base = synth.solid(8, 8, (0, 0, 0))
        with pytest.raises(ImageError):
            synth.draw_rectangle(base, (5, 5), (2, 2), (1, 1, 1))

    def test_triangle_contains_centroid(self):
        base = synth.solid(32, 32, (0, 0, 0))
        vertices = [(4.0, 4.0), (28.0, 6.0), (14.0, 28.0)]
        img = synth.draw_triangle(base, vertices, (0, 0, 1))
        cx = int(sum(v[0] for v in vertices) / 3)
        cy = int(sum(v[1] for v in vertices) / 3)
        assert np.allclose(img.pixels[cy, cx], [0, 0, 1])

    def test_triangle_winding_order_irrelevant(self):
        base = synth.solid(16, 16, (0, 0, 0))
        vertices = [(2.0, 2.0), (13.0, 3.0), (7.0, 13.0)]
        a = synth.draw_triangle(base, vertices, (1, 1, 1))
        b = synth.draw_triangle(base, list(reversed(vertices)), (1, 1, 1))
        assert a == b


class TestScene:
    def test_scene_deterministic_given_seed(self):
        a = synth.compose_scene(32, 32, np.random.default_rng(9))
        b = synth.compose_scene(32, 32, np.random.default_rng(9))
        assert a == b

    def test_scene_differs_across_seeds(self):
        a = synth.compose_scene(32, 32, np.random.default_rng(1))
        b = synth.compose_scene(32, 32, np.random.default_rng(2))
        assert a != b

    def test_scene_respects_background(self, rng):
        background = synth.solid(32, 32, (0, 0, 0))
        img = synth.compose_scene(32, 32, rng, background=background, n_shapes=1)
        # Most of the canvas keeps the background color.
        dark = np.all(img.pixels < 0.01, axis=2).mean()
        assert dark > 0.5

    def test_scene_validates_background_size(self, rng):
        with pytest.raises(ImageError, match="background size"):
            synth.compose_scene(32, 32, rng, background=synth.solid(16, 16, 0.5))

    def test_scene_rejects_unknown_shape(self, rng):
        with pytest.raises(ImageError, match="shape"):
            synth.compose_scene(32, 32, rng, shape_kinds=("hexagon",))
