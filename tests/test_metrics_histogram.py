"""Tests for histogram dissimilarities (intersection, chi-square, Bhattacharyya)."""

import numpy as np
import pytest

from repro.errors import MetricError
from repro.features.base import l1_normalize
from repro.metrics.histogram import (
    BhattacharyyaDistance,
    ChiSquareDistance,
    HistogramIntersection,
)


def _random_histogram(rng, dim=16):
    return l1_normalize(rng.random(dim))


class TestHistogramIntersection:
    def test_identical_histograms_distance_zero(self, rng):
        h = _random_histogram(rng)
        assert HistogramIntersection().distance(h, h) == pytest.approx(0.0)

    def test_disjoint_histograms_distance_one(self):
        h = np.array([1.0, 0.0, 0.0, 0.0])
        g = np.array([0.0, 0.0, 1.0, 0.0])
        assert HistogramIntersection().distance(h, g) == pytest.approx(1.0)

    def test_equals_half_l1_on_normalized(self, rng):
        h, g = _random_histogram(rng), _random_histogram(rng)
        expected = 0.5 * np.abs(h - g).sum()
        assert HistogramIntersection().distance(h, g) == pytest.approx(expected)

    def test_normalizes_by_smaller_mass(self):
        # g is h at double mass: intersection covers all of h.
        h = np.array([0.2, 0.3, 0.5])
        g = 2.0 * h
        assert HistogramIntersection().distance(h, g) == pytest.approx(0.0)

    def test_background_suppression(self):
        # Colors absent from the query contribute nothing: adding a large
        # background-only bin to g does not change the distance to h.
        h = np.array([0.5, 0.5, 0.0])
        g1 = np.array([0.5, 0.5, 0.0])
        g2 = np.array([0.5, 0.5, 5.0])
        metric = HistogramIntersection()
        assert metric.distance(h, g1) == pytest.approx(metric.distance(h, g2))

    def test_empty_histograms(self):
        metric = HistogramIntersection()
        zeros = np.zeros(4)
        assert metric.distance(zeros, zeros) == 0.0
        assert metric.distance(zeros, np.array([1.0, 0, 0, 0])) == 1.0

    def test_rejects_negative_entries(self):
        with pytest.raises(MetricError, match="non-negative"):
            HistogramIntersection().distance([-0.1, 1.1], [0.5, 0.5])

    def test_triangle_inequality_on_normalized(self, rng):
        metric = HistogramIntersection()
        for _ in range(25):
            h, g, f = (_random_histogram(rng) for _ in range(3))
            assert metric.distance(h, f) <= metric.distance(h, g) + metric.distance(g, f) + 1e-12


class TestChiSquare:
    def test_identity(self, rng):
        h = _random_histogram(rng)
        assert ChiSquareDistance().distance(h, h) == pytest.approx(0.0)

    def test_symmetry(self, rng):
        h, g = _random_histogram(rng), _random_histogram(rng)
        metric = ChiSquareDistance()
        assert metric.distance(h, g) == pytest.approx(metric.distance(g, h))

    def test_flagged_non_metric(self):
        assert not ChiSquareDistance().is_metric

    def test_known_value(self):
        h = np.array([1.0, 0.0])
        g = np.array([0.0, 1.0])
        # 0.5 * (1/1 + 1/1) = 1.0
        assert ChiSquareDistance().distance(h, g) == pytest.approx(1.0)

    def test_empty_bins_skipped(self):
        h = np.array([0.0, 1.0, 0.0])
        g = np.array([0.0, 1.0, 0.0])
        assert ChiSquareDistance().distance(h, g) == 0.0

    def test_both_zero(self):
        assert ChiSquareDistance().distance(np.zeros(3), np.zeros(3)) == 0.0


class TestBhattacharyya:
    def test_identity(self, rng):
        h = _random_histogram(rng)
        assert BhattacharyyaDistance().distance(h, h) == pytest.approx(0.0, abs=1e-7)

    def test_disjoint_is_quarter_turn(self):
        h = np.array([1.0, 0.0])
        g = np.array([0.0, 1.0])
        assert BhattacharyyaDistance().distance(h, g) == pytest.approx(np.pi / 2)

    def test_scale_invariance(self, rng):
        h, g = _random_histogram(rng), _random_histogram(rng)
        metric = BhattacharyyaDistance()
        assert metric.distance(h, g) == pytest.approx(metric.distance(3.0 * h, g))

    def test_triangle_inequality(self, rng):
        metric = BhattacharyyaDistance()
        for _ in range(25):
            h, g, f = (_random_histogram(rng) for _ in range(3))
            assert metric.distance(h, f) <= metric.distance(h, g) + metric.distance(g, f) + 1e-9

    def test_bounded_by_quarter_turn(self, rng):
        metric = BhattacharyyaDistance()
        h, g = _random_histogram(rng), _random_histogram(rng)
        assert 0.0 <= metric.distance(h, g) <= np.pi / 2 + 1e-12

    def test_rejects_negative(self):
        with pytest.raises(MetricError):
            BhattacharyyaDistance().distance([-0.5, 1.5], [0.5, 0.5])
