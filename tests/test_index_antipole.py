"""Tests for the Antipole tree."""

import numpy as np
import pytest

from repro.errors import IndexingError
from repro.index.antipole import AntipoleTree
from repro.index.linear import LinearScanIndex
from repro.metrics.base import CountingMetric
from repro.metrics.histogram import ChiSquareDistance
from repro.metrics.minkowski import EuclideanDistance


def _build_pair(rng, n=150, dim=3, **kwargs):
    metric = EuclideanDistance()
    vectors = rng.random((n, dim))
    ids = list(range(n))
    linear = LinearScanIndex(metric).build(ids, vectors)
    tree = AntipoleTree(metric, **kwargs).build(ids, vectors)
    return linear, tree, vectors


class TestExactness:
    @pytest.mark.parametrize("dim", [1, 2, 4, 8])
    def test_knn_matches_linear_scan(self, rng, dim):
        linear, tree, _ = _build_pair(rng, dim=dim)
        for _ in range(10):
            query = rng.random(dim)
            expected = [n.distance for n in linear.knn_search(query, 8)]
            got = [n.distance for n in tree.knn_search(query, 8)]
            assert np.allclose(got, expected)

    @pytest.mark.parametrize("radius", [0.0, 0.1, 0.3, 1.0])
    def test_range_matches_linear_scan(self, rng, radius):
        linear, tree, _ = _build_pair(rng)
        for _ in range(5):
            query = rng.random(3)
            expected = {n.id for n in linear.range_search(query, radius)}
            assert {n.id for n in tree.range_search(query, radius)} == expected

    def test_no_duplicate_results(self, rng):
        _, tree, _ = _build_pair(rng)
        result = tree.range_search(rng.random(3), 5.0)  # everything
        ids = [n.id for n in result]
        assert len(ids) == len(set(ids)) == tree.size

    def test_explicit_threshold(self, rng):
        linear, tree, _ = _build_pair(rng, diameter_threshold=0.2)
        assert tree.effective_diameter_threshold == 0.2
        query = rng.random(3)
        assert [n.id for n in tree.knn_search(query, 5)] == [
            n.id for n in linear.knn_search(query, 5)
        ]

    def test_tiny_threshold_still_exact(self, rng):
        # Degenerate case: every cluster is near-singleton.
        linear, tree, _ = _build_pair(rng, n=80, diameter_threshold=1e-6)
        query = rng.random(3)
        assert [n.id for n in tree.knn_search(query, 5)] == [
            n.id for n in linear.knn_search(query, 5)
        ]

    def test_huge_threshold_one_cluster(self, rng):
        # Opposite degenerate case: the whole set is one leaf cluster.
        linear, tree, _ = _build_pair(rng, n=80, diameter_threshold=100.0)
        assert tree.build_stats.n_leaves == 1
        query = rng.random(3)
        assert [n.id for n in tree.knn_search(query, 5)] == [
            n.id for n in linear.knn_search(query, 5)
        ]

    def test_duplicate_vectors(self):
        vectors = np.zeros((15, 3))
        tree = AntipoleTree(EuclideanDistance()).build(list(range(15)), vectors)
        assert len(tree.range_search(np.zeros(3), 0.0)) == 15

    def test_single_item(self):
        tree = AntipoleTree(EuclideanDistance()).build([9], np.array([[0.5, 0.5]]))
        assert tree.knn_search(np.zeros(2), 1)[0].id == 9


class TestAccounting:
    def test_distance_counts_match_counting_metric(self, rng):
        counter = CountingMetric(EuclideanDistance())
        vectors = rng.random((200, 3))
        tree = AntipoleTree(counter).build(list(range(200)), vectors)
        counter.reset()
        tree.knn_search(rng.random(3), 5)
        assert counter.count == tree.last_stats.distance_computations
        counter.reset()
        tree.range_search(rng.random(3), 0.2)
        assert counter.count == tree.last_stats.distance_computations

    def test_cached_distance_exclusion_saves_work(self, rng):
        # Clustered data with a tight query: cluster-level pruning should
        # cut distance computations well below n.
        from repro.eval.datasets import gaussian_clusters

        vectors, _ = gaussian_clusters(400, 4, n_clusters=8, cluster_std=0.02, seed=1)
        tree = AntipoleTree(EuclideanDistance()).build(list(range(400)), vectors)
        tree.range_search(vectors[0], 0.05)
        assert tree.last_stats.distance_computations < 400

    def test_build_stats(self, rng):
        _, tree, _ = _build_pair(rng, n=200)
        assert tree.build_stats.n_leaves >= 1
        assert tree.build_stats.distance_computations > 0


class TestIdsOnlyRangeSearch:
    def test_same_id_set_as_exact(self, rng):
        linear, tree, _ = _build_pair(rng)
        for radius in (0.1, 0.3, 0.8):
            query = rng.random(3)
            expected = {n.id for n in linear.range_search(query, radius)}
            assert set(tree.range_search_ids(query, radius)) == expected

    def test_wholesale_inclusion_can_skip_computations(self, rng):
        from repro.eval.datasets import gaussian_clusters

        vectors, _ = gaussian_clusters(300, 3, n_clusters=5, cluster_std=0.02, seed=2)
        tree = AntipoleTree(EuclideanDistance()).build(list(range(300)), vectors)
        query = vectors[0]
        radius = 0.3  # large enough to swallow whole clusters

        exact_result = tree.range_search(query, radius)
        exact_cost = tree.last_stats.distance_computations
        ids = tree.range_search_ids(query, radius)
        ids_cost = tree.last_stats.distance_computations
        wholesale = tree.last_stats.items_included_wholesale

        assert set(ids) == {n.id for n in exact_result}
        if wholesale > 0:
            assert ids_cost < exact_cost

    def test_validates_radius(self, rng):
        _, tree, _ = _build_pair(rng)
        with pytest.raises(IndexingError):
            tree.range_search_ids(rng.random(3), -1.0)


class TestConfiguration:
    def test_rejects_non_metric(self):
        with pytest.raises(IndexingError, match="triangle"):
            AntipoleTree(ChiSquareDistance())

    def test_validates_parameters(self):
        metric = EuclideanDistance()
        with pytest.raises(IndexingError):
            AntipoleTree(metric, diameter_threshold=-1.0)
        with pytest.raises(IndexingError):
            AntipoleTree(metric, diameter_fraction=0.0)
        with pytest.raises(IndexingError):
            AntipoleTree(metric, tournament_size=1)
        with pytest.raises(IndexingError):
            AntipoleTree(metric, tournament_size=5, final_round_size=4)

    def test_threshold_unavailable_before_build(self):
        tree = AntipoleTree(EuclideanDistance())
        with pytest.raises(IndexingError, match="not been built"):
            _ = tree.effective_diameter_threshold

    def test_derived_threshold_is_fraction_of_diameter(self, rng):
        vectors = rng.random((100, 2))
        tree = AntipoleTree(EuclideanDistance(), diameter_fraction=0.3).build(
            list(range(100)), vectors
        )
        true_diameter = 0.0
        for i in range(100):
            deltas = vectors - vectors[i]
            true_diameter = max(true_diameter, float(np.linalg.norm(deltas, axis=1).max()))
        threshold = tree.effective_diameter_threshold
        # Approximate antipole under-estimates, never exceeds the true
        # diameter; it should land in a sane band below it.
        assert 0.3 * 0.5 * true_diameter <= threshold <= 0.3 * true_diameter + 1e-9

    def test_deterministic_given_seed(self, rng):
        vectors = rng.random((100, 3))
        ids = list(range(100))
        a = AntipoleTree(EuclideanDistance(), seed=3).build(ids, vectors)
        b = AntipoleTree(EuclideanDistance(), seed=3).build(ids, vectors)
        query = rng.random(3)
        a.knn_search(query, 5)
        b.knn_search(query, 5)
        assert a.last_stats.distance_computations == b.last_stats.distance_computations
