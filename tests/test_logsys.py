"""StructuredLog: JSON-lines shape, sampling determinism, rate limiting.

The two pressure valves are tested with an injectable clock so nothing
here sleeps: sampling is a deterministic 1-in-N round-robin (a test can
predict which events survive), and rate limiting is a fixed one-second
window whose drops are counted and surfaced as ``"dropped": n`` on the
next emitted line — a visible gap, never a silent one.
"""

import io
import json

import pytest

from repro.errors import ServeError
from repro.serve.logsys import StructuredLog


class _FakeClock:
    def __init__(self, start: float = 1000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now


def _lines(stream: io.StringIO) -> list[dict]:
    return [json.loads(line) for line in stream.getvalue().splitlines()]


class TestShape:
    def test_one_json_object_per_line(self):
        stream = io.StringIO()
        log = StructuredLog(stream, rate_limit_per_s=None)
        assert log.event("alpha", path="/query", status=200)
        assert log.event("beta", latency_ms=1.5)
        lines = _lines(stream)
        assert [l["event"] for l in lines] == ["alpha", "beta"]
        assert lines[0]["path"] == "/query" and lines[0]["status"] == 200
        assert all("ts" in l for l in lines)

    def test_non_json_values_stringified(self):
        stream = io.StringIO()
        log = StructuredLog(stream, rate_limit_per_s=None)
        log.event("odd", payload={1, 2}.__class__)  # a type object
        assert "odd" in stream.getvalue()  # did not raise, line written

    def test_closed_stream_never_raises(self):
        stream = io.StringIO()
        log = StructuredLog(stream, rate_limit_per_s=None)
        stream.close()
        assert log.event("into-the-void")  # swallowed, not raised


class TestSampling:
    def test_one_in_n_is_deterministic(self):
        stream = io.StringIO()
        log = StructuredLog(stream, sample_every=3, rate_limit_per_s=None)
        outcomes = [log.event("e", index=i) for i in range(9)]
        # Every 3rd seen event survives: indices 2, 5, 8.
        assert outcomes == [False, False, True] * 3
        assert [l["index"] for l in _lines(stream)] == [2, 5, 8]
        assert log.emitted == 3
        assert log.sampled_out == 6

    def test_force_bypasses_sampling(self):
        stream = io.StringIO()
        log = StructuredLog(stream, sample_every=100, rate_limit_per_s=None)
        assert log.event("must-emit", force=True)
        assert log.emitted == 1


class TestRateLimiting:
    def test_window_budget_and_dropped_report(self):
        stream = io.StringIO()
        clock = _FakeClock()
        log = StructuredLog(stream, rate_limit_per_s=2.0, clock=clock)
        assert log.event("a")
        assert log.event("b")
        assert not log.event("c")  # budget spent
        assert not log.event("d")
        assert log.rate_dropped == 2
        clock.now += 1.5  # new window
        assert log.event("e")
        lines = _lines(stream)
        # The first line of the new window carries the gap.
        assert lines[-1]["event"] == "e"
        assert lines[-1]["dropped"] == 2
        assert "dropped" not in lines[0]

    def test_force_bypasses_rate_limit(self):
        stream = io.StringIO()
        clock = _FakeClock()
        log = StructuredLog(stream, rate_limit_per_s=1.0, clock=clock)
        assert log.event("a")
        assert not log.event("b")
        assert log.event("shutdown", force=True)
        assert log.emitted == 2

    def test_none_disables_limiting(self):
        stream = io.StringIO()
        clock = _FakeClock()
        log = StructuredLog(stream, rate_limit_per_s=None, clock=clock)
        assert all(log.event("e") for _ in range(500))
        assert log.rate_dropped == 0


class TestValidation:
    def test_bad_sample_every(self):
        with pytest.raises(ServeError, match="sample_every"):
            StructuredLog(io.StringIO(), sample_every=0)

    def test_bad_rate_limit(self):
        with pytest.raises(ServeError, match="rate_limit_per_s"):
            StructuredLog(io.StringIO(), rate_limit_per_s=0.0)

    def test_repr_counters(self):
        log = StructuredLog(io.StringIO(), sample_every=2, rate_limit_per_s=None)
        log.event("a")
        log.event("b")
        assert "emitted=1" in repr(log)
        assert "sampled_out=1" in repr(log)
