"""Selective cache revalidation: check-on-hit must equal a fresh query.

ISSUE 9 tentpole (c): a generation-mismatched cache entry is no longer
evicted unconditionally — the scheduler first tries to *prove* it
unchanged from the engine's bounded mutation delta log (every inserted
item strictly after the kth result under ``(distance, id)``, no cached
result id removed; range: no insert inside the closed ball).  These
tests drive the adversarial boundaries:

* an insert **exactly at the kth distance** — the ``(distance, id)``
  tie-break decides, and the allocator's monotonically increasing ids
  mean the newcomer loses the tie and the entry revalidates;
* an insert strictly inside the kth distance — must invalidate;
* a cached result id removed — must invalidate; a non-result id
  removed — revalidates;
* range inserts exactly on the closed ball boundary — must invalidate
  (``distance <= radius`` is reported);
* sharded tuple stamps — per-shard generation movement, same proofs;
* delta-window overflow / unknown ranges — must refuse to prove
  (``None`` → invalidate), never guess;
* a randomized end-to-end stream where **every** served result is
  compared against a fresh build over the live item set — zero stale
  serves, by construction.

Distances are engineered exact-in-float64 (integer coordinates on unit
axes), so "exactly at the kth distance" means bitwise equality, not
approximately.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.db.database import ImageDatabase
from repro.features.base import PresetSignature
from repro.features.pipeline import FeatureSchema
from repro.index import LinearScanIndex, VPTree
from repro.metrics.minkowski import EuclideanDistance
from repro.serve import QueryScheduler
from repro.serve.cache import CacheCounters, MutationDeltaLog, ResultCache

DIM = 4


def _axis_vector(axis: int, scale: float) -> np.ndarray:
    vector = np.zeros(DIM)
    vector[axis] = scale
    return vector


def _make_db(vectors, factory=None):
    db = ImageDatabase(
        FeatureSchema([PresetSignature(DIM, "sig")]),
        index_factory=factory or (lambda metric: VPTree(metric, leaf_size=4)),
    )
    db.add_vectors(np.asarray(vectors, dtype=np.float64))
    db.build_indexes()
    return db


def _pairs(results):
    return [(r.image_id, r.distance) for r in results]


@pytest.fixture
def ladder_scheduler():
    """Items at exact distances 1..5 from the origin (ids 0..4)."""
    db = _make_db([_axis_vector(0, float(i)) for i in range(1, 6)])
    scheduler = QueryScheduler(db, max_batch=4)
    yield db, scheduler
    scheduler.close()


class TestKnnRevalidationBoundaries:
    def test_insert_exactly_at_kth_distance_revalidates(self, ladder_scheduler):
        db, scheduler = ladder_scheduler
        query = np.zeros(DIM)
        first = scheduler.submit_query(query, 3).result(timeout=10)
        assert _pairs(first.results) == [(0, 1.0), (1, 2.0), (2, 3.0)]

        # New item at distance exactly 3.0 — ties the kth result.  Its
        # id (5) is larger than the kth's (2), so under the engine's
        # (distance, id) ordering it ranks strictly after: provably
        # outside the top-3, entry revalidates.
        scheduler.submit_add(_axis_vector(1, 3.0)[None, :]).result(timeout=10)
        served = scheduler.submit_query(query, 3).result(timeout=10)
        assert served.cache_hit
        assert scheduler.cache.revalidations == 1
        assert _pairs(served.results) == _pairs(first.results)
        assert _pairs(served.results) == _pairs(db.query(query, 3))

    def test_insert_strictly_inside_kth_distance_invalidates(
        self, ladder_scheduler
    ):
        db, scheduler = ladder_scheduler
        query = np.zeros(DIM)
        scheduler.submit_query(query, 3).result(timeout=10)

        added = scheduler.submit_add(_axis_vector(1, 2.5)[None, :]).result(
            timeout=10
        )
        served = scheduler.submit_query(query, 3).result(timeout=10)
        assert not served.cache_hit
        assert scheduler.cache.invalidations == 1
        assert scheduler.cache.revalidations == 0
        assert _pairs(served.results) == [
            (0, 1.0),
            (1, 2.0),
            (added.ids[0], 2.5),
        ]
        assert _pairs(served.results) == _pairs(db.query(query, 3))

    def test_removing_a_cached_result_id_invalidates(self, ladder_scheduler):
        db, scheduler = ladder_scheduler
        query = np.zeros(DIM)
        scheduler.submit_query(query, 3).result(timeout=10)

        scheduler.submit_remove([1]).result(timeout=10)  # the 2.0 result
        served = scheduler.submit_query(query, 3).result(timeout=10)
        assert not served.cache_hit
        assert scheduler.cache.invalidations == 1
        assert _pairs(served.results) == [(0, 1.0), (2, 3.0), (3, 4.0)]
        assert _pairs(served.results) == _pairs(db.query(query, 3))

    def test_removing_a_non_result_id_revalidates(self, ladder_scheduler):
        db, scheduler = ladder_scheduler
        query = np.zeros(DIM)
        first = scheduler.submit_query(query, 3).result(timeout=10)

        scheduler.submit_remove([4]).result(timeout=10)  # distance 5.0
        served = scheduler.submit_query(query, 3).result(timeout=10)
        assert served.cache_hit
        assert scheduler.cache.revalidations == 1
        assert _pairs(served.results) == _pairs(first.results)
        assert _pairs(served.results) == _pairs(db.query(query, 3))

    def test_short_knn_list_never_revalidates_after_insert(self):
        # k exceeds the corpus: any insert could extend the cached list,
        # so the proof must refuse even for a "far" insert.
        db = _make_db([_axis_vector(0, 1.0), _axis_vector(0, 2.0)])
        scheduler = QueryScheduler(db, max_batch=4)
        try:
            query = np.zeros(DIM)
            first = scheduler.submit_query(query, 5).result(timeout=10)
            assert len(first.results) == 2
            scheduler.submit_add(_axis_vector(1, 50.0)[None, :]).result(
                timeout=10
            )
            served = scheduler.submit_query(query, 5).result(timeout=10)
            assert not served.cache_hit
            assert scheduler.cache.invalidations == 1
            assert len(served.results) == 3
            assert _pairs(served.results) == _pairs(db.query(query, 5))
        finally:
            scheduler.close()


class TestRangeRevalidationBoundaries:
    def test_insert_on_closed_ball_boundary_invalidates(self, ladder_scheduler):
        db, scheduler = ladder_scheduler
        query = np.zeros(DIM)
        first = scheduler.submit_range(query, 3.0).result(timeout=10)
        assert _pairs(first.results) == [(0, 1.0), (1, 2.0), (2, 3.0)]

        # Exactly on the boundary: range semantics are a closed ball
        # (distance <= radius reports), so the entry genuinely changed.
        added = scheduler.submit_add(_axis_vector(1, 3.0)[None, :]).result(
            timeout=10
        )
        served = scheduler.submit_range(query, 3.0).result(timeout=10)
        assert not served.cache_hit
        assert scheduler.cache.invalidations == 1
        assert (added.ids[0], 3.0) in _pairs(served.results)
        assert _pairs(served.results) == _pairs(db.range_query(query, 3.0))

    def test_insert_outside_ball_revalidates(self, ladder_scheduler):
        db, scheduler = ladder_scheduler
        query = np.zeros(DIM)
        first = scheduler.submit_range(query, 3.0).result(timeout=10)

        scheduler.submit_add(_axis_vector(1, 4.0)[None, :]).result(timeout=10)
        served = scheduler.submit_range(query, 3.0).result(timeout=10)
        assert served.cache_hit
        assert scheduler.cache.revalidations == 1
        assert _pairs(served.results) == _pairs(first.results)
        assert _pairs(served.results) == _pairs(db.range_query(query, 3.0))


class TestShardedTupleStamps:
    def test_single_shard_mutation_revalidates_under_tuple_stamps(self, rng):
        db = _make_db([_axis_vector(0, float(i)) for i in range(1, 6)])
        scheduler = QueryScheduler(db, max_batch=4, shards=2)
        try:
            query = np.zeros(DIM)
            first = scheduler.submit_query(query, 3).result(timeout=10)
            before = scheduler.generations()["sig"]
            assert isinstance(before, tuple) and len(before) == 2

            # One far insert routes to exactly one shard: the tuple stamp
            # moves in one slot, and the proof must still succeed.
            scheduler.submit_add(_axis_vector(1, 50.0)[None, :]).result(
                timeout=10
            )
            after = scheduler.generations()["sig"]
            assert sum(a != b for a, b in zip(before, after)) == 1

            served = scheduler.submit_query(query, 3).result(timeout=10)
            assert served.cache_hit
            assert scheduler.cache.revalidations == 1
            assert _pairs(served.results) == _pairs(first.results)
        finally:
            scheduler.close()

    def test_near_insert_invalidates_under_tuple_stamps(self):
        db = _make_db([_axis_vector(0, float(i)) for i in range(1, 6)])
        scheduler = QueryScheduler(db, max_batch=4, shards=2)
        try:
            query = np.zeros(DIM)
            scheduler.submit_query(query, 3).result(timeout=10)
            added = scheduler.submit_add(
                _axis_vector(1, 0.5)[None, :]
            ).result(timeout=10)
            served = scheduler.submit_query(query, 3).result(timeout=10)
            assert not served.cache_hit
            assert scheduler.cache.invalidations == 1
            assert _pairs(served.results)[0] == (added.ids[0], 0.5)
        finally:
            scheduler.close()

    def test_mutations_on_both_shards_still_prove(self):
        db = _make_db([_axis_vector(0, float(i)) for i in range(1, 6)])
        scheduler = QueryScheduler(db, max_batch=4, shards=2)
        try:
            query = np.zeros(DIM)
            first = scheduler.submit_query(query, 3).result(timeout=10)
            # Two single-row adds land on different shards (sequential
            # ids, modulo routing): both tuple slots move.
            scheduler.submit_add(_axis_vector(1, 40.0)[None, :]).result(
                timeout=10
            )
            scheduler.submit_add(_axis_vector(2, 41.0)[None, :]).result(
                timeout=10
            )
            served = scheduler.submit_query(query, 3).result(timeout=10)
            assert served.cache_hit
            assert scheduler.cache.revalidations == 1
            assert _pairs(served.results) == _pairs(first.results)
        finally:
            scheduler.close()


class TestDeltaLogBounds:
    def test_between_refuses_ranges_outside_window(self):
        log = MutationDeltaLog(window=3)
        for generation in range(1, 8):
            log.record_remove("key", generation, [generation])
        # Only generations 5..7 survive the window of 3.
        assert log.between("key", 4, 7) is not None
        assert log.between("key", 3, 7) is None  # gen 4 was dropped
        assert log.between("key", 0, 2) is None
        assert log.between("key", 7, 7) is None  # non-advancing
        assert log.between("key", 7, 5) is None
        assert log.between("missing", 4, 5) is None
        assert log.between("key", (1,), (2,)) is None  # non-int stamps

    def test_window_overflow_degrades_to_invalidation(self):
        db = _make_db([_axis_vector(0, float(i)) for i in range(1, 6)])
        scheduler = QueryScheduler(db, max_batch=4)
        try:
            window = scheduler.engine.delta_log.window
            query = np.zeros(DIM)
            scheduler.submit_query(query, 3).result(timeout=10)
            # Push the entry's generation past the retained window with
            # far inserts that would each individually revalidate.
            for step in range(window + 2):
                scheduler.submit_add(
                    _axis_vector(1, 100.0 + step)[None, :]
                ).result(timeout=10)
            served = scheduler.submit_query(query, 3).result(timeout=10)
            assert not served.cache_hit  # unprovable, safely evicted
            assert scheduler.cache.invalidations == 1
            assert _pairs(served.results) == _pairs(db.query(query, 3))
        finally:
            scheduler.close()


class TestResultCachePrimitives:
    def test_counters_snapshot_is_single_lock(self):
        cache = ResultCache(8)
        key = cache.key("knn", "sig", 3, np.zeros(DIM))
        assert cache.get(key, 0) is None
        cache.put(key, [], 0)
        assert cache.get(key, 0) == []
        counters = cache.counters()
        assert isinstance(counters, CacheCounters)
        assert counters == CacheCounters(1, 1, 0, 0)
        assert counters.hit_rate == 0.5

    def test_revalidator_verdict_re_stamps_entry(self):
        cache = ResultCache(8)
        key = cache.key("knn", "sig", 3, np.zeros(DIM))
        cache.put(key, [], 1)
        seen = []

        def confirm(stored, results):
            seen.append((stored, results))
            return True

        assert cache.get(key, 2, revalidator=confirm) == []
        assert seen == [(1, [])]
        assert cache.counters() == CacheCounters(1, 0, 0, 1)
        # Re-stamped: the next lookup at generation 2 is a plain hit.
        assert cache.get(key, 2) == []
        assert cache.counters() == CacheCounters(2, 0, 0, 1)

    def test_revalidator_rejection_evicts(self):
        cache = ResultCache(8)
        key = cache.key("knn", "sig", 3, np.zeros(DIM))
        cache.put(key, [], 1)
        assert cache.get(key, 2, revalidator=lambda *_: False) is None
        assert cache.counters() == CacheCounters(0, 1, 1, 0)
        assert len(cache) == 0

    def test_revalidator_not_consulted_on_fresh_stamp(self):
        cache = ResultCache(8)
        key = cache.key("knn", "sig", 3, np.zeros(DIM))
        cache.put(key, [], 7)

        def explode(*_):
            raise AssertionError("fresh entries must not be revalidated")

        assert cache.get(key, 7, revalidator=explode) == []

    def test_raced_replacement_during_revalidation_is_plain_miss(self):
        cache = ResultCache(8)
        key = cache.key("knn", "sig", 3, np.zeros(DIM))
        cache.put(key, [], 1)

        def replace_then_confirm(stored, results):
            cache.put(key, [], 5)  # another thread replaced the entry
            return True

        assert cache.get(key, 2, revalidator=replace_then_confirm) is None
        counters = cache.counters()
        assert counters.revalidations == 0 and counters.invalidations == 0
        # The replacement entry survives untouched.
        assert cache.get(key, 5) == []


class TestZeroStaleServes:
    def test_randomized_stream_every_serve_matches_fresh_build(self, rng):
        n = 20
        vectors = rng.random((n, DIM))
        table = {i: vectors[i] for i in range(n)}
        db = _make_db(vectors, factory=lambda metric: LinearScanIndex(metric))
        scheduler = QueryScheduler(db, max_batch=4)
        try:
            pool = rng.random((3, DIM))
            for _ in range(40):
                roll = rng.random()
                if roll < 0.45:
                    block = rng.random((int(rng.integers(1, 3)), DIM))
                    added = scheduler.submit_add(block).result(timeout=10)
                    for image_id, row in zip(added.ids, block):
                        table[image_id] = row
                elif roll < 0.65 and len(table) > 8:
                    doomed = [
                        int(i)
                        for i in rng.choice(
                            sorted(table), size=2, replace=False
                        )
                    ]
                    scheduler.submit_remove(doomed).result(timeout=10)
                    for image_id in doomed:
                        del table[image_id]
                pick = int(rng.integers(3))
                served = scheduler.submit_query(pool[pick], 5).result(
                    timeout=10
                )
                ids = sorted(table)
                oracle = LinearScanIndex(EuclideanDistance()).build(
                    ids, np.stack([table[i] for i in ids])
                )
                assert _pairs(served.results) == [
                    (nb.id, nb.distance)
                    for nb in oracle.knn_search(pool[pick], 5)
                ]
            counters = scheduler.cache.counters()
            assert counters.hits + counters.misses > 0
        finally:
            scheduler.close()
