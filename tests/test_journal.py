"""Unit tests for the write-ahead journal (``repro.db.journal``).

The codec and file format are the foundation of the durability
contract: these tests pin the record round trip bit-for-bit, the
torn-tail semantics (stop at the first bad CRC, truncate on reopen,
never replay), the fingerprint gate, and the shared-sequence bookkeeping
of :class:`JournalSet`.
"""

from __future__ import annotations

import struct

import numpy as np
import pytest

from repro.db.journal import (
    FORMAT_VERSION,
    Journal,
    JournalRecord,
    JournalSet,
    decode_payload,
    encode_record,
    fingerprint_of,
)
from repro.errors import JournalError

FP = fingerprint_of({"sig": 4}, {"sig": "l2"})
_PREFIX = struct.Struct("<II")


def _payload(record: JournalRecord) -> bytes:
    return encode_record(record)[_PREFIX.size :]


class TestCodec:
    def test_add_roundtrip_bit_identical(self, rng):
        matrix = rng.random((3, 4))
        record = JournalRecord.add(
            7, [10, 11, 12], {"sig": matrix}, ["a", None, "c"], ["x", "y", "z"]
        )
        decoded = decode_payload(_payload(record))
        assert decoded.op == "add" and decoded.seq == 7
        assert decoded.ids == (10, 11, 12)
        assert decoded.labels == ("a", None, "c")
        assert decoded.names == ("x", "y", "z")
        assert decoded.matrices["sig"].tobytes() == matrix.tobytes()

    def test_remove_and_abort_roundtrip(self):
        remove = decode_payload(_payload(JournalRecord.remove(3, [5, 1])))
        assert (remove.op, remove.seq, remove.ids) == ("remove", 3, (5, 1))
        abort = decode_payload(_payload(JournalRecord.abort(9)))
        assert (abort.op, abort.seq) == ("abort", 9)

    def test_fingerprint_roundtrip(self):
        record = JournalRecord(op="fingerprint", fingerprint=FP)
        assert decode_payload(_payload(record)).fingerprint == FP

    def test_multi_feature_blocks_in_header_order(self, rng):
        matrices = {"sig": rng.random((2, 4)), "tex": rng.random((2, 6))}
        record = JournalRecord.add(1, [0, 1], matrices, None, None)
        decoded = decode_payload(_payload(record))
        for name, matrix in matrices.items():
            assert decoded.matrices[name].tobytes() == matrix.tobytes()

    def test_unknown_op_refused_both_ways(self):
        with pytest.raises(JournalError, match="unknown journal op"):
            encode_record(JournalRecord(op="merge"))
        bad = _payload(JournalRecord.remove(1, [2])).replace(
            b'"op": "remove"', b'"op": "weird!"'
        )
        with pytest.raises(JournalError, match="unknown journal op"):
            decode_payload(bad)

    def test_truncated_feature_block_refused(self, rng):
        payload = _payload(
            JournalRecord.add(1, [0], {"sig": rng.random((1, 4))}, None, None)
        )
        with pytest.raises(JournalError, match="truncated"):
            decode_payload(payload[:-8])

    def test_fingerprint_covers_version_features_metrics(self):
        assert FP["version"] == FORMAT_VERSION
        assert FP["features"] == [{"name": "sig", "dim": 4}]
        assert FP["metrics"] == {"sig": "l2"}
        assert fingerprint_of({"sig": 5}, {"sig": "l2"}) != FP
        assert fingerprint_of({"sig": 4}, {"sig": "l1"}) != FP


class TestJournalFile:
    def test_create_append_scan(self, tmp_path, rng):
        journal = Journal.create(tmp_path / "wal.log", FP)
        matrix = rng.random((2, 4))
        journal.append(JournalRecord.add(0, [0, 1], {"sig": matrix}, None, None))
        journal.append(JournalRecord.remove(1, [0]), sync=True)
        journal.close()
        scan = Journal.scan(tmp_path / "wal.log")
        assert scan.fingerprint == FP
        assert [r.op for r in scan.records] == ["add", "remove"]
        assert scan.records[0].matrices["sig"].tobytes() == matrix.tobytes()
        assert scan.torn_bytes == 0

    def test_append_buffers_until_sync(self, tmp_path):
        journal = Journal.create(tmp_path / "wal.log", FP)
        base = (tmp_path / "wal.log").stat().st_size
        journal.append(JournalRecord.remove(0, [1]))
        assert journal.dirty
        journal.sync()
        assert not journal.dirty
        assert (tmp_path / "wal.log").stat().st_size > base
        journal.close()

    def test_torn_tail_detected_and_truncated(self, tmp_path):
        path = tmp_path / "wal.log"
        journal = Journal.create(path, FP)
        journal.append(JournalRecord.remove(0, [1]), sync=True)
        journal.close()
        good_size = path.stat().st_size
        # A crash mid-append: half of a record's bytes reached the disk.
        torn = encode_record(JournalRecord.remove(1, [2]))
        with open(path, "ab") as file:
            file.write(torn[: len(torn) // 2])
        scan = Journal.scan(path)
        assert len(scan.records) == 1  # the torn record is invisible
        assert scan.valid_bytes == good_size
        assert scan.torn_bytes == len(torn) // 2
        reopened = Journal.open(path)
        reopened.close()
        assert path.stat().st_size == good_size  # tail gone for good

    def test_corrupt_crc_hides_record_and_everything_after(self, tmp_path):
        path = tmp_path / "wal.log"
        journal = Journal.create(path, FP)
        journal.append(JournalRecord.remove(0, [1]), sync=True)
        first_end = path.stat().st_size
        journal.append(JournalRecord.remove(1, [2]), sync=True)
        journal.append(JournalRecord.remove(2, [3]), sync=True)
        journal.close()
        raw = bytearray(path.read_bytes())
        raw[first_end + _PREFIX.size + 4] ^= 0xFF  # flip a payload byte
        path.write_bytes(bytes(raw))
        scan = Journal.scan(path)
        # Sequential scan stops at the first bad CRC: the (intact)
        # third record is unreachable and must not be replayed — its
        # mutation was only acknowledged after the second's fsync, and
        # replaying around a hole would reorder history.
        assert [r.seq for r in scan.records] == [0]
        assert scan.torn_bytes > 0

    def test_bad_magic_is_corruption_not_crash(self, tmp_path):
        path = tmp_path / "wal.log"
        path.write_bytes(b"NOTAWAL!")
        with pytest.raises(JournalError, match="magic"):
            Journal.scan(path)

    def test_missing_fingerprint_is_corruption(self, tmp_path):
        path = tmp_path / "wal.log"
        path.write_bytes(b"RWALV001" + encode_record(JournalRecord.remove(0, [1])))
        with pytest.raises(JournalError):
            Journal.scan(path)

    def test_reset_leaves_fresh_empty_journal(self, tmp_path):
        path = tmp_path / "wal.log"
        journal = Journal.create(path, FP)
        journal.append(JournalRecord.remove(0, [1]), sync=True)
        journal.reset(FP)
        journal.append(JournalRecord.remove(5, [2]), sync=True)
        journal.close()
        scan = Journal.scan(path)
        assert [r.seq for r in scan.records] == [5]  # pre-reset record gone


class TestJournalSet:
    def test_shared_sequence_across_shards(self, tmp_path, rng):
        journals = JournalSet(tmp_path, FP, n_shards=2)
        journals.reset()
        seq0 = journals.next_seq()
        journals.append_records(
            {
                0: JournalRecord.add(
                    seq0, [0], {"sig": rng.random((1, 4))}, None, None
                ),
                1: JournalRecord.add(
                    seq0, [1], {"sig": rng.random((1, 4))}, None, None
                ),
            },
            sync=True,
        )
        seq1 = journals.next_seq()
        journals.append_records(
            {1: JournalRecord.remove(seq1, [1])}, sync=True
        )
        journals.close()
        scanned = {
            path.name: Journal.scan(path).records
            for path in JournalSet.existing_paths(tmp_path)
        }
        assert [r.seq for r in scanned["wal-000.log"]] == [seq0]
        assert [r.seq for r in scanned["wal-001.log"]] == [seq0, seq1]
        assert seq1 == seq0 + 1

    def test_sync_only_touches_dirty_files(self, tmp_path):
        journals = JournalSet(tmp_path, FP, n_shards=3)
        journals.reset()
        journals.append_records({1: JournalRecord.remove(0, [1])})
        journals.sync()
        n_syncs = [j.n_syncs for j in journals.journals]
        assert n_syncs == [0, 1, 0]
        journals.close()

    def test_on_fsync_observer_fires_per_group_commit(self, tmp_path):
        journals = JournalSet(tmp_path, FP, n_shards=1)
        journals.reset()
        observed: list[float] = []
        journals.on_fsync = observed.append
        journals.append_records({0: JournalRecord.remove(0, [1])})
        journals.append_records({0: JournalRecord.remove(1, [2])})
        journals.sync()
        assert len(observed) == 1  # one group fsync for two appends
        journals.close()

    def test_reset_removes_stale_extra_shard_files(self, tmp_path):
        wide = JournalSet(tmp_path, FP, n_shards=3)
        wide.reset()
        wide.close()
        assert len(JournalSet.existing_paths(tmp_path)) == 3
        narrow = JournalSet(tmp_path, FP, n_shards=2)
        narrow.reset()
        narrow.close()
        assert len(JournalSet.existing_paths(tmp_path)) == 2
