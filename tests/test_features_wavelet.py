"""Tests for the Haar wavelet transform and signatures."""

import numpy as np
import pytest

from repro.errors import FeatureError
from repro.features.wavelet import (
    WaveletSignature,
    haar2d,
    haar2d_inverse,
    haar_decompose,
)
from repro.image import synth
from repro.image.core import Image


class TestHaar2D:
    def test_subband_shapes(self, rng):
        array = rng.random((16, 12))
        ll, lh, hl, hh = haar2d(array)
        for band in (ll, lh, hl, hh):
            assert band.shape == (8, 6)

    def test_exact_inverse(self, rng):
        array = rng.random((16, 16))
        assert np.allclose(haar2d_inverse(*haar2d(array)), array, atol=1e-12)

    def test_energy_preservation(self, rng):
        # Orthonormal transform: Parseval's identity holds exactly.
        array = rng.random((16, 16))
        ll, lh, hl, hh = haar2d(array)
        transformed_energy = sum(float((b * b).sum()) for b in (ll, lh, hl, hh))
        assert transformed_energy == pytest.approx(float((array * array).sum()))

    def test_constant_image_details_vanish(self):
        array = np.full((8, 8), 0.5)
        ll, lh, hl, hh = haar2d(array)
        assert np.allclose(lh, 0.0)
        assert np.allclose(hl, 0.0)
        assert np.allclose(hh, 0.0)
        assert np.allclose(ll, 1.0)  # 0.5 * 2 (two /sqrt2 averagings)

    def test_horizontal_edge_lands_in_lh(self):
        # Top half 0, bottom half 1: vertical variation -> LH band
        # (high-pass along rows=y in this implementation's convention).
        array = np.zeros((8, 8))
        array[4:] = 1.0
        ll, lh, hl, hh = haar2d(array)
        assert np.abs(hl).sum() + np.abs(hh).sum() == pytest.approx(0.0)

    def test_rejects_odd_dimensions(self):
        with pytest.raises(FeatureError, match="even"):
            haar2d(np.zeros((7, 8)))

    def test_rejects_non_2d(self):
        with pytest.raises(FeatureError):
            haar2d(np.zeros(8))

    def test_inverse_validates_shapes(self):
        with pytest.raises(FeatureError, match="identical shape"):
            haar2d_inverse(np.zeros((2, 2)), np.zeros((2, 2)), np.zeros((2, 2)), np.zeros((3, 3)))


class TestHaarDecompose:
    def test_band_count(self, rng):
        bands = haar_decompose(rng.random((32, 32)), 3)
        assert len(bands) == 10  # the paper's "10 sub images"

    def test_coarsest_band_shape(self, rng):
        bands = haar_decompose(rng.random((32, 32)), 3)
        assert bands[0].shape == (4, 4)

    def test_full_energy_preserved(self, rng):
        array = rng.random((32, 32))
        bands = haar_decompose(array, 3)
        total = sum(float((b * b).sum()) for b in bands)
        assert total == pytest.approx(float((array * array).sum()))

    def test_rejects_bad_levels(self):
        with pytest.raises(FeatureError):
            haar_decompose(np.zeros((8, 8)), 0)

    def test_rejects_non_divisible(self):
        with pytest.raises(FeatureError, match="even"):
            haar_decompose(np.zeros((12, 12)), 3)  # 12/2/2 = 3, odd


class TestWaveletSignature:
    def test_default_dim_is_ten(self):
        assert WaveletSignature().dim == 10

    def test_levels_control_dim(self):
        assert WaveletSignature(2).dim == 7
        assert WaveletSignature(4, working_size=64).dim == 13

    def test_constant_image_signature(self):
        sig = WaveletSignature().extract(Image.full(32, 32, 0.5))
        assert sig[0] > 0.0          # approximation energy
        assert np.allclose(sig[1:], 0.0)  # no detail anywhere

    def test_resolution_invariance(self, rng):
        img = synth.value_noise(128, 128, rng, scale=16)
        sig_full = WaveletSignature().extract(img)
        sig_half = WaveletSignature().extract(img.resize(64, 64))
        assert np.abs(sig_full - sig_half).max() < 0.05

    def test_separates_smooth_from_busy(self, rng):
        # Cell size 1 so adjacent pixels differ (a cell-2 board has zero
        # level-1 Haar detail: each transform pair sits inside one cell).
        smooth = synth.value_noise(64, 64, rng, scale=32)
        busy = synth.checkerboard(64, 64, 1)
        sig_smooth = WaveletSignature().extract(smooth)
        sig_busy = WaveletSignature().extract(busy)
        # Busy textures put much more energy into fine-detail bands (the
        # last three are the level-1 details).
        assert sig_busy[-3:].sum() > sig_smooth[-3:].sum() * 5

    def test_validates_parameters(self):
        with pytest.raises(FeatureError):
            WaveletSignature(0)
        with pytest.raises(FeatureError, match="divisible"):
            WaveletSignature(3, working_size=20)
