"""Tests for color conversion and quantization."""

import numpy as np
import pytest

from repro.errors import ImageError
from repro.image.color import (
    LUMA_WEIGHTS,
    hsv_to_rgb,
    hsv_to_rgb_array,
    quantize_gray,
    quantize_hsv,
    quantize_rgb,
    quantize_uniform,
    rgb_to_gray,
    rgb_to_hsv,
    rgb_to_hsv_array,
)
from repro.image.core import Image


class TestGrayConversion:
    def test_luma_weights_sum_to_one(self):
        assert abs(LUMA_WEIGHTS.sum() - 1.0) < 1e-12

    def test_pure_channels(self):
        red = Image.full(2, 2, (1.0, 0.0, 0.0), mode="rgb")
        green = Image.full(2, 2, (0.0, 1.0, 0.0), mode="rgb")
        blue = Image.full(2, 2, (0.0, 0.0, 1.0), mode="rgb")
        assert abs(rgb_to_gray(red).pixels[0, 0] - 0.299) < 1e-12
        assert abs(rgb_to_gray(green).pixels[0, 0] - 0.587) < 1e-12
        assert abs(rgb_to_gray(blue).pixels[0, 0] - 0.114) < 1e-12

    def test_white_maps_to_one(self):
        white = Image.full(2, 2, (1.0, 1.0, 1.0), mode="rgb")
        assert abs(rgb_to_gray(white).pixels[0, 0] - 1.0) < 1e-12

    def test_gray_input_passthrough(self, gray_image):
        assert rgb_to_gray(gray_image) is gray_image


class TestHSV:
    @pytest.mark.parametrize(
        "rgb, expected_hsv",
        [
            ((1.0, 0.0, 0.0), (0.0, 1.0, 1.0)),          # red
            ((0.0, 1.0, 0.0), (1.0 / 3.0, 1.0, 1.0)),    # green
            ((0.0, 0.0, 1.0), (2.0 / 3.0, 1.0, 1.0)),    # blue
            ((1.0, 1.0, 0.0), (1.0 / 6.0, 1.0, 1.0)),    # yellow
            ((0.0, 1.0, 1.0), (0.5, 1.0, 1.0)),          # cyan
            ((1.0, 0.0, 1.0), (5.0 / 6.0, 1.0, 1.0)),    # magenta
            ((0.5, 0.5, 0.5), (0.0, 0.0, 0.5)),          # gray: h=s=0
            ((0.0, 0.0, 0.0), (0.0, 0.0, 0.0)),          # black
        ],
    )
    def test_known_colors(self, rgb, expected_hsv):
        hsv = rgb_to_hsv_array(np.array(rgb))
        assert np.allclose(hsv, expected_hsv, atol=1e-12)

    def test_round_trip_random(self, rng):
        rgb = rng.random((16, 16, 3))
        back = hsv_to_rgb_array(rgb_to_hsv_array(rgb))
        assert np.allclose(back, rgb, atol=1e-10)

    def test_image_level_round_trip(self, rgb_image):
        back = hsv_to_rgb(rgb_to_hsv(rgb_image))
        assert back.allclose(rgb_image, atol=1e-10)

    def test_rejects_gray_images(self, gray_image):
        with pytest.raises(ImageError):
            rgb_to_hsv(gray_image)

    def test_rejects_wrong_trailing_dim(self):
        with pytest.raises(ImageError, match="trailing dimension"):
            rgb_to_hsv_array(np.zeros((4, 4, 2)))

    def test_hue_range(self, rng):
        hsv = rgb_to_hsv_array(rng.random((32, 32, 3)))
        assert hsv[..., 0].min() >= 0.0
        assert hsv[..., 0].max() < 1.0


class TestQuantization:
    def test_uniform_boundaries(self):
        values = np.array([0.0, 0.249, 0.25, 0.5, 0.99, 1.0])
        codes = quantize_uniform(values, 4)
        assert codes.tolist() == [0, 0, 1, 2, 3, 3]

    def test_uniform_single_level(self):
        assert np.all(quantize_uniform(np.linspace(0, 1, 10), 1) == 0)

    def test_uniform_rejects_bad_levels(self):
        with pytest.raises(ImageError):
            quantize_uniform(np.zeros(3), 0)

    def test_gray_codes_in_range(self, gray_image):
        codes = quantize_gray(gray_image, 16)
        assert codes.min() >= 0
        assert codes.max() <= 15

    def test_rgb_joint_codes(self):
        red = Image.full(2, 2, (1.0, 0.0, 0.0), mode="rgb")
        codes = quantize_rgb(red, 2)
        # Red channel in top cell (1), G and B in bottom (0): code = 1*4 = 4.
        assert np.all(codes == 4)

    def test_rgb_code_range(self, rng):
        img = Image(rng.random((8, 8, 3)))
        codes = quantize_rgb(img, 4)
        assert codes.min() >= 0
        assert codes.max() < 64

    def test_hsv_code_range(self, rng):
        img = Image(rng.random((8, 8, 3)))
        codes = quantize_hsv(img, (18, 3, 3))
        assert codes.min() >= 0
        assert codes.max() < 162

    def test_hsv_rejects_bad_bins(self, rgb_image):
        with pytest.raises(ImageError):
            quantize_hsv(rgb_image, (0, 3, 3))

    def test_hsv_pure_red_lands_in_first_hue_bin(self):
        red = Image.full(2, 2, (1.0, 0.0, 0.0), mode="rgb")
        codes = quantize_hsv(red, (18, 3, 3))
        # hue bin 0, saturation bin 2, value bin 2 -> (0*3 + 2)*3 + 2 = 8
        assert np.all(codes == 8)
