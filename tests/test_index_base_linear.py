"""Tests for the index protocol and the linear-scan baseline."""

import numpy as np
import pytest

from repro.errors import IndexingError
from repro.index.base import Neighbor
from repro.index.linear import LinearScanIndex
from repro.index.stats import BuildStats, SearchStats
from repro.metrics.base import CountingMetric
from repro.metrics.histogram import ChiSquareDistance
from repro.metrics.minkowski import EuclideanDistance


@pytest.fixture
def built_index(rng):
    vectors = rng.random((50, 4))
    return LinearScanIndex(EuclideanDistance()).build(list(range(50)), vectors), vectors


class TestBuildValidation:
    def test_rejects_empty(self):
        with pytest.raises(IndexingError, match="non-empty"):
            LinearScanIndex(EuclideanDistance()).build([], np.empty((0, 3)))

    def test_rejects_id_count_mismatch(self, rng):
        with pytest.raises(IndexingError, match="ids but"):
            LinearScanIndex(EuclideanDistance()).build([1, 2], rng.random((3, 2)))

    def test_rejects_duplicate_ids(self, rng):
        with pytest.raises(IndexingError, match="duplicate"):
            LinearScanIndex(EuclideanDistance()).build([1, 1], rng.random((2, 2)))

    def test_rejects_non_finite_vectors(self):
        vectors = np.array([[0.0, np.inf]])
        with pytest.raises(IndexingError, match="non-finite"):
            LinearScanIndex(EuclideanDistance()).build([0], vectors)

    def test_rejects_non_metric_tool(self):
        with pytest.raises(IndexingError, match="Metric"):
            LinearScanIndex("euclidean")

    def test_accepts_non_metric_distance(self, rng):
        # Linear scan never prunes, so chi-square is fine here.
        index = LinearScanIndex(ChiSquareDistance())
        index.build([0, 1], np.abs(rng.random((2, 4))))
        assert index.size == 2

    def test_vectors_copied(self, rng):
        vectors = rng.random((5, 3))
        index = LinearScanIndex(EuclideanDistance()).build(list(range(5)), vectors)
        original = vectors[0].copy()
        vectors[0] = 9.0
        assert index.knn_search(original, 1)[0].distance == pytest.approx(0.0)


class TestQueryValidation:
    def test_query_before_build(self):
        index = LinearScanIndex(EuclideanDistance())
        with pytest.raises(IndexingError, match="not been built"):
            index.knn_search(np.zeros(3), 1)

    def test_dim_mismatch(self, built_index):
        index, _ = built_index
        with pytest.raises(IndexingError, match="dim"):
            index.knn_search(np.zeros(5), 1)

    def test_bad_k(self, built_index):
        index, _ = built_index
        with pytest.raises(IndexingError, match="k must be"):
            index.knn_search(np.zeros(4), 0)

    def test_negative_radius(self, built_index):
        index, _ = built_index
        with pytest.raises(IndexingError, match="radius"):
            index.range_search(np.zeros(4), -0.1)

    def test_non_finite_query(self, built_index):
        index, _ = built_index
        with pytest.raises(IndexingError, match="non-finite"):
            index.knn_search(np.array([np.nan, 0, 0, 0]), 1)


class TestLinearScanSemantics:
    def test_knn_returns_k_sorted(self, built_index, rng):
        index, _ = built_index
        result = index.knn_search(rng.random(4), 5)
        assert len(result) == 5
        distances = [n.distance for n in result]
        assert distances == sorted(distances)

    def test_knn_k_larger_than_size(self, built_index, rng):
        index, _ = built_index
        result = index.knn_search(rng.random(4), 500)
        assert len(result) == 50

    def test_knn_exact_against_numpy(self, built_index, rng):
        index, vectors = built_index
        query = rng.random(4)
        result = index.knn_search(query, 7)
        expected = np.sort(np.linalg.norm(vectors - query, axis=1))[:7]
        assert np.allclose([n.distance for n in result], expected)

    def test_range_matches_definition(self, built_index, rng):
        index, vectors = built_index
        query = rng.random(4)
        radius = 0.5
        result = index.range_search(query, radius)
        expected_ids = {
            i for i, v in enumerate(vectors) if np.linalg.norm(v - query) <= radius
        }
        assert {n.id for n in result} == expected_ids

    def test_range_zero_radius_finds_exact_item(self, built_index):
        index, vectors = built_index
        result = index.range_search(vectors[13], 0.0)
        assert [n.id for n in result] == [13]

    def test_cost_is_exactly_n(self, built_index, rng):
        index, _ = built_index
        index.knn_search(rng.random(4), 3)
        assert index.last_stats.distance_computations == 50
        index.range_search(rng.random(4), 0.2)
        assert index.last_stats.distance_computations == 50

    def test_stats_match_counting_metric(self, rng):
        counter = CountingMetric(EuclideanDistance())
        index = LinearScanIndex(counter).build(list(range(20)), rng.random((20, 3)))
        counter.reset()
        index.knn_search(rng.random(3), 4)
        assert counter.count == index.last_stats.distance_computations

    def test_neighbor_is_named_tuple(self, built_index, rng):
        index, _ = built_index
        neighbor = index.knn_search(rng.random(4), 1)[0]
        assert isinstance(neighbor, Neighbor)
        assert neighbor == (neighbor.id, neighbor.distance)

    def test_nonconsecutive_ids_preserved(self, rng):
        ids = [100, 7, 42]
        vectors = rng.random((3, 2))
        index = LinearScanIndex(EuclideanDistance()).build(ids, vectors)
        result = index.knn_search(vectors[1], 1)
        assert result[0].id == 7

    def test_deterministic_tie_handling(self):
        vectors = np.array([[0.0, 1.0], [0.0, -1.0], [1.0, 0.0]])
        index = LinearScanIndex(EuclideanDistance()).build([0, 1, 2], vectors)
        result = index.knn_search(np.zeros(2), 2)
        assert {n.id for n in result} <= {0, 1, 2}
        assert len(result) == 2
        assert result[0].distance == result[1].distance == 1.0

    def test_repr(self, built_index):
        index, _ = built_index
        assert "size=50" in repr(index)


class TestStatsDataclasses:
    def test_search_stats_add(self):
        a = SearchStats(1, 2, 3, 4, 5)
        b = SearchStats(10, 20, 30, 40, 50)
        total = a + b
        assert total.distance_computations == 11
        assert total.items_included_wholesale == 55

    def test_search_stats_merge(self):
        a = SearchStats(1, 1, 1, 1, 1)
        a.merge(SearchStats(2, 2, 2, 2, 2))
        assert a.nodes_visited == 3

    def test_build_stats_defaults(self):
        stats = BuildStats()
        assert stats.distance_computations == 0
        assert stats.extra == {}
