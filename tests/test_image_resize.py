"""Tests for resampling."""

import numpy as np
import pytest

from repro.errors import ImageError
from repro.image.core import Image
from repro.image.resize import resize, resize_bilinear, resize_nearest


class TestResizeGeneral:
    def test_identity_when_same_size(self, gray_image):
        assert resize(gray_image, 32, 32) is gray_image

    def test_rejects_bad_target(self, gray_image):
        with pytest.raises(ImageError, match="positive"):
            resize(gray_image, 0, 10)

    def test_rejects_unknown_method(self, gray_image):
        with pytest.raises(ImageError, match="unknown resize method"):
            resize(gray_image, 8, 8, method="bicubic")

    @pytest.mark.parametrize("method", ["nearest", "bilinear"])
    def test_output_shape_gray(self, gray_image, method):
        out = resize(gray_image, 13, 9, method=method)
        assert out.shape == (9, 13)

    @pytest.mark.parametrize("method", ["nearest", "bilinear"])
    def test_output_shape_rgb(self, rgb_image, method):
        out = resize(rgb_image, 13, 9, method=method)
        assert out.shape == (9, 13, 3)

    @pytest.mark.parametrize("method", ["nearest", "bilinear"])
    def test_constant_image_stays_constant(self, method):
        img = Image.full(10, 10, 0.37)
        out = resize(img, 23, 7, method=method)
        assert np.allclose(out.pixels, 0.37)

    def test_values_stay_in_range(self, rng):
        img = Image(rng.random((16, 16, 3)))
        out = resize_bilinear(img, 40, 40)
        assert out.pixels.min() >= 0.0
        assert out.pixels.max() <= 1.0


class TestNearest:
    def test_2x_upscale_replicates(self):
        img = Image(np.array([[0.0, 1.0], [1.0, 0.0]]))
        out = resize_nearest(img, 4, 4)
        expected = np.array(
            [
                [0.0, 0.0, 1.0, 1.0],
                [0.0, 0.0, 1.0, 1.0],
                [1.0, 1.0, 0.0, 0.0],
                [1.0, 1.0, 0.0, 0.0],
            ]
        )
        assert np.array_equal(out.pixels, expected)

    def test_downscale_picks_existing_values(self, rng):
        img = Image(rng.random((16, 16)))
        out = resize_nearest(img, 4, 4)
        flat = set(np.round(img.pixels, 12).ravel())
        assert all(round(v, 12) in flat for v in out.pixels.ravel())


class TestBilinear:
    def test_preserves_linear_ramp(self):
        # A linear ramp resampled bilinearly must stay linear.
        xs = np.linspace(0.0, 1.0, 8)
        img = Image(np.tile(xs, (8, 1)))
        out = resize_bilinear(img, 16, 8)
        row = out.pixels[0]
        diffs = np.diff(row[1:-1])  # interior: constant slope
        assert np.allclose(diffs, diffs[0], atol=1e-9)

    def test_mean_roughly_preserved_on_downscale(self, rng):
        img = Image(rng.random((32, 32)))
        out = resize_bilinear(img, 8, 8)
        assert abs(out.pixels.mean() - img.pixels.mean()) < 0.05

    def test_down_up_is_stable(self):
        img = Image.full(16, 16, 0.6)
        out = resize_bilinear(resize_bilinear(img, 8, 8), 16, 16)
        assert np.allclose(out.pixels, 0.6)
