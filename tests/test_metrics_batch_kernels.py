"""Property-based parity harness for the EMD and Hausdorff batch kernels.

These were the last two loop-fallback metrics; their new vectorized
kernels (stacked cumsum / median-shift for the match distance,
padded-and-masked pairwise point blocks for Hausdorff) are held to the
batch contract at its strictest reading:

    ``metric.distance_batch(q, X) == [metric.distance(q, x) for x in X]``

**to the last ULP**, over seeded random histograms and point sets,
ragged sizes, zero-mass rows, single-bin domains, and single-point sets.
Exactness is asserted with ``np.array_equal`` — no tolerances anywhere.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import MetricError
from repro.metrics.base import CountingMetric, hide_batch_kernel
from repro.metrics.emd import (
    MatchDistance,
    circular_match_distance,
    circular_match_distance_batch,
    match_distance,
    match_distance_batch,
)
from repro.metrics.hausdorff import HausdorffDistance
from repro.metrics.shifted import CircularShiftDistance


def _loop(metric, query, vectors):
    return np.array([metric.distance(query, row) for row in vectors])


def _assert_batch_parity(metric, query, vectors):
    batch = metric.distance_batch(query, vectors)
    assert batch.dtype == np.float64
    assert np.array_equal(batch, _loop(metric, query, vectors))


# ---------------------------------------------------------------------------
# Match distance (1-D EMD) and its circular variant
# ---------------------------------------------------------------------------
_EMD_VARIANTS = [
    MatchDistance(),
    MatchDistance(circular=True),
    MatchDistance(normalize=False),
    MatchDistance(circular=True, normalize=False),
]
_EMD_IDS = ["emd", "cemd", "emd-raw", "cemd-raw"]


def _histograms(dim: int):
    return st.tuples(
        hnp.arrays(
            np.float64,
            st.tuples(st.integers(1, 32), st.just(dim)),
            elements=st.floats(0.0, 10.0, allow_nan=False, width=64),
        ),
        hnp.arrays(
            np.float64,
            st.just((dim,)),
            elements=st.floats(0.0, 10.0, allow_nan=False, width=64),
        ),
    )


class TestMatchDistanceKernel:
    @pytest.mark.parametrize("metric", _EMD_VARIANTS[:2], ids=_EMD_IDS[:2])
    @given(data=st.one_of(_histograms(1), _histograms(2), _histograms(7), _histograms(16)))
    @settings(max_examples=60, deadline=None)
    def test_property_parity_normalizing(self, metric, data):
        # Arbitrary non-negative mass vectors, including all-zero rows
        # and a zero query (hypothesis shrinks toward zeros), single-bin
        # domains (dim=1), and even/odd dims for the median cut.
        vectors, query = data
        _assert_batch_parity(metric, query, vectors)

    @pytest.mark.parametrize("metric", _EMD_VARIANTS[2:], ids=_EMD_IDS[2:])
    @given(data=st.one_of(_histograms(1), _histograms(4), _histograms(13)))
    @settings(max_examples=60, deadline=None)
    def test_property_parity_raw_equal_mass(self, metric, data):
        # The non-normalizing variants require equal masses: rescale every
        # row to the query's mass (or run the all-zero edge case as-is).
        vectors, query = data
        mass = float(query.sum())
        masses = vectors.sum(axis=1)
        if mass < 1e-6 or np.any(masses < 1e-6):
            # Zero or subnormal masses make the rescale itself overflow;
            # shift onto a well-conditioned support instead.
            query = query + 0.5
            vectors = vectors + 0.5
            mass = float(query.sum())
            masses = vectors.sum(axis=1)
        vectors = vectors * (mass / masses)[:, None]
        _assert_batch_parity(metric, query, vectors)

    @pytest.mark.parametrize("metric", _EMD_VARIANTS, ids=_EMD_IDS)
    def test_seeded_sweep(self, metric, rng):
        for dim in (1, 2, 3, 8, 12, 33, 64, 128):
            vectors = rng.random((50, dim)) * 3.0
            query = rng.random(dim) * 3.0
            if not metric._normalize:
                vectors /= vectors.sum(axis=1, keepdims=True)
                query /= query.sum()
            _assert_batch_parity(metric, query, vectors)

    def test_zero_mass_rows_and_query(self, rng):
        for circular in (False, True):
            metric = MatchDistance(circular=circular)
            vectors = rng.random((12, 6))
            vectors[2] = 0.0
            vectors[9] = 0.0
            _assert_batch_parity(metric, rng.random(6), vectors)
            _assert_batch_parity(metric, np.zeros(6), vectors)

    def test_single_bin(self, rng):
        for metric in _EMD_VARIANTS[:2]:
            vectors = rng.random((8, 1))
            vectors[3] = 0.0
            _assert_batch_parity(metric, rng.random(1), vectors)

    def test_empty_batch(self, rng):
        for metric in _EMD_VARIANTS:
            out = metric.distance_batch(rng.random(5), np.empty((0, 5)))
            assert out.shape == (0,) and out.dtype == np.float64

    def test_module_kernels_match_scalar_functions(self, rng):
        query = rng.random(9)
        vectors = rng.random((20, 9))
        masses = vectors.sum(axis=1)
        vectors = vectors * (float(query.sum()) / masses)[:, None]
        assert np.array_equal(
            match_distance_batch(query, vectors),
            np.array([match_distance(query, row) for row in vectors]),
        )
        assert np.array_equal(
            circular_match_distance_batch(query, vectors),
            np.array([circular_match_distance(query, row) for row in vectors]),
        )

    def test_rejects_negative_and_unequal_mass(self, rng):
        query = rng.random(5)
        negative = rng.random((4, 5))
        negative[1, 2] = -0.5
        with pytest.raises(MetricError, match="non-negative"):
            match_distance_batch(query, negative)
        unequal = rng.random((4, 5)) + 1.0
        with pytest.raises(MetricError, match="equal masses"):
            match_distance_batch(query, unequal * 3.0)
        with pytest.raises(MetricError, match="equal masses"):
            circular_match_distance_batch(query, unequal * 3.0)

    def test_counting_metric_delegates_to_kernel(self, rng):
        counter = CountingMetric(MatchDistance())
        assert counter.supports_batch
        counter.distance_batch(rng.random(6), rng.random((17, 6)))
        assert counter.count == 17

    def test_shift_kernel_over_emd_base_is_vectorized_and_exact(self, rng):
        # CircularShiftDistance inherits supports_batch from its base;
        # with the new EMD kernel the stacked-shift kernel is now real.
        metric = CircularShiftDistance(MatchDistance())
        assert metric.supports_batch
        vectors = rng.random((10, 8))
        _assert_batch_parity(metric, rng.random(8), vectors)


# ---------------------------------------------------------------------------
# Hausdorff over ragged NaN-padded point buffers
# ---------------------------------------------------------------------------
def _pad_points(rng, n_rows: int, max_points: int, point_dim: int) -> np.ndarray:
    """Flat buffers with ragged valid prefixes and NaN padding."""
    buffers = np.full((n_rows, max_points * point_dim), np.nan)
    for i in range(n_rows):
        count = int(rng.integers(1, max_points + 1))
        buffers[i, : count * point_dim] = rng.random(count * point_dim)
    return buffers


class TestHausdorffKernel:
    @given(
        n_rows=st.integers(1, 20),
        max_points=st.integers(1, 9),
        point_dim=st.integers(1, 3),
        query_points=st.integers(1, 9),
        seed=st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_parity_ragged(
        self, n_rows, max_points, point_dim, query_points, seed
    ):
        rng = np.random.default_rng(seed)
        metric = HausdorffDistance(point_dim=point_dim)
        vectors = _pad_points(rng, n_rows, max_points, point_dim)
        valid_query_points = min(query_points, max_points)
        query = np.full(max_points * point_dim, np.nan)
        query[: valid_query_points * point_dim] = rng.random(
            valid_query_points * point_dim
        )
        _assert_batch_parity(metric, query, vectors)

    def test_seeded_sweep_dense_buffers(self, rng):
        for point_dim in (1, 2, 3, 4):
            metric = HausdorffDistance(point_dim=point_dim)
            dim = point_dim * 12
            vectors = rng.random((40, dim))
            _assert_batch_parity(metric, rng.random(dim), vectors)

    def test_interior_nan_points_drop_like_scalar(self, rng):
        metric = HausdorffDistance(point_dim=2)
        vectors = rng.random((6, 10))
        vectors[1, 4:6] = np.nan  # a NaN point mid-buffer, not trailing
        vectors[4, 0:2] = np.nan
        _assert_batch_parity(metric, rng.random(10), vectors)

    def test_single_point_sets(self, rng):
        metric = HausdorffDistance(point_dim=2)
        vectors = rng.random((5, 8))
        vectors[:, 2:] = np.nan  # every candidate collapses to one point
        _assert_batch_parity(metric, rng.random(8), vectors)
        query = np.full(8, np.nan)
        query[:2] = rng.random(2)  # one-point query against one-point sets
        _assert_batch_parity(metric, query, vectors)

    def test_empty_batch(self, rng):
        out = HausdorffDistance(point_dim=2).distance_batch(
            rng.random(6), np.empty((0, 6))
        )
        assert out.shape == (0,) and out.dtype == np.float64

    def test_rejects_partial_points(self, rng):
        metric = HausdorffDistance(point_dim=2)
        vectors = rng.random((3, 6))
        vectors[1, 5] = np.nan  # 5 valid values: not a whole 2-d point
        with pytest.raises(MetricError, match="whole number"):
            metric.distance_batch(rng.random(6), vectors)
        all_nan = np.full((2, 6), np.nan)
        with pytest.raises(MetricError, match="whole number"):
            metric.distance_batch(rng.random(6), all_nan)

    def test_counting_metric_delegates_to_kernel(self, rng):
        counter = CountingMetric(HausdorffDistance(point_dim=2))
        assert counter.supports_batch
        counter.distance_batch(rng.random(8), rng.random((11, 8)))
        assert counter.count == 11


# ---------------------------------------------------------------------------
# The kernels against their own loop fallbacks (hide_batch_kernel)
# ---------------------------------------------------------------------------
@pytest.mark.parametrize(
    "metric",
    [
        MatchDistance(),
        MatchDistance(circular=True),
        HausdorffDistance(point_dim=2),
    ],
    ids=["emd", "cemd", "hausdorff"],
)
def test_kernel_equals_hidden_fallback(metric, rng):
    hidden = hide_batch_kernel(metric)
    assert not hidden.supports_batch
    query = rng.random(12)
    vectors = rng.random((30, 12))
    assert np.array_equal(
        metric.distance_batch(query, vectors),
        hidden.distance_batch(query, vectors),
    )


def test_supports_batch_flags_flipped():
    # These three were the loop-fallback row in docs/metrics.md.
    assert MatchDistance().supports_batch
    assert MatchDistance(circular=True).supports_batch
    assert HausdorffDistance(point_dim=2).supports_batch
