"""Tests for color moments and the color auto-correlogram."""

import numpy as np
import pytest

from repro.errors import FeatureError
from repro.features.correlogram import ColorAutoCorrelogram, auto_correlogram
from repro.features.moments import ColorMoments
from repro.image import synth
from repro.image.core import Image


class TestColorMoments:
    def test_dim_is_nine(self):
        assert ColorMoments().dim == 9

    def test_constant_image_moments(self):
        img = synth.solid(8, 8, (0.25, 0.5, 0.75))
        m = ColorMoments("rgb").extract(img)
        # mean per channel; std and skew zero.
        assert m[0] == pytest.approx(0.25)
        assert m[3] == pytest.approx(0.5)
        assert m[6] == pytest.approx(0.75)
        assert m[1] == m[2] == 0.0
        assert m[4] == m[5] == 0.0

    def test_symmetric_distribution_has_zero_skew(self):
        # Half 0.2, half 0.8: symmetric around 0.5.
        data = np.zeros((4, 4, 3))
        data[:2] = 0.2
        data[2:] = 0.8
        m = ColorMoments("rgb").extract(Image(data))
        # Cube root amplifies float error in the third moment: tolerance
        # is cbrt(eps)-scale, not eps-scale.
        assert m[2] == pytest.approx(0.0, abs=1e-4)

    def test_skew_sign(self):
        # Mostly dark with a bright tail: positive skew.
        data = np.full((10, 10, 3), 0.1)
        data[0, 0] = 1.0
        m = ColorMoments("rgb").extract(Image(data))
        assert m[2] > 0.0

    def test_hsv_space_differs_from_rgb(self, scene_image):
        rgb_m = ColorMoments("rgb").extract(scene_image)
        hsv_m = ColorMoments("hsv").extract(scene_image)
        assert not np.allclose(rgb_m, hsv_m)

    def test_rejects_unknown_space(self):
        with pytest.raises(FeatureError):
            ColorMoments("lab")

    def test_gray_image_broadcasts(self, gray_image):
        m = ColorMoments("rgb").extract(gray_image)
        assert m[0] == pytest.approx(m[3]) == pytest.approx(m[6])


class TestAutoCorrelogramFunction:
    def test_constant_image_probability_one(self):
        codes = np.zeros((16, 16), dtype=int)
        table = auto_correlogram(codes, 4, (1, 3))
        assert table[0, 0] == pytest.approx(1.0)
        assert np.all(table[:, 1:] == 0.0)  # absent colors

    def test_fine_checkerboard_distance_one_is_zero(self):
        # On a unit checkerboard, axial neighbours at distance 1 always
        # differ; diagonal neighbours always match: probability = 2/8 ...
        # computed per the 8-direction ring definition.
        ys, xs = np.mgrid[0:16, 0:16]
        codes = ((xs + ys) % 2).astype(int)
        table = auto_correlogram(codes, 2, (1,))
        # 4 diagonal directions match, 4 axial differ (up to borders).
        assert 0.4 < table[0, 0] < 0.6
        assert 0.4 < table[0, 1] < 0.6

    def test_probabilities_in_unit_interval(self, rng):
        codes = rng.integers(0, 8, (32, 32))
        table = auto_correlogram(codes, 8, (1, 3, 5))
        assert table.min() >= 0.0
        assert table.max() <= 1.0

    def test_coherent_region_beats_scattered(self, rng):
        # Same color mass: one coherent block vs salt-and-pepper.
        coherent = np.zeros((32, 32), dtype=int)
        coherent[:16] = 1
        scattered = rng.permuted(coherent.ravel()).reshape(32, 32)
        t_coherent = auto_correlogram(coherent, 2, (1,))
        t_scattered = auto_correlogram(scattered, 2, (1,))
        assert t_coherent[0, 1] > t_scattered[0, 1] + 0.2

    def test_rejects_bad_distances(self):
        with pytest.raises(FeatureError):
            auto_correlogram(np.zeros((4, 4), dtype=int), 2, (0,))

    def test_rejects_non_2d(self):
        with pytest.raises(FeatureError):
            auto_correlogram(np.zeros(16, dtype=int), 2, (1,))


class TestColorAutoCorrelogramExtractor:
    def test_dim(self):
        extractor = ColorAutoCorrelogram(4, (1, 3, 5, 7))
        assert extractor.dim == 64 * 4

    def test_distinguishes_layout_with_same_histogram(self):
        # The correlogram's raison d'etre: same color mass, different layout.
        block = synth.solid(64, 64, (0.0, 0.0, 1.0))
        block = synth.draw_rectangle(block, (0, 0), (63, 31), (1.0, 0.0, 0.0))
        rng = np.random.default_rng(0)
        pixels = block.pixels.reshape(-1, 3).copy()
        rng.shuffle(pixels)
        scattered = Image(pixels.reshape(64, 64, 3))

        extractor = ColorAutoCorrelogram(2, (1, 3), working_size=64)
        d = np.abs(extractor.extract(block) - extractor.extract(scattered)).sum()
        assert d > 0.5

    def test_deterministic(self, scene_image):
        extractor = ColorAutoCorrelogram(2, (1, 3))
        assert np.array_equal(
            extractor.extract(scene_image), extractor.extract(scene_image)
        )

    def test_validates_parameters(self):
        with pytest.raises(FeatureError):
            ColorAutoCorrelogram(0)
        with pytest.raises(FeatureError):
            ColorAutoCorrelogram(4, ())
        with pytest.raises(FeatureError, match="too small"):
            ColorAutoCorrelogram(4, (1, 40), working_size=64)
