"""Tests for the paged feature store."""

import numpy as np
import pytest

from repro.db.store import FeatureStore
from repro.errors import StoreError


@pytest.fixture
def store_path(tmp_path):
    return tmp_path / "test.feat"


class TestLifecycle:
    def test_create_and_reopen_empty(self, store_path):
        with FeatureStore.create(store_path, dim=4):
            pass
        with FeatureStore.open(store_path) as store:
            assert len(store) == 0
            assert store.dim == 4

    def test_create_refuses_existing(self, store_path):
        FeatureStore.create(store_path, dim=4).close()
        with pytest.raises(StoreError, match="exists"):
            FeatureStore.create(store_path, dim=4)
        FeatureStore.create(store_path, dim=4, overwrite=True).close()

    def test_open_missing_file(self, tmp_path):
        with pytest.raises(StoreError, match="does not exist"):
            FeatureStore.open(tmp_path / "nope.feat")

    def test_open_rejects_bad_magic(self, store_path):
        store_path.write_bytes(b"NOTASTORE" + b"\x00" * 32)
        with pytest.raises(StoreError, match="magic"):
            FeatureStore.open(store_path)

    def test_open_rejects_short_file(self, store_path):
        store_path.write_bytes(b"RF")
        with pytest.raises(StoreError, match="short"):
            FeatureStore.open(store_path)

    def test_operations_after_close_fail(self, store_path):
        store = FeatureStore.create(store_path, dim=2)
        store.close()
        with pytest.raises(StoreError, match="closed"):
            store.append([1.0, 2.0])
        store.close()  # idempotent

    def test_validates_create_parameters(self, store_path):
        with pytest.raises(StoreError):
            FeatureStore.create(store_path, dim=0)
        with pytest.raises(StoreError):
            FeatureStore.create(store_path, dim=4, page_records=0)


class TestAppendGet:
    def test_round_trip_within_session(self, store_path, rng):
        vectors = rng.random((10, 6))
        with FeatureStore.create(store_path, dim=6, page_records=4) as store:
            slots = [store.append(v) for v in vectors]
            assert slots == list(range(10))
            for slot, vector in zip(slots, vectors):
                assert np.allclose(store.get(slot), vector)

    def test_round_trip_across_sessions(self, store_path, rng):
        vectors = rng.random((10, 6))
        with FeatureStore.create(store_path, dim=6, page_records=4) as store:
            for v in vectors:
                store.append(v)
        with FeatureStore.open(store_path) as store:
            assert len(store) == 10
            for slot, vector in enumerate(vectors):
                assert np.allclose(store.get(slot), vector)

    def test_append_after_reopen(self, store_path, rng):
        first = rng.random((5, 3))
        second = rng.random((5, 3))
        with FeatureStore.create(store_path, dim=3, page_records=4) as store:
            for v in first:
                store.append(v)
        with FeatureStore.open(store_path) as store:
            for v in second:
                store.append(v)
        with FeatureStore.open(store_path) as store:
            assert len(store) == 10
            everything = np.vstack([first, second])
            for slot in range(10):
                assert np.allclose(store.get(slot), everything[slot])

    def test_get_out_of_range(self, store_path):
        with FeatureStore.create(store_path, dim=2) as store:
            store.append([1.0, 2.0])
            with pytest.raises(StoreError, match="range"):
                store.get(1)
            with pytest.raises(StoreError, match="range"):
                store.get(-1)

    def test_append_validates_vector(self, store_path):
        with FeatureStore.create(store_path, dim=3) as store:
            with pytest.raises(StoreError, match="dim"):
                store.append([1.0, 2.0])
            with pytest.raises(StoreError, match="non-finite"):
                store.append([1.0, np.nan, 2.0])

    def test_get_returns_copy(self, store_path):
        with FeatureStore.create(store_path, dim=2) as store:
            store.append([1.0, 2.0])
            vector = store.get(0)
            vector[0] = 99.0
            assert store.get(0)[0] == 1.0

    def test_get_many_order(self, store_path, rng):
        vectors = rng.random((8, 2))
        with FeatureStore.create(store_path, dim=2, page_records=2) as store:
            for v in vectors:
                store.append(v)
            out = store.get_many([5, 0, 3])
            assert np.allclose(out, vectors[[5, 0, 3]])

    def test_read_all(self, store_path, rng):
        vectors = rng.random((9, 4))
        with FeatureStore.create(store_path, dim=4, page_records=4) as store:
            for v in vectors:
                store.append(v)
            assert np.allclose(store.read_all(), vectors)

    def test_read_all_empty(self, store_path):
        with FeatureStore.create(store_path, dim=4) as store:
            assert store.read_all().shape == (0, 4)


class TestPagingAndCache:
    def test_page_reads_counted(self, store_path, rng):
        vectors = rng.random((16, 2))
        with FeatureStore.create(store_path, dim=2, page_records=4) as store:
            for v in vectors:
                store.append(v)
        with FeatureStore.open(store_path, buffer_pages=2) as store:
            store.get(0)   # page 0: miss
            store.get(1)   # page 0: hit
            store.get(4)   # page 1: miss
            store.get(8)   # page 2: miss, evicts page 0
            store.get(0)   # page 0: miss again
            assert store.page_reads == 4
            assert store.pool.hits == 1

    def test_sequential_locality(self, store_path, rng):
        vectors = rng.random((64, 2))
        with FeatureStore.create(store_path, dim=2, page_records=8) as store:
            for v in vectors:
                store.append(v)
        with FeatureStore.open(store_path, buffer_pages=2) as store:
            for slot in range(64):
                store.get(slot)
            assert store.page_reads == 8  # one miss per page

    def test_tail_reads_before_flush(self, store_path):
        with FeatureStore.create(store_path, dim=2, page_records=100) as store:
            store.append([1.0, 2.0])
            # Unflushed tail page must still be readable.
            assert np.allclose(store.get(0), [1.0, 2.0])

    def test_crash_before_flush_loses_tail_only(self, store_path):
        store = FeatureStore.create(store_path, dim=2, page_records=4)
        store.append([1.0, 1.0])
        store.flush()
        store.append([2.0, 2.0])
        # Simulate crash: drop the handle without close/flush.
        store._file.close()
        with FeatureStore.open(store_path) as reopened:
            assert len(reopened) == 1
            assert np.allclose(reopened.get(0), [1.0, 1.0])


class TestFlushOrdering:
    """The two-phase flush: data is fsynced *before* the header count.

    Regression for a write-ordering hole: flush used to write the tail
    page and the new header count, then fsync once — the kernel may
    persist the header before the data, and a crash in that window
    leaves a count that promises records whose bytes never hit the
    disk.  The fix fsyncs the data, then writes the header, then fsyncs
    again, so a persisted count always refers to persisted records.
    """

    def test_flush_fsyncs_data_before_header_write(self, store_path):
        from tests.faults import CountingFS

        fs = CountingFS()
        store = FeatureStore.create(store_path, dim=2, page_records=4, fs=fs)
        store.append([1.0, 1.0])
        start = fs.count
        store.flush()
        flush_calls = fs.calls[start:]
        # tail-page write, data fsync, header write, header fsync —
        # the data fsync strictly between the two writes is the fix.
        assert flush_calls == ["write", "fsync", "write", "fsync"]
        store.close()

    def test_crash_between_fsyncs_keeps_count_and_data_consistent(
        self, store_path
    ):
        """Die after the data fsync but before the header fsync: the
        reopened store sees the *old* count with intact records — never
        a count ahead of the data."""
        from tests.faults import FaultFS, InjectedCrash

        fs = FaultFS(crash_at=10**9)  # calibrate below, no crash yet
        store = FeatureStore.create(store_path, dim=2, page_records=4, fs=fs)
        store.append([1.0, 1.0])
        store.flush()
        store.append([2.0, 2.0])
        # The next flush crosses write/fsync/write/fsync; crash before
        # the final fsync (the header may or may not have reached disk
        # — either way the data it could promise is already durable).
        fs.crash_at = fs.count + 3
        with pytest.raises(InjectedCrash):
            store.flush()
        store._file.close()
        with FeatureStore.open(store_path) as reopened:
            assert len(reopened) in (1, 2)
            for slot in range(len(reopened)):
                assert np.allclose(reopened.get(slot), [slot + 1.0] * 2)
