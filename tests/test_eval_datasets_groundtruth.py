"""Tests for corpus generation and relevance judgments."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.eval.datasets import (
    CORPUS_CLASS_NAMES,
    gaussian_clusters,
    make_class_image,
    make_corpus,
    make_corpus_images,
    uniform_vectors,
)
from repro.eval.groundtruth import RelevanceJudgments


class TestCorpus:
    def test_eight_classes(self):
        assert len(CORPUS_CLASS_NAMES) == 8

    def test_corpus_size_and_labels(self):
        corpus = make_corpus(2, size=16, seed=0)
        assert len(corpus) == 16
        labels = [label for _, label in corpus]
        for name in CORPUS_CLASS_NAMES:
            assert labels.count(name) == 2

    def test_deterministic_given_seed(self):
        a = make_corpus(1, size=16, seed=3)
        b = make_corpus(1, size=16, seed=3)
        for (img_a, lbl_a), (img_b, lbl_b) in zip(a, b):
            assert lbl_a == lbl_b
            assert img_a == img_b

    def test_different_seeds_differ(self):
        a = make_corpus(1, size=16, seed=1)
        b = make_corpus(1, size=16, seed=2)
        assert any(img_a != img_b for (img_a, _), (img_b, _) in zip(a, b))

    def test_requested_image_size(self):
        corpus = make_corpus(1, size=24, seed=0)
        for image, _ in corpus:
            assert image.width == 24
            assert image.height == 24

    def test_subset_of_classes(self):
        corpus = make_corpus(3, size=16, seed=0, classes=("noise_fine",))
        assert len(corpus) == 3
        assert all(label == "noise_fine" for _, label in corpus)

    def test_parallel_lists_variant(self):
        images, labels = make_corpus_images(1, size=16, seed=0)
        assert len(images) == len(labels) == 8

    def test_unknown_class_rejected(self, rng):
        with pytest.raises(ReproError, match="unknown corpus class"):
            make_class_image("cats", rng)

    def test_per_class_validated(self):
        with pytest.raises(ReproError):
            make_corpus(0)

    def test_classes_visually_distinct(self):
        # Mean color separates at least the color classes.
        images, labels = make_corpus_images(1, size=32, seed=0)
        by_label = dict(zip(labels, images))
        red_mean = by_label["red_scenes"].pixels[..., 0].mean()
        green_mean = by_label["green_scenes"].pixels[..., 1].mean()
        assert red_mean > by_label["green_scenes"].pixels[..., 0].mean()
        assert green_mean > by_label["red_scenes"].pixels[..., 1].mean()


class TestVectorDatasets:
    def test_uniform_shape_and_range(self):
        vectors = uniform_vectors(50, 7, seed=0)
        assert vectors.shape == (50, 7)
        assert vectors.min() >= 0.0
        assert vectors.max() <= 1.0

    def test_uniform_deterministic(self):
        assert np.array_equal(uniform_vectors(10, 3, seed=5), uniform_vectors(10, 3, seed=5))

    def test_uniform_validates(self):
        with pytest.raises(ReproError):
            uniform_vectors(0, 3)

    def test_clusters_shape_and_labels(self):
        vectors, labels = gaussian_clusters(100, 5, n_clusters=4, seed=0)
        assert vectors.shape == (100, 5)
        assert labels.shape == (100,)
        assert set(labels) <= set(range(4))

    def test_clusters_are_tight(self):
        vectors, labels = gaussian_clusters(200, 4, n_clusters=4, cluster_std=0.01, seed=0)
        for cluster in range(4):
            members = vectors[labels == cluster]
            if len(members) > 1:
                spread = np.linalg.norm(members - members.mean(axis=0), axis=1).mean()
                assert spread < 0.05

    def test_clusters_validate(self):
        with pytest.raises(ReproError):
            gaussian_clusters(10, 2, n_clusters=0)
        with pytest.raises(ReproError):
            gaussian_clusters(10, 2, cluster_std=-0.1)


class TestRelevanceJudgments:
    def test_from_labels_excludes_self(self):
        judgments = RelevanceJudgments.from_labels([0, 1, 2, 3], ["a", "a", "b", "a"])
        assert judgments.relevant(0) == {1, 3}
        assert judgments.relevant(2) == frozenset()

    def test_n_relevant(self):
        judgments = RelevanceJudgments.from_labels([0, 1, 2], ["x", "x", "x"])
        assert judgments.n_relevant(0) == 2

    def test_unknown_query(self):
        judgments = RelevanceJudgments.from_labels([0], ["a"])
        with pytest.raises(ReproError, match="no judgments"):
            judgments.relevant(99)

    def test_contains_and_len(self):
        judgments = RelevanceJudgments.from_labels([0, 1], ["a", "b"])
        assert 0 in judgments
        assert 99 not in judgments
        assert len(judgments) == 2

    def test_filter_queries(self):
        judgments = RelevanceJudgments.from_labels([0, 1, 2], ["a", "a", "a"])
        filtered = judgments.filter_queries([1])
        assert len(filtered) == 1
        assert filtered.relevant(1) == {0, 2}

    def test_validates_input(self):
        with pytest.raises(ReproError, match="ids but"):
            RelevanceJudgments.from_labels([0], ["a", "b"])
        with pytest.raises(ReproError, match="unique"):
            RelevanceJudgments.from_labels([0, 0], ["a", "b"])
