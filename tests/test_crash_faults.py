"""Crash-recovery suite: kill the process at every durability boundary.

The acceptance criterion of the durability subsystem: a crash at *any*
filesystem boundary — mid journal append, between fsync and rename,
half-way through snapshot staging — loses **zero acknowledged writes**,
and post-recovery query results are bit-identical to a never-crashed
oracle that applied the same acknowledged mutations.

Three layers of escalating realism:

1. **In-process exhaustive sweep** — :class:`tests.faults.FaultFS` in
   ``raise`` mode throws :class:`InjectedCrash` (a ``BaseException``)
   before the Nth boundary, for every N the workload crosses.  Fast
   enough to sweep every single boundary in the default test run.
2. **Subprocess kill -9** — the same scripted workload in a child
   process (``python -m tests.faults``) that ``os._exit(137)``'s at the
   injected boundary: no ``finally`` blocks, no buffered-file flushing,
   honest page-cache state.  Sampled boundaries by default; set
   ``REPRO_FAULTS_EXHAUSTIVE=1`` to sweep all of them.
3. **Journaled scheduler end-to-end** — the full serving stack
   (scheduler group commit, save barriers, HTTP front end, graceful
   shutdown) against a durable root, recovered and compared after.

Contract checked everywhere: recovered state == oracle(first M steps)
for some M ≥ number of acknowledged steps (a durable-but-unacked
*suffix* is acceptable — log-before-ack means durability can only run
ahead of acknowledgement, never behind).
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.db.fsutil import FileSystem
from repro.db.recovery import open_serving_root, recover
from repro.errors import ServeError, ShuttingDownError
from repro.serve.scheduler import QueryScheduler
from repro.serve.shard import ShardedEngine

from tests import faults
from tests.faults import CountingFS, FaultFS, InjectedCrash

EXHAUSTIVE = os.environ.get("REPRO_FAULTS_EXHAUSTIVE") == "1"


def _states_match(recovered, oracle) -> bool:
    try:
        faults.assert_states_match(recovered, oracle)
    except AssertionError:
        return False
    return True


_ORACLES: dict[int, object] = {}


def _oracle(n_steps: int):
    """A never-crashed database that applied the first ``n_steps`` steps.

    Cached per step count: the sweep compares against the same oracles
    hundreds of times, and comparisons only read.
    """
    if n_steps not in _ORACLES:
        db = faults.seed_database()
        faults.apply_steps_directly(db, faults.workload_steps()[:n_steps])
        _ORACLES[n_steps] = db
    return _ORACLES[n_steps]


def _assert_acked_prefix_survived(root, acked: int) -> None:
    """The durability contract, as an assertion.

    The recovered root must equal the oracle at *some* step count
    ``M >= acked`` (an unacked suffix may have reached the disk before
    the crash; an acked prefix must have).  A root killed before its
    first snapshot may legitimately be empty — but only if nothing was
    acknowledged yet.
    """
    recovered, _report = recover(root, faults.make_schema())
    if acked == 0 and len(recovered) == 0:
        return
    n_steps = len(faults.workload_steps())
    for m in range(acked, n_steps + 1):
        if _states_match(recovered, _oracle(m)):
            return
    raise AssertionError(
        f"recovered state ({len(recovered)} items) matches no oracle with "
        f">= {acked} acknowledged steps applied — an acknowledged write "
        f"was lost or corrupted"
    )


def _run_workload(
    root: Path, fs: FileSystem, n_shards: int, backend: str | None = None
) -> int:
    """Drive the scripted workload through a journaled engine.

    Returns how many steps were *acknowledged* (the engine call —
    journal append + apply + fsync — returned).  An
    :class:`InjectedCrash` propagates to the caller, exactly like a
    power cut would end the process.

    With a ``backend`` spec the index cores live on that storage
    backend (writing through the same injected ``fs``) and linear-scan
    indexes are built before the mutation stream, so the sweep also
    crosses the backend's page-write/header/flush boundaries.
    """
    backend_factory = None
    index_factory = None
    if backend is not None:
        from repro.db.backend import resolve_backend_factory
        from repro.index.linear import LinearScanIndex

        backend_factory = resolve_backend_factory(backend, fs=fs)
        index_factory = LinearScanIndex
    db, journal_set, _ = open_serving_root(
        root,
        faults.seed_database(backend=backend_factory, index_factory=index_factory),
        n_shards=n_shards,
        fs=fs,
    )
    engine = ShardedEngine(db, n_shards, journal=journal_set)
    if backend is not None:
        for shard in engine.shards:
            shard.build_indexes()
    acked = 0
    for kind, payload in faults.workload_steps():
        if kind == "add":
            engine.add_vectors(payload)
        else:
            engine.remove(payload)
        acked += 1
    engine.close()
    return acked


def _count_boundaries(
    tmp_path: Path, n_shards: int, backend: str | None = None
) -> int:
    fs = CountingFS()
    acked = _run_workload(tmp_path / "calibrate", fs, n_shards, backend)
    assert acked == len(faults.workload_steps())
    return fs.count


class TestInProcessSweep:
    """Exhaustive: crash before every single boundary, in-process."""

    @pytest.mark.parametrize("n_shards", [1, 2])
    def test_every_boundary_preserves_acked_writes(self, tmp_path, n_shards):
        total = _count_boundaries(tmp_path, n_shards)
        assert total > 20  # the workload crosses plenty of boundaries
        for crash_at in range(total):
            root = tmp_path / f"crash-{n_shards}-{crash_at}"
            acked = 0
            try:
                acked = _run_workload(root, FaultFS(crash_at), n_shards)
            except InjectedCrash:
                pass
            else:
                pytest.fail(f"boundary {crash_at} of {total} never crashed")
            _assert_acked_prefix_survived(root, acked)

    def test_crash_free_run_acks_everything(self, tmp_path):
        acked = _run_workload(tmp_path / "clean", FileSystem(), 1)
        assert acked == len(faults.workload_steps())
        _assert_acked_prefix_survived(tmp_path / "clean", acked)


class TestMmapBackendSweep:
    """The same contract with index cores on the mmap backend.

    The journaled mutation stream now *also* crosses the backend's own
    write boundaries — page writes, the two-phase header rewrite,
    flush fsyncs — and a crash at any of them must still lose zero
    acknowledged writes.  (The backend holds derived state: recovery
    replays the journal onto a snapshot and rebuilds cores from
    scratch, so a torn core file can never surface — this sweep proves
    the mutation path itself never acknowledges past a vulnerable
    window.)
    """

    @pytest.mark.parametrize("n_shards", [1, 2])
    def test_boundaries_preserve_acked_writes(self, tmp_path, n_shards):
        spec = f"mmap:{tmp_path / 'cal-cores'}"
        total = _count_boundaries(tmp_path, n_shards, spec)
        baseline = _count_boundaries(tmp_path / "mem", n_shards)
        assert total > baseline  # the backend write path joined the count
        if EXHAUSTIVE:
            points = list(range(total))
        else:
            points = sorted(
                {1, total // 6, total // 3, total // 2, (2 * total) // 3,
                 (5 * total) // 6, total - 2, total - 1}
            )
        for crash_at in points:
            root = tmp_path / f"crash-{n_shards}-{crash_at}"
            backend = f"mmap:{tmp_path / f'cores-{n_shards}-{crash_at}'}"
            acked = 0
            try:
                acked = _run_workload(root, FaultFS(crash_at), n_shards, backend)
            except InjectedCrash:
                pass
            else:
                pytest.fail(f"boundary {crash_at} of {total} never crashed")
            _assert_acked_prefix_survived(root, acked)

    def test_recovery_replays_to_bit_identical_state(self, tmp_path):
        """Crash mid-stream on mmap, recover onto mmap: recovered state
        answers queries bit-identically to the memory-backend oracle."""
        from repro.db.backend import resolve_backend_factory
        from repro.index.linear import LinearScanIndex

        spec = f"mmap:{tmp_path / 'cal-cores'}"
        total = _count_boundaries(tmp_path, 1, spec)
        root = tmp_path / "root"
        backend = f"mmap:{tmp_path / 'crash-cores'}"
        acked = 0
        try:
            acked = _run_workload(root, FaultFS(total // 2), 1, backend)
        except InjectedCrash:
            pass
        recovered, _report = recover(
            root,
            faults.make_schema(),
            index_factory=LinearScanIndex,
            backend=resolve_backend_factory(f"mmap:{tmp_path / 'recover-cores'}"),
        )
        n_steps = len(faults.workload_steps())
        assert any(
            _states_match(recovered, _oracle(m))
            for m in range(acked, n_steps + 1)
        ), "mmap-backed recovery matches no valid oracle"


class TestSubprocessKill9:
    """The honest crash: ``os._exit(137)`` in a child process."""

    @staticmethod
    def _spawn(root: Path, crash_at: int, n_shards: int, backend: str | None = None):
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        argv = [
            sys.executable, "-m", "tests.faults",
            str(root), str(crash_at), str(n_shards),
        ]
        if backend is not None:
            argv.append(backend)
        return subprocess.run(
            argv,
            capture_output=True,
            text=True,
            timeout=120,
            env=env,
            cwd=str(Path(__file__).resolve().parent.parent),
        )

    @classmethod
    def _acked_steps(cls, stdout: str) -> int:
        acks = [line for line in stdout.splitlines() if line.startswith("ACK ")]
        return len(acks)

    @pytest.mark.parametrize("n_shards", [1, 2])
    def test_kill9_at_injected_boundaries(self, tmp_path, n_shards):
        calibration = self._spawn(tmp_path / "cal", -1, n_shards)
        assert calibration.returncode == 0, calibration.stderr
        total = int(calibration.stdout.split("DONE ")[1])
        if EXHAUSTIVE:
            points = list(range(total))
        else:
            # A spread sample: the boot-compaction window, the journal
            # append/fsync window, and the exact last boundaries.
            points = sorted(
                {0, 1, total // 4, total // 2, (3 * total) // 4, total - 2, total - 1}
            )
        for crash_at in points:
            root = tmp_path / f"kill-{crash_at}"
            child = self._spawn(root, crash_at, n_shards)
            assert child.returncode == 137, (
                f"boundary {crash_at}/{total}: expected kill-style exit, got "
                f"{child.returncode}\n{child.stderr}"
            )
            acked = self._acked_steps(child.stdout)
            _assert_acked_prefix_survived(root, acked)

    def test_kill9_on_mmap_backend(self, tmp_path):
        """kill -9 with index cores on the mmap backend: zero
        acknowledged writes lost, recovery replays to oracle state."""
        calibration = self._spawn(
            tmp_path / "cal", -1, 1, backend=f"mmap:{tmp_path / 'cal-cores'}"
        )
        assert calibration.returncode == 0, calibration.stderr
        total = int(calibration.stdout.split("DONE ")[1])
        points = sorted({1, total // 3, total // 2, (2 * total) // 3, total - 1})
        for crash_at in points:
            root = tmp_path / f"kill-{crash_at}"
            child = self._spawn(
                root, crash_at, 1, backend=f"mmap:{tmp_path / f'cores-{crash_at}'}"
            )
            assert child.returncode == 137, (
                f"boundary {crash_at}/{total}: expected kill-style exit, got "
                f"{child.returncode}\n{child.stderr}"
            )
            acked = self._acked_steps(child.stdout)
            _assert_acked_prefix_survived(root, acked)

    def test_restart_after_kill9_serves_identically(self, tmp_path):
        """Kill mid-workload, restart, and compare live query answers."""
        calibration = self._spawn(tmp_path / "cal", -1, 1)
        total = int(calibration.stdout.split("DONE ")[1])
        root = tmp_path / "root"
        child = self._spawn(root, (3 * total) // 4, 1)
        assert child.returncode == 137
        acked = self._acked_steps(child.stdout)
        db, journal_set, report = open_serving_root(
            root, faults.seed_database(), n_shards=1
        )
        assert report is not None
        with QueryScheduler(db, journal=journal_set, max_wait_ms=0.0) as scheduler:
            n_steps = len(faults.workload_steps())
            oracles = [_oracle(m) for m in range(acked, n_steps + 1)]
            matches = [o for o in oracles if _states_match(db, o)]
            assert matches, "restarted server state matches no valid oracle"
            oracle = matches[0]
            rng = np.random.default_rng(5)
            feature = db.schema.names[0]
            for query in rng.random((4, 6)):
                served = scheduler.submit_query(query, 5).result(timeout=10)
                direct = oracle.query(query, k=5, feature=feature)
                assert [(r.image_id, r.distance) for r in served.results] == [
                    (r.image_id, r.distance) for r in direct
                ]


class _FailingFsyncFS(FileSystem):
    """fsync starts failing (OSError, not a crash) after ``allow`` calls."""

    def __init__(self, allow: int) -> None:
        self.allow = allow
        self.calls = 0

    def fsync(self, file) -> None:  # type: ignore[override]
        self.calls += 1
        if self.calls > self.allow:
            raise OSError(28, "No space left on device")
        super().fsync(file)


class TestJournaledScheduler:
    """The serving stack end-to-end against a durable root."""

    def _open(self, tmp_path, n_shards: int = 1, fs: FileSystem | None = None):
        return open_serving_root(
            tmp_path / "root",
            faults.seed_database(),
            n_shards=n_shards,
            fs=fs or FileSystem(),
        )

    @pytest.mark.parametrize("n_shards", [1, 2])
    def test_acked_mutations_survive_restart(self, tmp_path, rng, n_shards):
        db, journal_set, _ = self._open(tmp_path, n_shards)
        with QueryScheduler(
            db, shards=n_shards, journal=journal_set, max_wait_ms=0.0
        ) as scheduler:
            added = scheduler.submit_add(
                rng.random((3, 6)), labels=["a", "b", "c"]
            ).result(timeout=10)
            scheduler.submit_remove([added.ids[1]]).result(timeout=10)
            info = scheduler.journal_info()
            # One add + one remove; the add fans out to one record per
            # home shard, so the record count grows with n_shards.
            n_records = info["records"]
            assert n_records >= 2 and info["syncs"] >= 2
        recovered, report = recover(tmp_path / "root", faults.make_schema())
        assert report.records_applied == n_records
        assert added.ids[0] in recovered.catalog.ids
        assert added.ids[1] not in recovered.catalog.ids
        assert recovered.catalog.get(added.ids[0]).label == "a"

    def test_save_compacts_and_resets_journal(self, tmp_path, rng):
        db, journal_set, _ = self._open(tmp_path)
        with QueryScheduler(db, journal=journal_set, max_wait_ms=0.0) as scheduler:
            scheduler.submit_add(rng.random((2, 6))).result(timeout=10)
            assert scheduler.journal_info()["records"] == 1
            result = scheduler.submit_save().result(timeout=10)
            assert result.kind == "save"
            assert scheduler.journal_info()["records"] == 0
            after = scheduler.submit_add(rng.random((1, 6))).result(timeout=10)
        recovered, report = recover(tmp_path / "root", faults.make_schema())
        assert report.snapshot is not None and report.adds_applied == 1
        assert len(recovered) == 12 + 2 + 1
        assert after.ids[0] in recovered.catalog.ids

    def test_save_without_journal_fails_future_only(self, rng):
        db = faults.seed_database()
        with QueryScheduler(db, max_wait_ms=0.0) as scheduler:
            future = scheduler.submit_save()
            with pytest.raises(ServeError, match="no journal"):
                future.result(timeout=10)
            # The scheduler itself is unharmed.
            scheduler.submit_query(np.zeros(6), 3).result(timeout=10)

    def test_fsync_failure_fails_futures_not_process(self, tmp_path, rng):
        fs = _FailingFsyncFS(allow=10_000)
        db, journal_set, _ = self._open(tmp_path, fs=fs)
        with QueryScheduler(db, journal=journal_set, max_wait_ms=0.0) as scheduler:
            scheduler.submit_add(rng.random((1, 6))).result(timeout=10)
            fs.allow = fs.calls  # every fsync from here on fails
            with pytest.raises(OSError, match="No space"):
                scheduler.submit_add(rng.random((1, 6))).result(timeout=10)
            # Queries are unaffected — reads need no durability.
            scheduler.submit_query(np.zeros(6), 3).result(timeout=10)
            fs.allow = 10_000_000  # let the close-time sync succeed

    def test_failed_mutation_journals_nothing(self, tmp_path, rng):
        db, journal_set, _ = self._open(tmp_path)
        with QueryScheduler(db, journal=journal_set, max_wait_ms=0.0) as scheduler:
            from repro.errors import CatalogError

            future = scheduler.submit_remove([424242])
            with pytest.raises(CatalogError):
                future.result(timeout=10)
            assert scheduler.journal_info()["records"] == 0
        recovered, _ = recover(tmp_path / "root", faults.make_schema())
        assert len(recovered) == 12

    def test_replayed_records_surface_in_info(self, tmp_path, rng):
        db, journal_set, _ = self._open(tmp_path)
        with QueryScheduler(db, journal=journal_set, max_wait_ms=0.0) as scheduler:
            scheduler.submit_add(rng.random((2, 6))).result(timeout=10)
        db2, journal_set2, report = self._open(tmp_path)
        assert report is not None
        with QueryScheduler(db2, journal=journal_set2, max_wait_ms=0.0) as scheduler:
            assert scheduler.journal_info()["replayed"] == report.records_applied
            metrics_text = scheduler.render_metrics()
            assert 'repro_journal{figure="replayed"}' in metrics_text
            stats = scheduler.stats()
            assert stats.journaled and stats.journal_replayed >= 1


class TestGracefulShutdown:
    """Satellite 2: SIGTERM-style close fails queued work distinctly."""

    def test_submissions_after_close_raise_shutting_down(self, rng):
        db = faults.seed_database()
        scheduler = QueryScheduler(db, max_wait_ms=0.0)
        scheduler.close()
        with pytest.raises(ShuttingDownError):
            scheduler.submit_query(np.zeros(6), 3)
        with pytest.raises(ShuttingDownError):
            scheduler.submit_add(rng.random((1, 6)))
        with pytest.raises(ShuttingDownError):
            scheduler.submit_save()
        # ShuttingDownError still is a ServeError: HTTP maps it to 503
        # and pre-existing except-ServeError callers keep working.
        assert issubclass(ShuttingDownError, ServeError)

    def test_unstarted_close_fails_staged_futures(self, rng):
        db = faults.seed_database()
        scheduler = QueryScheduler(db, max_wait_ms=0.0, autostart=False)
        staged = [scheduler.submit_add(rng.random((1, 6))) for _ in range(3)]
        scheduler.close(drain=False)
        for future in staged:
            with pytest.raises(ShuttingDownError):
                future.result(timeout=10)

    def test_abandoning_close_settles_every_future(self, tmp_path, rng):
        """drain=False: each future resolves *or* fails ShuttingDown —
        and whatever was acknowledged is on disk afterwards."""
        db, journal_set, _ = open_serving_root(
            tmp_path / "root", faults.seed_database(), n_shards=1
        )
        scheduler = QueryScheduler(
            db, journal=journal_set, max_wait_ms=50.0, max_batch=2
        )
        futures = [scheduler.submit_add(rng.random((1, 6))) for _ in range(8)]
        scheduler.close(drain=False)
        acked_ids = []
        abandoned = 0
        for future in futures:
            try:
                acked_ids.extend(future.result(timeout=10).ids)
            except ShuttingDownError:
                abandoned += 1
        recovered, _ = recover(tmp_path / "root", faults.make_schema())
        for image_id in acked_ids:
            assert image_id in recovered.catalog.ids
        assert len(recovered) == 12 + len(acked_ids)

    def test_draining_close_serves_everything(self, tmp_path, rng):
        db, journal_set, _ = open_serving_root(
            tmp_path / "root", faults.seed_database(), n_shards=1
        )
        scheduler = QueryScheduler(
            db, journal=journal_set, max_wait_ms=5.0, max_batch=4
        )
        futures = [scheduler.submit_add(rng.random((1, 6))) for _ in range(6)]
        scheduler.close()  # drain=True
        ids = [future.result(timeout=10).ids[0] for future in futures]
        recovered, _ = recover(tmp_path / "root", faults.make_schema())
        assert all(image_id in recovered.catalog.ids for image_id in ids)


class TestJournaledHTTP:
    """HTTP round trip against a durable root, including POST /save."""

    def test_http_mutations_survive_restart(self, tmp_path, rng):
        from repro.serve.client import ServiceClient
        from repro.serve.http import QueryServer

        db, journal_set, _ = open_serving_root(
            tmp_path / "root", faults.seed_database(), n_shards=1
        )
        server = QueryServer(
            db, port=0, journal=journal_set, max_wait_ms=0.0
        ).start()
        try:
            client = ServiceClient(*server.address)
            health = client.wait_until_ready()
            assert health["durable"] is True
            assert health["journal"]["records"] == 0
            added = client.add(rng.random((2, 6)).tolist(), labels=["x", "y"])
            client.remove([added["ids"][1]])
            saved = client.save()
            assert saved["saved"] is True
            assert client.healthz()["journal"]["records"] == 0
            again = client.add(rng.random((1, 6)).tolist())
            stats = client.stats()
            assert stats["journaled"] is True and stats["saves"] == 1
        finally:
            server.stop()
        recovered, _ = recover(tmp_path / "root", faults.make_schema())
        assert added["ids"][0] in recovered.catalog.ids
        assert added["ids"][1] not in recovered.catalog.ids
        assert again["ids"][0] in recovered.catalog.ids

    def test_save_without_journal_maps_to_400(self, rng):
        from repro.errors import ServeError as _ServeError
        from repro.serve.client import ServiceClient
        from repro.serve.http import QueryServer

        server = QueryServer(faults.seed_database(), port=0, max_wait_ms=0.0).start()
        try:
            client = ServiceClient(*server.address)
            client.wait_until_ready()
            assert client.healthz()["durable"] is False
            with pytest.raises(_ServeError, match="no journal"):
                client.save()
        finally:
            server.stop()
