"""Smoke tests: every shipped example must run and tell its story.

Each example is executed in-process (same interpreter, stdout captured)
and checked for the landmark lines of its narrative — so a refactor that
breaks an example's imports, API calls, or headline claim fails CI, not
a user's first five minutes with the library.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(name: str, capsys) -> str:
    """Execute one example as __main__ and return its stdout."""
    script = EXAMPLES / name
    assert script.exists(), f"missing example {name}"
    saved_argv = sys.argv
    sys.argv = [str(script)]
    try:
        runpy.run_path(str(script), run_name="__main__")
    finally:
        sys.argv = saved_argv
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = _run("quickstart.py", capsys)
    assert "top-5 by HSV histogram" in out
    assert "distance computations" in out


def test_photo_search(capsys):
    out = _run("photo_search.py", capsys)
    assert "precision" in out.lower() or "fusion" in out.lower()


def test_near_duplicates(capsys):
    out = _run("near_duplicates.py", capsys)
    assert "duplicate" in out.lower()


def test_texture_browser(capsys):
    out = _run("texture_browser.py", capsys)
    assert "texture" in out.lower()


def test_relevance_feedback(capsys):
    out = _run("relevance_feedback.py", capsys)
    assert "round 0" in out or "round" in out
    assert "hue bins" in out


def test_gemini_search(capsys):
    out = _run("gemini_search.py", capsys)
    assert "answered exactly" in out
    assert "FastMap" in out


def test_serve_demo(capsys):
    out = _run("serve_demo.py", capsys)
    assert "service telemetry" in out
    assert "bit-identical" in out


def test_browse_neighbors(capsys):
    out = _run("browse_neighbors.py", capsys)
    assert "browsing served" in out
    assert "x more" in out


@pytest.mark.parametrize(
    "name",
    [p.name for p in sorted(EXAMPLES.glob("*.py"))],
)
def test_every_example_has_docstring_and_main(name):
    """Examples are documentation: each needs a docstring and a main()."""
    text = (EXAMPLES / name).read_text()
    assert text.lstrip().startswith('"""'), name
    assert "def main()" in text, name
    assert 'if __name__ == "__main__":' in text, name
