"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.image.core import Image
from repro.image import synth


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic generator, fresh per test."""
    return np.random.default_rng(1234)


@pytest.fixture
def gray_image() -> Image:
    """A 32x32 grayscale ramp with some structure."""
    ys, xs = np.mgrid[0:32, 0:32].astype(np.float64)
    return Image((xs + ys) / 62.0)


@pytest.fixture
def rgb_image() -> Image:
    """A 32x32 RGB image with distinct regions (red disk on gray)."""
    base = synth.solid(32, 32, (0.5, 0.5, 0.5))
    return synth.draw_disk(base, (16, 16), 8, (0.9, 0.1, 0.1))


@pytest.fixture
def scene_image(rng: np.random.Generator) -> Image:
    """A random composed scene."""
    return synth.compose_scene(48, 48, rng, n_shapes=3)


@pytest.fixture
def tiny_corpus() -> tuple[list[Image], list[str]]:
    """Two images per class at 32x32 (kept small: extraction is the cost)."""
    from repro.eval.datasets import make_corpus_images

    return make_corpus_images(2, size=32, seed=5)
