"""Mutable-database serving: parity, generations, lazy invalidation.

The acceptance bar (ISSUE 5 / ``docs/mutability.md``):

* **mutation parity** — for randomized interleavings of add / remove /
  k-NN / range traffic across ≥3 index kinds, every result served
  *after* the mutations settle is bit-identical (ids and distance
  floats) to a fresh :class:`~repro.db.database.ImageDatabase` built
  over the same final item set;
* **linearizability** — mutations submitted through the scheduler act
  as barriers: queries admitted before see the old item set, queries
  after see the new one, in submission order;
* **no stale cache entry is ever served** — cached results carry the
  generation they were computed under; a mismatched lookup evicts and
  recomputes, certified by ``ServiceStats.cache_invalidations``;
* the database-level incremental paths (``add_image`` / ``add_vectors``
  / ``remove``) keep built indexes live instead of rebuilding, and bump
  per-feature generations monotonically.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.db.database import ImageDatabase
from repro.errors import CatalogError
from repro.features.base import PresetSignature
from repro.features.pipeline import FeatureSchema
from repro.index import LinearScanIndex, MTree, VPTree
from repro.metrics.minkowski import EuclideanDistance
from repro.serve import MutationResult, QueryScheduler, QueryServer, ServiceClient

DIM = 8

INDEX_KINDS = {
    "linear": lambda metric: LinearScanIndex(metric),
    "vptree": lambda metric: VPTree(metric, leaf_size=4),
    "mtree": lambda metric: MTree(metric, capacity=4),
}


def _make_db(factory, vectors):
    db = ImageDatabase(
        FeatureSchema([PresetSignature(DIM, "sig")]), index_factory=factory
    )
    db.add_vectors(vectors)
    db.build_indexes()
    return db


def _pairs(results):
    return [(r.image_id, r.distance) for r in results]


# ---------------------------------------------------------------------------
# Database-level incremental mutation
# ---------------------------------------------------------------------------
class TestDatabaseIncrementalMutation:
    @pytest.mark.parametrize("kind", sorted(INDEX_KINDS))
    def test_randomized_interleaving_matches_fresh_database(self, kind, rng):
        vectors = rng.random((50, DIM))
        db = _make_db(INDEX_KINDS[kind], vectors)
        table = dict(zip(db.catalog.ids, vectors))

        for _ in range(4):
            if rng.random() < 0.6 and len(table) > 8:
                doomed = [
                    int(i)
                    for i in rng.choice(sorted(table), size=3, replace=False)
                ]
                db.remove(doomed)
                for image_id in doomed:
                    del table[image_id]
            block = rng.random((int(rng.integers(1, 5)), DIM))
            for image_id, vector in zip(db.add_vectors(block), block):
                table[image_id] = vector
            # Interleave queries so lazy rebuilds can't mask a bug.
            db.query(rng.random(DIM), 5)

        # Fresh database over the final item set, same ids.
        fresh = ImageDatabase(
            FeatureSchema([PresetSignature(DIM, "sig")]),
            index_factory=INDEX_KINDS[kind],
        )
        fresh_index = INDEX_KINDS[kind](EuclideanDistance()).build(
            sorted(table), np.stack([table[i] for i in sorted(table)])
        )
        del fresh  # ids differ on re-add; the index is the oracle

        for _ in range(5):
            query = rng.random(DIM)
            assert _pairs(db.query(query, 7)) == [
                (nb.id, nb.distance) for nb in fresh_index.knn_search(query, 7)
            ]
            assert _pairs(db.range_query(query, 0.8)) == [
                (nb.id, nb.distance)
                for nb in fresh_index.range_search(query, 0.8)
            ]

    def test_mutations_keep_built_indexes_live(self, rng):
        db = _make_db(INDEX_KINDS["vptree"], rng.random((40, DIM)))
        index_before = db.index_for("sig")
        added = db.add_vectors(rng.random((2, DIM)))
        db.remove(added[:1])
        # Same index object: no stale-marking, no from-scratch rebuild.
        assert db.index_for("sig") is index_before

    def test_generations_bump_monotonically(self, rng):
        db = _make_db(INDEX_KINDS["linear"], rng.random((10, DIM)))
        g0 = db.generation("sig")
        ids = db.add_vectors(rng.random((2, DIM)))
        assert db.generation("sig") == g0 + 1
        db.remove([ids[0]])
        assert db.generation("sig") == g0 + 2
        db.delete_image(ids[1])
        assert db.generation("sig") == g0 + 3
        assert db.generations() == {"sig": g0 + 3}

    def test_remove_validates_before_mutating(self, rng):
        db = _make_db(INDEX_KINDS["linear"], rng.random((10, DIM)))
        ids = db.catalog.ids
        with pytest.raises(CatalogError, match="unknown image id"):
            db.remove([ids[0], 424242])
        # The valid id survived the failed call.
        assert ids[0] in db.catalog.ids
        assert len(db) == 10

    def test_remove_returns_records_in_call_order(self, rng):
        db = _make_db(INDEX_KINDS["linear"], rng.random((10, DIM)))
        ids = db.catalog.ids
        records = db.remove([ids[3], ids[1]])
        assert [r.image_id for r in records] == [ids[3], ids[1]]
        assert len(db) == 8


# ---------------------------------------------------------------------------
# Scheduler-level mutation serving
# ---------------------------------------------------------------------------
class TestSchedulerMutations:
    @pytest.mark.parametrize("kind", sorted(INDEX_KINDS))
    def test_interleaved_served_traffic_matches_fresh_database(self, kind, rng):
        vectors = rng.random((40, DIM))
        db = _make_db(INDEX_KINDS[kind], vectors)
        table = dict(zip(db.catalog.ids, vectors))
        pool = rng.random((6, DIM))

        scheduler = QueryScheduler(db, max_batch=8, max_wait_ms=1.0)
        served: list[tuple[str, int, object]] = []
        for step in range(30):
            roll = rng.random()
            if roll < 0.2:
                block = rng.random((int(rng.integers(1, 4)), DIM))
                result = scheduler.submit_add(block).result(timeout=30)
                for image_id, vector in zip(result.ids, block):
                    table[image_id] = vector
            elif roll < 0.35 and len(table) > 10:
                doomed = [
                    int(i)
                    for i in rng.choice(sorted(table), size=2, replace=False)
                ]
                result = scheduler.submit_remove(doomed).result(timeout=30)
                assert result.ids == doomed
                for image_id in doomed:
                    del table[image_id]
            elif roll < 0.7:
                pick = int(rng.integers(len(pool)))
                outcome = scheduler.submit_query(pool[pick], 5).result(timeout=30)
                served.append(("knn", pick, outcome))
            else:
                pick = int(rng.integers(len(pool)))
                outcome = scheduler.submit_range(pool[pick], 0.8).result(
                    timeout=30
                )
                served.append(("range", pick, outcome))

        # After the last mutation settled, re-serve the whole pool and
        # compare against a fresh build over the final item set.
        final = {
            kind_: [
                scheduler.submit_query(pool[pick], 5).result(timeout=30)
                if kind_ == "knn"
                else scheduler.submit_range(pool[pick], 0.8).result(timeout=30)
                for pick in range(len(pool))
            ]
            for kind_ in ("knn", "range")
        }
        stats = scheduler.stats()
        scheduler.close()

        oracle = INDEX_KINDS[kind](EuclideanDistance()).build(
            sorted(table), np.stack([table[i] for i in sorted(table)])
        )
        for pick in range(len(pool)):
            assert _pairs(final["knn"][pick].results) == [
                (nb.id, nb.distance) for nb in oracle.knn_search(pool[pick], 5)
            ]
            assert _pairs(final["range"][pick].results) == [
                (nb.id, nb.distance)
                for nb in oracle.range_search(pool[pick], 0.8)
            ]
        assert stats.mutations > 0

    def test_no_stale_cache_entry_is_ever_served(self, rng):
        db = _make_db(INDEX_KINDS["vptree"], rng.random((30, DIM)))
        scheduler = QueryScheduler(db, max_batch=4)
        query = rng.random(DIM)

        first = scheduler.submit_query(query, 5).result(timeout=10)
        hit = scheduler.submit_query(query, 5).result(timeout=10)
        assert not first.cache_hit and hit.cache_hit

        # An insert far outside the cached top-5 leaves the entry
        # provably valid: the stale stamp is *revalidated* (check-on-hit
        # against the mutation delta log), not evicted.
        far = scheduler.submit_add(query[None, :] + 100.0).result(timeout=10)
        after_far = scheduler.submit_query(query, 5).result(timeout=10)
        assert after_far.cache_hit
        assert scheduler.stats().cache_revalidations == 1
        assert scheduler.stats().cache_invalidations == 0
        assert _pairs(after_far.results) == _pairs(first.results)

        # An insert at distance zero beats the kth result: the entry is
        # genuinely stale and must be evicted, never served.
        near = scheduler.submit_add(query[None, :]).result(timeout=10)
        after_near = scheduler.submit_query(query, 5).result(timeout=10)
        assert not after_near.cache_hit
        assert scheduler.stats().cache_invalidations == 1
        assert after_near.results[0].image_id == near.ids[0]

        # Removing a cached result id invalidates too.
        scheduler.submit_remove(near.ids).result(timeout=10)
        after_remove = scheduler.submit_query(query, 5).result(timeout=10)
        assert not after_remove.cache_hit
        assert scheduler.stats().cache_invalidations == 2

        # Removing the far item (not in any cached top-5) revalidates.
        scheduler.submit_remove(far.ids).result(timeout=10)
        after_far_remove = scheduler.submit_query(query, 5).result(timeout=10)
        assert after_far_remove.cache_hit
        assert scheduler.stats().cache_revalidations >= 2

        # Generation stable again: the cache works as before, and every
        # served result equals a fresh query against the live database.
        again = scheduler.submit_query(query, 5).result(timeout=10)
        assert again.cache_hit
        assert _pairs(again.results) == _pairs(db.query(query, 5))
        scheduler.close()

    def test_mutation_barrier_orders_queries_around_it(self, rng):
        # Stage [query, add, query] before the worker starts: the whole
        # interleaving forms one batch, yet the first query must answer
        # against the pre-add item set and the second against the
        # post-add one.
        vectors = rng.random((20, DIM))
        db = _make_db(INDEX_KINDS["linear"], vectors)
        new_vector = np.zeros((1, DIM))  # guaranteed nearest to itself
        query = np.zeros(DIM)

        scheduler = QueryScheduler(
            db, max_batch=8, cache_size=0, autostart=False
        )
        before = scheduler.submit_query(query, 1)
        pending_add = scheduler.submit_add(new_vector)
        after = scheduler.submit_query(query, 1)
        scheduler.start()
        added = pending_add.result(timeout=10)
        assert before.result(timeout=10).results[0].image_id != added.ids[0]
        assert after.result(timeout=10).results[0].image_id == added.ids[0]
        assert after.result(timeout=10).results[0].distance == 0.0
        scheduler.close()

    def test_failed_mutation_poisons_nothing(self, rng):
        db = _make_db(INDEX_KINDS["linear"], rng.random((15, DIM)))
        scheduler = QueryScheduler(db, max_batch=4, autostart=False)
        query = rng.random(DIM)
        good_before = scheduler.submit_query(query, 3)
        doomed = scheduler.submit_remove([987654])
        good_after = scheduler.submit_query(query, 3)
        scheduler.start()
        with pytest.raises(CatalogError, match="unknown image id"):
            doomed.result(timeout=10)
        assert _pairs(good_before.result(timeout=10).results) == _pairs(
            good_after.result(timeout=10).results
        )
        stats = scheduler.stats()
        assert stats.mutations == 0  # failed mutations are not "applied"
        assert len(db) == 15
        scheduler.close()

    def test_mutation_result_shape(self, rng):
        db = _make_db(INDEX_KINDS["linear"], rng.random((10, DIM)))
        with QueryScheduler(db) as scheduler:
            result = scheduler.submit_add(
                rng.random((2, DIM)), labels=["a", "b"], names=["n0", "n1"]
            ).result(timeout=10)
        assert isinstance(result, MutationResult)
        assert result.kind == "add" and len(result.ids) == 2
        assert result.generations == db.generations()
        assert result.latency_s >= 0.0
        assert db.catalog.get(result.ids[0]).label == "a"
        assert db.catalog.get(result.ids[1]).name == "n1"

    def test_submit_mutation_after_close_rejected(self, rng):
        db = _make_db(INDEX_KINDS["linear"], rng.random((10, DIM)))
        scheduler = QueryScheduler(db)
        scheduler.close()
        from repro.errors import ServeError

        with pytest.raises(ServeError, match="closed"):
            scheduler.submit_add(rng.random((1, DIM)))
        with pytest.raises(ServeError, match="closed"):
            scheduler.submit_remove([0])


# ---------------------------------------------------------------------------
# HTTP front end
# ---------------------------------------------------------------------------
class TestHTTPMutations:
    @pytest.fixture
    def served(self, rng):
        vectors = np.random.default_rng(11).random((25, DIM))
        db = _make_db(INDEX_KINDS["vptree"], vectors)
        server = QueryServer(db, port=0, max_wait_ms=0.5).start()
        host, port = server.address
        client = ServiceClient(host, port)
        client.wait_until_ready(timeout=10.0)
        try:
            yield db, client
        finally:
            server.stop()

    def test_add_query_remove_round_trip(self, served, rng):
        db, client = served
        before = client.healthz()
        target = rng.random(DIM)
        response = client.add(
            target[None, :], labels=["fresh"], names=["the-new-one"]
        )
        assert len(response["ids"]) == 1
        assert response["generations"]["sig"] == before["generations"]["sig"] + 1

        hit = client.query(target, 1)
        assert hit["results"][0]["image_id"] == response["ids"][0]
        assert hit["results"][0]["distance"] == 0.0
        assert hit["results"][0]["label"] == "fresh"
        assert hit["results"][0]["name"] == "the-new-one"

        removed = client.remove(response["ids"])
        assert removed["removed"] == response["ids"]
        assert client.healthz()["images"] == before["images"]
        assert client.query(target, 1)["results"][0]["distance"] > 0.0

    def test_stats_expose_mutation_counters(self, served, rng):
        _, client = served
        query = rng.random(DIM)
        client.query(query, 3)
        client.query(query, 3)  # cache hit
        client.add(query[None, :])  # distance 0: beats the cached top-3
        client.query(query, 3)  # invalidation + recompute
        client.add(query[None, :] + 100.0)  # far outside the top-3
        client.query(query, 3)  # stale stamp, provably valid: revalidation
        stats = client.stats()
        assert stats["mutations"] == 2
        assert stats["cache_invalidations"] == 1
        assert stats["cache_revalidations"] == 1
        assert stats["cache_hits"] == 2

    def test_add_signatures_mapping_form(self, served, rng):
        _, client = served
        response = client.add(signatures={"sig": rng.random((2, DIM))})
        assert len(response["ids"]) == 2

    def test_malformed_mutations_rejected(self, served):
        _, client = served
        from repro.errors import ServeError

        with pytest.raises(ServeError, match="exactly one"):
            client._request("/add", {})
        with pytest.raises(ServeError, match="rectangular"):
            client._request("/add", {"vectors": [[0.1], [0.2, 0.3]]})
        with pytest.raises(ServeError, match="ids"):
            client._request("/remove", {"ids": []})
        with pytest.raises(ServeError, match="ids"):
            client._request("/remove", {"ids": ["zero"]})
        with pytest.raises(ServeError, match="unknown image id"):
            client.remove([31337])
        with pytest.raises(ServeError, match="matrix"):
            client.add(np.zeros((1, DIM + 3)))
