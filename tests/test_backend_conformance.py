"""Backend conformance suite: the :class:`VectorBackend` contract.

Every backend registered in :data:`repro.db.backend.BACKENDS` is run
through the same battery — a third backend joins this suite by adding
one ``@register_backend`` factory class, nothing here changes:

* **round-trips** — ``append``/``take``/``view`` preserve rows exactly
  (``np.array_equal``, not allclose);
* **view immutability** — ``view()`` is read-only, and a view taken
  *before* a mutation still shows the rows it showed then;
* **operation-stream parity** — a hypothesis-driven random stream of
  appends and takes applied to any backend matches the in-memory
  oracle bit for bit after every step;
* **edges** — single-row stores, shrink-to-one, growth across the
  capacity boundary, many-page stores;
* **bounded-pool accounting** — a bounded backend's ``pool_stats()``
  never reports more resident pages than its capacity.

See ``docs/storage.md`` for the protocol specification.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.db.backend import (
    BACKENDS,
    MemoryBackend,
    resolve_backend_factory,
)

_DIM = 5


def _factory(name, tmp_path, **overrides):
    """Instantiate any registered backend the uniform way."""
    kwargs = {"cache_pages": 3, "page_records": 4}
    kwargs.update(overrides)
    return BACKENDS[name](tmp_path / name, **kwargs)


def _rows(rng, n):
    return rng.random((n, _DIM))


@pytest.fixture(params=sorted(BACKENDS))
def factory(request, tmp_path):
    return _factory(request.param, tmp_path)


# ---------------------------------------------------------------------------
# Round-trips and views
# ---------------------------------------------------------------------------
class TestRoundTrips:
    def test_build_view_identity(self, factory, rng):
        rows = _rows(rng, 17)
        backend = factory(rows)
        view = backend.view()
        assert view.shape == (17, _DIM)
        assert view.dtype == np.float64
        assert np.array_equal(view, rows)
        assert len(backend) == 17 and backend.n_rows == 17
        assert backend.dim == _DIM
        backend.close()

    def test_append_returns_grown_view(self, factory, rng):
        backend = factory(_rows(rng, 3))
        extra = _rows(rng, 4)
        view = backend.append(extra)
        assert view.shape == (7, _DIM)
        assert np.array_equal(view[3:], extra)
        backend.close()

    def test_take_keeps_exactly_the_kept_rows(self, factory, rng):
        rows = _rows(rng, 10)
        backend = factory(rows)
        keep = [0, 2, 3, 7, 9]
        view = backend.take(keep)
        assert np.array_equal(view, rows[keep])
        assert len(backend) == 5
        backend.close()

    def test_rows_gathers_copies(self, factory, rng):
        rows = _rows(rng, 12)
        backend = factory(rows)
        gathered = backend.rows([11, 0, 5])
        assert np.array_equal(gathered, rows[[11, 0, 5]])
        gathered[0, 0] = -1.0  # a copy: the store must not see this
        assert np.array_equal(backend.view(), rows)
        backend.close()

    def test_iter_blocks_concatenates_to_view(self, factory, rng):
        rows = _rows(rng, 13)  # > 3 pages at page_records=4
        backend = factory(rows)
        starts, blocks = [], []
        for start, block in backend.iter_blocks():
            assert not block.flags.writeable
            starts.append(start)
            blocks.append(np.array(block))
        assert starts[0] == 0
        assert starts == sorted(starts)
        assert np.array_equal(np.concatenate(blocks), rows)
        backend.close()


class TestViewImmutability:
    def test_view_is_read_only(self, factory, rng):
        backend = factory(_rows(rng, 4))
        with pytest.raises(ValueError):
            backend.view()[0, 0] = 1.0
        backend.close()

    def test_view_survives_append(self, factory, rng):
        """A view taken before an append still shows the same rows."""
        rows = _rows(rng, 6)
        backend = factory(rows)
        before = backend.view()
        backend.append(_rows(rng, 5))
        assert np.array_equal(np.array(before[:6]), rows)
        backend.close()

    def test_view_survives_take(self, factory, rng):
        rows = _rows(rng, 6)
        backend = factory(rows)
        before = np.array(backend.view())
        backend.take([1, 4])
        assert np.array_equal(before, rows)
        backend.close()


# ---------------------------------------------------------------------------
# Edges
# ---------------------------------------------------------------------------
class TestEdges:
    def test_single_row(self, factory, rng):
        rows = _rows(rng, 1)
        backend = factory(rows)
        assert np.array_equal(backend.view(), rows)
        assert np.array_equal(backend.rows([0]), rows)
        backend.close()

    def test_take_to_empty_then_append(self, factory, rng):
        backend = factory(_rows(rng, 3))
        view = backend.take([])
        assert view.shape == (0, _DIM)
        assert len(backend) == 0
        assert list(backend.iter_blocks()) == []
        fresh = _rows(rng, 2)
        assert np.array_equal(backend.append(fresh), fresh)
        backend.close()

    def test_growth_across_capacity_boundaries(self, factory, rng):
        """One-row appends across the doubling boundaries (8, 16, 32)."""
        rows = _rows(rng, 1)
        backend = factory(rows)
        for _ in range(40):
            row = _rows(rng, 1)
            rows = np.vstack([rows, row])
            view = backend.append(row)
            assert np.array_equal(view, rows)
        backend.close()

    def test_shrink_at_quarter_occupancy(self, factory, rng):
        """Deleting down through the shrink threshold stays exact."""
        rows = _rows(rng, 33)
        backend = factory(rows)
        while rows.shape[0] > 1:
            keep = list(range(rows.shape[0] - 4))
            keep = keep or [0]
            rows = rows[keep]
            assert np.array_equal(backend.take(keep), rows)
        backend.close()

    def test_flush_is_idempotent(self, factory, rng):
        backend = factory(_rows(rng, 5))
        backend.flush()
        backend.flush()
        assert len(backend) == 5
        backend.close()


# ---------------------------------------------------------------------------
# Pool accounting (bounded backends only)
# ---------------------------------------------------------------------------
class TestPoolAccounting:
    def test_resident_never_exceeds_capacity(self, factory, rng):
        if not factory.bounded:
            pytest.skip("unbounded backend has no pool")
        backend = factory(_rows(rng, 50))  # 13 pages at page_records=4
        for _ in range(3):
            for _start, _block in backend.iter_blocks():
                pass
        backend.rows(list(range(0, 50, 7)))
        stats = backend.pool_stats()
        assert 0 < stats["resident"] <= stats["capacity"] == 3
        assert stats["misses"] > 0
        assert stats["evictions"] > 0
        backend.close()

    def test_factory_aggregates_closed_backends(self, factory, rng):
        if not factory.bounded:
            pytest.skip("unbounded backend has no pool")
        first = factory(_rows(rng, 20))
        list(first.iter_blocks())
        misses = first.pool_stats()["misses"]
        first.close()
        assert factory.pool_stats()["misses"] >= misses > 0
        assert factory.pool_stats()["resident"] == 0  # nothing open

    def test_unbounded_pool_is_all_zero(self, rng, tmp_path):
        factory = _factory("memory", tmp_path)
        backend = factory(_rows(rng, 9))
        assert set(backend.pool_stats().values()) == {0}
        assert set(factory.pool_stats().values()) == {0}
        backend.close()


# ---------------------------------------------------------------------------
# Hypothesis: operation-stream parity against the in-memory oracle
# ---------------------------------------------------------------------------
class TestOperationStreamParity:
    @pytest.mark.parametrize("name", sorted(BACKENDS))
    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_matches_memory_oracle(self, name, tmp_path_factory, data):
        """Any interleaving of appends and takes matches MemoryBackend
        bit for bit after every operation."""
        rng = np.random.default_rng(data.draw(st.integers(0, 2**32 - 1)))
        tmp = tmp_path_factory.mktemp("stream")
        factory = _factory(name, tmp)
        start = _rows(rng, data.draw(st.integers(1, 9)))
        backend = factory(start)
        oracle = MemoryBackend(start)
        n_ops = data.draw(st.integers(1, 10))
        for _ in range(n_ops):
            if len(oracle) == 0 or data.draw(st.booleans()):
                rows = _rows(rng, data.draw(st.integers(1, 7)))
                got = backend.append(rows)
                want = oracle.append(rows)
            else:
                n = len(oracle)
                keep = sorted(
                    data.draw(
                        st.sets(st.integers(0, n - 1), min_size=0, max_size=n)
                    )
                )
                got = backend.take(keep)
                want = oracle.take(keep)
            assert np.array_equal(got, want)
            assert np.array_equal(backend.view(), oracle.view())
            assert len(backend) == len(oracle)
        gather = [i for i in range(len(oracle)) if i % 3 == 0]
        if gather:
            assert np.array_equal(backend.rows(gather), oracle.rows(gather))
        backend.close()


# ---------------------------------------------------------------------------
# Registry and resolution wiring
# ---------------------------------------------------------------------------
class TestRegistry:
    def test_known_backends_registered(self):
        assert {"memory", "mmap"} <= set(BACKENDS)

    def test_factory_names_match_registry_keys(self, tmp_path):
        for name in BACKENDS:
            assert _factory(name, tmp_path).name == name

    def test_resolve_specs(self, tmp_path):
        assert resolve_backend_factory("memory").name == "memory"
        mmap = resolve_backend_factory(f"mmap:{tmp_path}", cache_pages=2)
        assert mmap.name == "mmap"
        assert mmap.root == tmp_path
        assert mmap.cache_pages == 2

    def test_resolve_env_default(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_BACKEND", f"mmap:{tmp_path}")
        monkeypatch.setenv("REPRO_CACHE_PAGES", "5")
        factory = resolve_backend_factory(None)
        assert factory.name == "mmap"
        assert factory.cache_pages == 5

    def test_resolve_passthrough(self, tmp_path):
        factory = _factory("mmap", tmp_path)
        assert resolve_backend_factory(factory) is factory

    def test_unknown_spec_raises(self):
        with pytest.raises(Exception, match="backend"):
            resolve_backend_factory("bogus")
