"""Tests for the M-tree: exactness, dynamic insertion, splits, paging."""

import numpy as np
import pytest

from repro.errors import IndexingError
from repro.index.linear import LinearScanIndex
from repro.index.mtree import MTree, PROMOTION_POLICIES
from repro.metrics.base import CountingMetric
from repro.metrics.histogram import ChiSquareDistance, HistogramIntersection
from repro.metrics.minkowski import EuclideanDistance, ManhattanDistance


def _build_pair(rng, n=150, dim=3, metric=None, **kwargs):
    metric = metric or EuclideanDistance()
    vectors = rng.random((n, dim))
    ids = list(range(n))
    linear = LinearScanIndex(metric).build(ids, vectors)
    tree = MTree(metric, **kwargs).build(ids, vectors)
    return linear, tree, vectors


class TestExactness:
    @pytest.mark.parametrize("dim", [1, 2, 4, 8])
    def test_knn_matches_linear_scan(self, rng, dim):
        linear, tree, _ = _build_pair(rng, dim=dim)
        for _ in range(10):
            query = rng.random(dim)
            expected = [n.distance for n in linear.knn_search(query, 8)]
            got = [n.distance for n in tree.knn_search(query, 8)]
            assert np.allclose(got, expected)

    @pytest.mark.parametrize("radius", [0.0, 0.1, 0.3, 1.0, 10.0])
    def test_range_matches_linear_scan(self, rng, radius):
        linear, tree, _ = _build_pair(rng)
        for _ in range(5):
            query = rng.random(3)
            expected = {n.id for n in linear.range_search(query, radius)}
            assert {n.id for n in tree.range_search(query, radius)} == expected

    @pytest.mark.parametrize("promotion", PROMOTION_POLICIES)
    def test_every_promotion_policy_stays_exact(self, rng, promotion):
        linear, tree, _ = _build_pair(rng, n=200, promotion=promotion)
        for _ in range(5):
            query = rng.random(3)
            assert [n.id for n in tree.knn_search(query, 7)] == [
                n.id for n in linear.knn_search(query, 7)
            ]

    @pytest.mark.parametrize("capacity", [4, 5, 16, 64])
    def test_every_capacity_stays_exact(self, rng, capacity):
        linear, tree, _ = _build_pair(rng, n=180, capacity=capacity)
        query = rng.random(3)
        assert [n.id for n in tree.knn_search(query, 9)] == [
            n.id for n in linear.knn_search(query, 9)
        ]

    def test_exact_under_l1(self, rng):
        linear, tree, _ = _build_pair(rng, metric=ManhattanDistance())
        query = rng.random(3)
        assert [n.id for n in tree.knn_search(query, 5)] == [
            n.id for n in linear.knn_search(query, 5)
        ]

    def test_exact_under_histogram_intersection(self, rng):
        from repro.features.base import l1_normalize

        vectors = np.array([l1_normalize(rng.random(16)) for _ in range(100)])
        metric = HistogramIntersection()
        ids = list(range(100))
        linear = LinearScanIndex(metric).build(ids, vectors)
        tree = MTree(metric).build(ids, vectors)
        query = l1_normalize(rng.random(16))
        assert [n.id for n in tree.knn_search(query, 5)] == [
            n.id for n in linear.knn_search(query, 5)
        ]

    def test_query_point_in_database_found_first(self, rng):
        _, tree, vectors = _build_pair(rng)
        result = tree.knn_search(vectors[37], 1)
        assert result[0].id == 37
        assert result[0].distance == pytest.approx(0.0)

    def test_duplicate_vectors_handled(self):
        vectors = np.zeros((30, 3))
        tree = MTree(EuclideanDistance()).build(list(range(30)), vectors)
        result = tree.range_search(np.zeros(3), 0.0)
        assert len(result) == 30

    def test_single_item(self):
        tree = MTree(EuclideanDistance()).build([5], np.array([[1.0, 2.0]]))
        assert tree.knn_search(np.zeros(2), 3)[0].id == 5

    def test_k_larger_than_size_returns_all(self, rng):
        _, tree, _ = _build_pair(rng, n=12)
        assert len(tree.knn_search(rng.random(3), 50)) == 12


class TestDynamicInsertion:
    def test_insert_then_query_finds_new_item(self, rng):
        _, tree, _ = _build_pair(rng, n=50)
        new_vector = rng.random(3)
        tree.insert(999, new_vector)
        assert tree.size == 51
        result = tree.knn_search(new_vector, 1)
        assert result[0].id == 999
        assert result[0].distance == pytest.approx(0.0)

    def test_incremental_equals_bulk(self, rng):
        """A tree grown by inserts answers queries exactly, like a bulk build."""
        vectors = rng.random((120, 4))
        metric = EuclideanDistance()
        bulk = MTree(metric).build(list(range(120)), vectors)
        grown = MTree(metric).build([0], vectors[:1])
        for i in range(1, 120):
            grown.insert(i, vectors[i])
        linear = LinearScanIndex(metric).build(list(range(120)), vectors)
        for _ in range(5):
            query = rng.random(4)
            expected = [n.id for n in linear.knn_search(query, 6)]
            assert [n.id for n in bulk.knn_search(query, 6)] == expected
            assert [n.id for n in grown.knn_search(query, 6)] == expected

    def test_insert_range_consistency(self, rng):
        _, tree, vectors = _build_pair(rng, n=60)
        for i in range(60, 80):
            tree.insert(i, rng.random(3))
        all_items = tree.range_search(np.full(3, 0.5), 10.0)
        assert len(all_items) == 80

    def test_insert_rejects_duplicate_id(self, rng):
        _, tree, _ = _build_pair(rng, n=10)
        with pytest.raises(IndexingError, match="already indexed"):
            tree.insert(3, rng.random(3))

    def test_insert_rejects_wrong_dim(self, rng):
        _, tree, _ = _build_pair(rng, n=10)
        with pytest.raises(IndexingError, match="dim"):
            tree.insert(100, rng.random(5))

    def test_insert_rejects_non_finite(self, rng):
        _, tree, _ = _build_pair(rng, n=10)
        with pytest.raises(IndexingError, match="non-finite"):
            tree.insert(100, np.array([np.nan, 0.0, 0.0]))

    def test_insert_before_build_rejected(self, rng):
        tree = MTree(EuclideanDistance())
        with pytest.raises(IndexingError, match="build"):
            tree.insert(0, rng.random(3))


class TestStructure:
    def test_tree_grows_in_height(self, rng):
        vectors = rng.random((300, 2))
        tree = MTree(EuclideanDistance(), capacity=4).build(
            list(range(300)), vectors
        )
        assert tree.height >= 3
        assert tree.n_splits > 0
        assert tree.n_pages > 10

    def test_small_build_is_single_leaf(self, rng):
        tree = MTree(EuclideanDistance(), capacity=8).build(
            list(range(5)), rng.random((5, 2))
        )
        assert tree.height == 1
        assert tree.n_pages == 1
        assert tree.n_splits == 0

    def test_no_page_exceeds_capacity(self, rng):
        capacity = 6
        tree = MTree(EuclideanDistance(), capacity=capacity).build(
            list(range(250)), rng.random((250, 3))
        )
        assert all(
            len(node.entries) <= capacity for node in tree._iter_nodes()
        )

    def test_covering_radii_are_upper_bounds(self, rng):
        """Every routing entry's radius must cover all objects below it."""
        metric = EuclideanDistance()
        tree = MTree(metric, capacity=5).build(
            list(range(150)), rng.random((150, 3))
        )

        def leaf_vectors(node):
            if node.is_leaf:
                return [e.vector for e in node.entries]
            out = []
            for entry in node.entries:
                out.extend(leaf_vectors(entry.child))
            return out

        for node in tree._iter_nodes():
            if node.is_leaf:
                continue
            for entry in node.entries:
                for vector in leaf_vectors(entry.child):
                    assert metric.distance(entry.vector, vector) <= entry.radius + 1e-9

    def test_d_parent_values_are_exact(self, rng):
        metric = EuclideanDistance()
        tree = MTree(metric, capacity=5).build(
            list(range(100)), rng.random((100, 3))
        )
        for node in tree._iter_nodes():
            if node.parent_entry is None:
                continue
            routing = node.parent_entry.vector
            for entry in node.entries:
                assert entry.d_parent == pytest.approx(
                    metric.distance(routing, entry.vector)
                )

    def test_build_stats_populated(self, rng):
        _, tree, _ = _build_pair(rng, n=200, capacity=5)
        stats = tree.build_stats
        assert stats.n_leaves > 1
        assert stats.n_nodes >= 1
        assert stats.depth >= 1
        assert stats.distance_computations > 0
        assert stats.extra["n_splits"] == tree.n_splits


class TestPruningAndAccounting:
    def test_prunes_on_low_dimensional_data(self, rng):
        _, tree, _ = _build_pair(rng, n=500, dim=2)
        total = 0
        for _ in range(10):
            tree.knn_search(rng.random(2), 5)
            total += tree.last_stats.distance_computations
        assert total < 0.5 * 10 * 500

    def test_small_radius_cheaper_than_large(self, rng):
        _, tree, _ = _build_pair(rng, n=400, dim=2)
        query = rng.random(2)
        tree.range_search(query, 0.01)
        small_cost = tree.last_stats.distance_computations
        tree.range_search(query, 2.0)
        large_cost = tree.last_stats.distance_computations
        assert small_cost < large_cost

    def test_distance_counts_match_counting_metric(self, rng):
        counter = CountingMetric(EuclideanDistance())
        vectors = rng.random((200, 3))
        tree = MTree(counter).build(list(range(200)), vectors)
        counter.reset()
        tree.knn_search(rng.random(3), 5)
        assert counter.count == tree.last_stats.distance_computations
        counter.reset()
        tree.range_search(rng.random(3), 0.2)
        assert counter.count == tree.last_stats.distance_computations

    def test_page_reads_reported(self, rng):
        _, tree, _ = _build_pair(rng, n=300, dim=2, capacity=5)
        tree.knn_search(rng.random(2), 5)
        stats = tree.last_stats
        assert stats.leaves_visited >= 1
        assert stats.nodes_visited >= 1
        assert stats.leaves_visited + stats.nodes_visited <= tree.n_pages

    def test_parent_filter_prunes_without_distance(self, rng):
        """With a tight radius most subtrees must be discarded."""
        _, tree, _ = _build_pair(rng, n=400, dim=2, capacity=5)
        tree.range_search(rng.random(2), 0.02)
        assert tree.last_stats.nodes_pruned > 0
        assert tree.last_stats.distance_computations < 400


class TestConfiguration:
    def test_rejects_non_metric(self):
        with pytest.raises(IndexingError, match="triangle inequality"):
            MTree(ChiSquareDistance())

    def test_rejects_tiny_capacity(self):
        with pytest.raises(IndexingError, match="capacity"):
            MTree(EuclideanDistance(), capacity=3)

    def test_rejects_unknown_promotion(self):
        with pytest.raises(IndexingError, match="promotion"):
            MTree(EuclideanDistance(), promotion="best")

    def test_deterministic_given_seed(self, rng):
        vectors = rng.random((100, 3))
        ids = list(range(100))
        a = MTree(EuclideanDistance(), promotion="random", seed=7).build(ids, vectors)
        b = MTree(EuclideanDistance(), promotion="random", seed=7).build(ids, vectors)
        query = rng.random(3)
        a.knn_search(query, 5)
        b.knn_search(query, 5)
        assert (
            a.last_stats.distance_computations == b.last_stats.distance_computations
        )

    def test_repr_shows_state(self, rng):
        tree = MTree(EuclideanDistance())
        assert "unbuilt" in repr(tree)
        tree.build([0, 1], rng.random((2, 2)))
        assert "size=2" in repr(tree)


class TestPageVectorCache:
    def test_matrix_cached_until_mutation(self, rng):
        tree = MTree(EuclideanDistance(), capacity=4).build(
            list(range(30)), rng.random((30, 3))
        )
        node = tree._root
        first = node.matrix()
        assert node.matrix() is first  # cached, not re-stacked
        assert np.array_equal(
            first, np.array([entry.vector for entry in node.entries])
        )

    def test_adopt_invalidates_cache(self, rng):
        tree = MTree(EuclideanDistance(), capacity=8).build(
            list(range(5)), rng.random((5, 3))
        )
        node = tree._root
        before = node.matrix()
        tree.insert(99, rng.random(3))
        after = node.matrix()
        assert after.shape[0] == len(node.entries)
        assert after.shape[0] == before.shape[0] + 1

    def test_queries_identical_after_incremental_inserts(self, rng):
        # Splits discard/adopt entries across pages; the caches must
        # never serve a stale block.
        vectors = rng.random((80, 4))
        tree = MTree(EuclideanDistance(), capacity=4).build(
            list(range(40)), vectors[:40]
        )
        oracle = LinearScanIndex(EuclideanDistance()).build(
            list(range(40)), vectors[:40]
        )
        for i in range(40, 80):
            tree.insert(i, vectors[i])
        oracle = LinearScanIndex(EuclideanDistance()).build(
            list(range(80)), vectors
        )
        for query in rng.random((6, 4)):
            assert tree.knn_search(query, 5) == oracle.knn_search(query, 5)
            assert tree.range_search(query, 0.6) == oracle.range_search(query, 0.6)
