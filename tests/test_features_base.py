"""Tests for the extractor protocol and vector utilities."""

import numpy as np
import pytest

from repro.errors import FeatureError
from repro.features.base import (
    FeatureExtractor,
    l1_normalize,
    l2_normalize,
    minmax_normalize,
)
from repro.image.core import Image


class _ConstantExtractor(FeatureExtractor):
    def __init__(self, output):
        self._name = "constant"
        self._dim = 3
        self._output = output

    def _extract(self, image):
        return self._output


class TestNormalizers:
    def test_l1_sums_to_one(self, rng):
        v = l1_normalize(rng.random(16))
        assert v.sum() == pytest.approx(1.0)

    def test_l1_zero_vector_passthrough(self):
        assert np.array_equal(l1_normalize(np.zeros(4)), np.zeros(4))

    def test_l2_unit_norm(self, rng):
        v = l2_normalize(rng.random(16))
        assert np.linalg.norm(v) == pytest.approx(1.0)

    def test_l2_zero_vector_passthrough(self):
        assert np.array_equal(l2_normalize(np.zeros(4)), np.zeros(4))

    def test_minmax_range(self, rng):
        v = minmax_normalize(rng.normal(size=16))
        assert v.min() == pytest.approx(0.0)
        assert v.max() == pytest.approx(1.0)

    def test_minmax_constant_maps_to_zeros(self):
        assert np.array_equal(minmax_normalize(np.full(4, 3.0)), np.zeros(4))

    def test_normalizers_return_copies(self):
        original = np.array([1.0, 1.0])
        for fn in (l1_normalize, l2_normalize, minmax_normalize):
            out = fn(original)
            out[0] = 99.0
            assert original[0] == 1.0


class TestExtractorContract:
    def test_valid_output_passes(self, gray_image):
        extractor = _ConstantExtractor(np.array([1.0, 2.0, 3.0]))
        out = extractor.extract(gray_image)
        assert out.shape == (3,)
        assert out.dtype == np.float64

    def test_wrong_dim_raises(self, gray_image):
        extractor = _ConstantExtractor(np.array([1.0, 2.0]))
        with pytest.raises(FeatureError, match="declared dim"):
            extractor.extract(gray_image)

    def test_non_finite_raises(self, gray_image):
        extractor = _ConstantExtractor(np.array([1.0, np.nan, 3.0]))
        with pytest.raises(FeatureError, match="non-finite"):
            extractor.extract(gray_image)

    def test_non_image_input_raises(self):
        extractor = _ConstantExtractor(np.zeros(3))
        with pytest.raises(FeatureError, match="requires an Image"):
            extractor.extract(np.zeros((4, 4)))

    def test_repr_mentions_name_and_dim(self):
        extractor = _ConstantExtractor(np.zeros(3))
        assert "constant" in repr(extractor)
        assert "dim=3" in repr(extractor)
