"""Tests for the GNAT: exactness, range tables, split-point selection."""

import numpy as np
import pytest

from repro.errors import IndexingError
from repro.index.gnat import GNAT, greedy_maxmin_rows, _InnerNode, _LeafNode
from repro.index.linear import LinearScanIndex
from repro.metrics.base import CountingMetric
from repro.metrics.histogram import ChiSquareDistance, HistogramIntersection
from repro.metrics.minkowski import EuclideanDistance, ManhattanDistance


def _build_pair(rng, n=150, dim=3, metric=None, **kwargs):
    metric = metric or EuclideanDistance()
    vectors = rng.random((n, dim))
    ids = list(range(n))
    linear = LinearScanIndex(metric).build(ids, vectors)
    tree = GNAT(metric, **kwargs).build(ids, vectors)
    return linear, tree, vectors


class TestGreedyMaxMin:
    def test_selects_requested_count(self, rng):
        vectors = rng.random((40, 2))
        rows = greedy_maxmin_rows(
            vectors, 5, EuclideanDistance().distance, rng
        )
        assert len(rows) == 5
        assert len(set(rows)) == 5

    def test_spreads_points(self, rng):
        # Two tight clusters far apart: the first two picks must straddle them.
        cluster_a = rng.normal(0.0, 0.01, (20, 2))
        cluster_b = rng.normal(10.0, 0.01, (20, 2))
        vectors = np.vstack([cluster_a, cluster_b])
        rows = greedy_maxmin_rows(vectors, 2, EuclideanDistance().distance, rng)
        sides = {row < 20 for row in rows}
        assert sides == {True, False}

    def test_handles_duplicates(self, rng):
        vectors = np.zeros((10, 2))
        rows = greedy_maxmin_rows(vectors, 3, EuclideanDistance().distance, rng)
        assert len(set(rows)) == 3

    def test_rejects_oversized_request(self, rng):
        with pytest.raises(IndexingError):
            greedy_maxmin_rows(rng.random((3, 2)), 5, EuclideanDistance().distance, rng)


class TestExactness:
    @pytest.mark.parametrize("dim", [1, 2, 4, 8])
    def test_knn_matches_linear_scan(self, rng, dim):
        linear, tree, _ = _build_pair(rng, dim=dim)
        for _ in range(10):
            query = rng.random(dim)
            expected = [n.distance for n in linear.knn_search(query, 8)]
            got = [n.distance for n in tree.knn_search(query, 8)]
            assert np.allclose(got, expected)

    @pytest.mark.parametrize("radius", [0.0, 0.1, 0.3, 1.0, 10.0])
    def test_range_matches_linear_scan(self, rng, radius):
        linear, tree, _ = _build_pair(rng)
        for _ in range(5):
            query = rng.random(3)
            expected = {n.id for n in linear.range_search(query, radius)}
            assert {n.id for n in tree.range_search(query, radius)} == expected

    @pytest.mark.parametrize("degree", [2, 4, 8, 16])
    def test_every_degree_stays_exact(self, rng, degree):
        linear, tree, _ = _build_pair(rng, n=200, degree=degree)
        query = rng.random(3)
        assert [n.id for n in tree.knn_search(query, 9)] == [
            n.id for n in linear.knn_search(query, 9)
        ]

    def test_exact_under_l1(self, rng):
        linear, tree, _ = _build_pair(rng, metric=ManhattanDistance())
        query = rng.random(3)
        assert [n.id for n in tree.knn_search(query, 5)] == [
            n.id for n in linear.knn_search(query, 5)
        ]

    def test_exact_under_histogram_intersection(self, rng):
        from repro.features.base import l1_normalize

        vectors = np.array([l1_normalize(rng.random(16)) for _ in range(100)])
        metric = HistogramIntersection()
        ids = list(range(100))
        linear = LinearScanIndex(metric).build(ids, vectors)
        tree = GNAT(metric).build(ids, vectors)
        query = l1_normalize(rng.random(16))
        assert [n.id for n in tree.knn_search(query, 5)] == [
            n.id for n in linear.knn_search(query, 5)
        ]

    def test_query_point_in_database_found_first(self, rng):
        _, tree, vectors = _build_pair(rng)
        result = tree.knn_search(vectors[37], 1)
        assert result[0].id == 37
        assert result[0].distance == pytest.approx(0.0)

    def test_duplicate_vectors_handled(self):
        vectors = np.zeros((30, 3))
        tree = GNAT(EuclideanDistance()).build(list(range(30)), vectors)
        result = tree.range_search(np.zeros(3), 0.0)
        assert len(result) == 30

    def test_single_item(self):
        tree = GNAT(EuclideanDistance()).build([5], np.array([[1.0, 2.0]]))
        assert tree.knn_search(np.zeros(2), 3)[0].id == 5

    def test_k_larger_than_size_returns_all(self, rng):
        _, tree, _ = _build_pair(rng, n=12)
        assert len(tree.knn_search(rng.random(3), 50)) == 12


class TestRangeTables:
    def test_intervals_cover_subtrees(self, rng):
        """Every stored [low, high] interval must bound its subtree's
        distances to the corresponding split point."""
        metric = EuclideanDistance()
        vectors = rng.random((200, 3))
        tree = GNAT(metric, degree=4).build(list(range(200)), vectors)

        def subtree_vectors(node):
            if node is None:
                return []
            if isinstance(node, _LeafNode):
                return list(node.vectors)
            out = list(node.split_vectors)
            for child in node.children:
                out.extend(subtree_vectors(child))
            return out

        def check(node):
            if node is None or isinstance(node, _LeafNode):
                return
            m = len(node.split_ids)
            for j in range(m):
                members = [node.split_vectors[j]] + subtree_vectors(node.children[j])
                for i in range(m):
                    for vector in members:
                        d = metric.distance(node.split_vectors[i], vector)
                        assert node.low[i, j] - 1e-9 <= d <= node.high[i, j] + 1e-9
            for child in node.children:
                check(child)

        check(tree._root)

    def test_prunes_on_clustered_data(self, rng):
        from repro.eval.datasets import gaussian_clusters

        vectors, _ = gaussian_clusters(500, 4, n_clusters=8, cluster_std=0.02, seed=3)
        tree = GNAT(EuclideanDistance(), degree=8).build(list(range(500)), vectors)
        total = 0
        for row in range(10):
            tree.knn_search(vectors[row], 5)
            total += tree.last_stats.distance_computations
        assert total < 0.5 * 10 * 500

    def test_distance_counts_match_counting_metric(self, rng):
        counter = CountingMetric(EuclideanDistance())
        vectors = rng.random((200, 3))
        tree = GNAT(counter).build(list(range(200)), vectors)
        counter.reset()
        tree.knn_search(rng.random(3), 5)
        assert counter.count == tree.last_stats.distance_computations
        counter.reset()
        tree.range_search(rng.random(3), 0.2)
        assert counter.count == tree.last_stats.distance_computations

    def test_small_radius_cheaper_than_large(self, rng):
        _, tree, _ = _build_pair(rng, n=400, dim=2)
        query = rng.random(2)
        tree.range_search(query, 0.01)
        small_cost = tree.last_stats.distance_computations
        tree.range_search(query, 2.0)
        large_cost = tree.last_stats.distance_computations
        assert small_cost < large_cost

    def test_build_stats_populated(self, rng):
        _, tree, _ = _build_pair(rng, n=300, degree=4)
        stats = tree.build_stats
        assert stats.n_nodes > 0
        assert stats.n_leaves > 0
        assert stats.depth > 0
        assert stats.distance_computations > 0


class TestConfiguration:
    def test_rejects_non_metric(self):
        with pytest.raises(IndexingError, match="triangle inequality"):
            GNAT(ChiSquareDistance())

    def test_rejects_bad_degree(self):
        with pytest.raises(IndexingError, match="degree"):
            GNAT(EuclideanDistance(), degree=1)

    def test_rejects_leaf_size_below_degree(self):
        with pytest.raises(IndexingError, match="leaf_size"):
            GNAT(EuclideanDistance(), degree=8, leaf_size=4)

    def test_deterministic_given_seed(self, rng):
        vectors = rng.random((150, 3))
        ids = list(range(150))
        a = GNAT(EuclideanDistance(), seed=7).build(ids, vectors)
        b = GNAT(EuclideanDistance(), seed=7).build(ids, vectors)
        query = rng.random(3)
        a.knn_search(query, 5)
        b.knn_search(query, 5)
        assert (
            a.last_stats.distance_computations == b.last_stats.distance_computations
        )

    def test_degree_two_behaves_like_binary_tree(self, rng):
        linear, tree, _ = _build_pair(rng, n=100, degree=2)
        query = rng.random(3)
        assert [n.id for n in tree.knn_search(query, 5)] == [
            n.id for n in linear.knn_search(query, 5)
        ]
