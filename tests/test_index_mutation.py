"""The index mutation protocol: insert_batch / delete / rebuild.

The pinned contract (``docs/mutability.md``):

* **live-set exactness** — after any interleaving of ``insert_batch``
  and ``delete`` calls, every query entry point (scalar, batched, the
  VP-tree's approximate mode, the Antipole's ids-only range) returns
  results bit-identical (ids *and* distance floats, same tie-breaks)
  to a fresh index built over the same final item set;
* **measured cost** — the pending-buffer overlay is counted: an
  externally wrapped :class:`~repro.metrics.base.CountingMetric` and
  the index's own ``SearchStats`` agree exactly, mutations or not, and
  batched per-query counters equal their scalar counterparts;
* **threshold rebuild** — the overlay folds back into the structure
  once ``pending + tombstones`` passes the configured threshold;
* **validation** — duplicate/unknown ids, wrong dimensionality, and
  non-finite vectors are rejected loudly, before any state changes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import IndexingError
from repro.index import (
    GNAT,
    AntipoleTree,
    FilterRefineIndex,
    KDTree,
    LAESAIndex,
    LinearScanIndex,
    MTree,
    VPTree,
)
from repro.metrics.base import CountingMetric
from repro.metrics.minkowski import EuclideanDistance, ManhattanDistance
from repro.reduce import KLTransform

DIM = 6

INDEX_FACTORIES = {
    "linear": lambda metric: LinearScanIndex(metric),
    "vptree": lambda metric: VPTree(metric, leaf_size=4),
    "antipole": lambda metric: AntipoleTree(metric),
    "kdtree": lambda metric: KDTree(metric),
    "laesa": lambda metric: LAESAIndex(metric, n_pivots=4),
    "mtree": lambda metric: MTree(metric, capacity=4),
    "gnat": lambda metric: GNAT(metric),
    "filter_refine": lambda metric: FilterRefineIndex(metric, KLTransform(3)),
}

#: Structures that absorb inserts in place (no pending buffer).
DYNAMIC_INSERT = {"linear", "laesa", "mtree"}
#: Structures that delete rows outright (no tombstones).
DYNAMIC_DELETE = {"linear", "laesa"}


def _pairs(neighbors):
    return [(nb.id, nb.distance) for nb in neighbors]


def _mutate(index, rng, table, next_id, rounds=3):
    """Random interleaving of inserts and deletes; updates ``table``."""
    for _ in range(rounds):
        if table and rng.random() < 0.5:
            doomed = [
                int(i)
                for i in rng.choice(
                    sorted(table), size=min(len(table) - 1, 4), replace=False
                )
            ]
            index.delete(doomed)
            for item_id in doomed:
                del table[item_id]
        count = int(rng.integers(1, 6))
        fresh_ids = list(range(next_id, next_id + count))
        next_id += count
        block = rng.random((count, DIM))
        index.insert_batch(fresh_ids, block)
        for item_id, vector in zip(fresh_ids, block):
            table[item_id] = vector
    return next_id


def _fresh(name, table, metric=None):
    ids = sorted(table)
    matrix = np.stack([table[item_id] for item_id in ids])
    return INDEX_FACTORIES[name](metric or EuclideanDistance()).build(ids, matrix)


@pytest.mark.parametrize("name", sorted(INDEX_FACTORIES))
class TestMutationParity:
    """Every index kind, every entry point: mutated == freshly built."""

    def test_interleaved_mutations_match_fresh_build(self, name, rng):
        n = 60
        vectors = rng.random((n, DIM))
        table = {i: vectors[i] for i in range(n)}
        index = INDEX_FACTORIES[name](EuclideanDistance()).build(
            list(range(n)), vectors
        )
        _mutate(index, rng, table, next_id=1000)
        fresh = _fresh(name, table)
        assert index.size == fresh.size == len(table)

        queries = rng.random((4, DIM))
        for query in queries:
            assert _pairs(index.knn_search(query, 7)) == _pairs(
                fresh.knn_search(query, 7)
            )
            assert _pairs(index.range_search(query, 0.6)) == _pairs(
                fresh.range_search(query, 0.6)
            )
        for got, want in zip(
            index.knn_search_batch(queries, 7), fresh.knn_search_batch(queries, 7)
        ):
            assert _pairs(got) == _pairs(want)
        for got, want in zip(
            index.range_search_batch(queries, 0.6),
            fresh.range_search_batch(queries, 0.6),
        ):
            assert _pairs(got) == _pairs(want)

    def test_batch_counters_equal_scalar_after_mutations(self, name, rng):
        n = 40
        vectors = rng.random((n, DIM))
        table = {i: vectors[i] for i in range(n)}
        index = INDEX_FACTORIES[name](EuclideanDistance()).build(
            list(range(n)), vectors
        )
        # Stay below the rebuild threshold so the overlay is exercised.
        index.delete([3, 9])
        extra = rng.random((5, DIM))
        index.insert_batch([900, 901, 902, 903, 904], extra)

        queries = rng.random((3, DIM))
        index.knn_search_batch(queries, 5)
        per_query = index.last_batch_stats
        for query, batched in zip(queries, per_query):
            index.knn_search(query, 5)
            assert index.last_stats == batched

    def test_counting_metric_agrees_with_stats(self, name, rng):
        if name == "kdtree":
            pytest.skip("KDTree requires a bare Minkowski metric by design")
        counting = CountingMetric(EuclideanDistance())
        n = 40
        vectors = rng.random((n, DIM))
        index = INDEX_FACTORIES[name](counting).build(list(range(n)), vectors)
        index.delete([1, 2])
        index.insert_batch([800, 801, 802], rng.random((3, DIM)))

        query = rng.random(DIM)
        before = counting.count
        index.knn_search(query, 6)
        assert counting.count - before == index.last_stats.distance_computations
        before = counting.count
        index.range_search(query, 0.7)
        assert counting.count - before == index.last_stats.distance_computations

    def test_insert_validation(self, name, rng):
        index = INDEX_FACTORIES[name](EuclideanDistance()).build(
            list(range(10)), rng.random((10, DIM))
        )
        with pytest.raises(IndexingError, match="already indexed"):
            index.insert_batch([3], rng.random((1, DIM)))
        with pytest.raises(IndexingError, match="dim"):
            index.insert_batch([100], rng.random((1, DIM + 2)))
        with pytest.raises(IndexingError, match="non-finite"):
            index.insert_batch([100], np.full((1, DIM), np.nan))
        with pytest.raises(IndexingError, match="duplicate"):
            index.insert_batch([100, 100], rng.random((2, DIM)))
        with pytest.raises(IndexingError, match="ids but"):
            index.insert_batch([100], rng.random((2, DIM)))
        unbuilt = INDEX_FACTORIES[name](EuclideanDistance())
        with pytest.raises(IndexingError, match="build"):
            unbuilt.insert_batch([0], rng.random((1, DIM)))

    def test_delete_validation(self, name, rng):
        index = INDEX_FACTORIES[name](EuclideanDistance()).build(
            list(range(10)), rng.random((10, DIM))
        )
        with pytest.raises(IndexingError, match="not indexed"):
            index.delete([99])
        index.delete([4])
        with pytest.raises(IndexingError, match="not indexed"):
            index.delete([4])  # double delete
        with pytest.raises(IndexingError, match="duplicate"):
            index.delete([5, 5])
        unbuilt = INDEX_FACTORIES[name](EuclideanDistance())
        with pytest.raises(IndexingError, match="build"):
            unbuilt.delete([0])

    def test_empty_insert_and_delete_are_noops(self, name, rng):
        index = INDEX_FACTORIES[name](EuclideanDistance()).build(
            list(range(8)), rng.random((8, DIM))
        )
        index.insert_batch([], np.empty((0, DIM)))
        index.delete([])
        assert index.size == 8

    def test_size_tracks_live_items(self, name, rng):
        index = INDEX_FACTORIES[name](EuclideanDistance()).build(
            list(range(20)), rng.random((20, DIM))
        )
        index.insert_batch([500, 501], rng.random((2, DIM)))
        assert index.size == 22
        index.delete([0, 500])
        assert index.size == 20


class TestOverlayMechanics:
    """The pending buffer / tombstone fallback, on a static tree."""

    def test_static_tree_buffers_then_rebuilds_at_threshold(self, rng):
        # Trigger: pending + tombstones >= max(rebuild_min,
        # rebuild_threshold * core).  With 20 core items and
        # rebuild_min=8, the threshold sits at 8 overlay entries.
        index = VPTree(EuclideanDistance()).build(
            list(range(20)), rng.random((20, DIM))
        )
        index.rebuild_min = 8  # shrink the floor for the test
        index.insert_batch(list(range(100, 105)), rng.random((5, DIM)))
        assert index.n_pending == 5 and index.n_tombstones == 0
        index.delete([0, 1])
        assert index.n_tombstones == 2
        # 5 pending + 2 tombstones = 7 < 8: still buffered.  One more
        # insert crosses the threshold and folds the overlay in.
        index.insert_batch([105], rng.random((1, DIM)))
        assert index.n_pending == 0 and index.n_tombstones == 0
        assert index.size == 24

    def test_dynamic_structures_never_buffer(self, rng):
        for name in sorted(DYNAMIC_INSERT):
            index = INDEX_FACTORIES[name](EuclideanDistance()).build(
                list(range(20)), rng.random((20, DIM))
            )
            index.insert_batch([300, 301], rng.random((2, DIM)))
            assert index.n_pending == 0, name
        for name in sorted(DYNAMIC_DELETE):
            index = INDEX_FACTORIES[name](EuclideanDistance()).build(
                list(range(20)), rng.random((20, DIM))
            )
            index.delete([0, 19])
            assert index.n_tombstones == 0, name

    def test_explicit_rebuild_folds_overlay(self, rng):
        index = VPTree(EuclideanDistance()).build(
            list(range(30)), rng.random((30, DIM))
        )
        index.delete([2])
        index.insert_batch([700], rng.random((1, DIM)))
        table = {
            nb.id: None for nb in index.range_search(np.zeros(DIM), np.inf)
        }
        index.rebuild()
        assert index.n_pending == 0 and index.n_tombstones == 0
        assert set(
            nb.id for nb in index.range_search(np.zeros(DIM), np.inf)
        ) == set(table)

    def test_deleting_everything_yields_empty_results(self, rng):
        index = VPTree(EuclideanDistance()).build(
            list(range(5)), rng.random((5, DIM))
        )
        index.delete(list(range(5)))
        assert index.size == 0
        query = rng.random(DIM)
        assert index.knn_search(query, 3) == []
        assert index.range_search(query, 10.0) == []

    def test_tombstoned_id_cannot_be_reinserted_before_rebuild(self, rng):
        index = VPTree(EuclideanDistance()).build(
            list(range(10)), rng.random((10, DIM))
        )
        index.delete([4])
        with pytest.raises(IndexingError, match="already indexed"):
            index.insert_batch([4], rng.random((1, DIM)))

    def test_knn_at_tombstone_boundary_matches_fresh(self, rng):
        # Regression shape: ties at the k-th distance straddling
        # tombstones must resolve exactly like a fresh build.
        vectors = np.zeros((6, DIM))
        vectors[:, 0] = [0.0, 1.0, 1.0, 1.0, 1.0, 2.0]
        index = LinearScanIndex(ManhattanDistance()).build(
            list(range(6)), vectors
        )
        tree = VPTree(ManhattanDistance()).build(list(range(6)), vectors)
        for structure in (index, tree):
            structure.delete([1, 3])
        table = {i: vectors[i] for i in (0, 2, 4, 5)}
        fresh = _fresh("vptree", table, ManhattanDistance())
        query = np.zeros(DIM)
        for structure in (index, tree):
            assert _pairs(structure.knn_search(query, 3)) == _pairs(
                fresh.knn_search(query, 3)
            )


class TestApproximateAndVariantEntryPoints:
    def test_vptree_approximate_covers_live_set(self, rng):
        n = 50
        vectors = rng.random((n, DIM))
        index = VPTree(EuclideanDistance()).build(list(range(n)), vectors)
        index.delete([0, 1])
        index.insert_batch([400, 401], rng.random((2, DIM)))
        query = rng.random(DIM)
        exact = index.knn_search(query, 6)
        approx = index.knn_search_approximate(query, 6, epsilon=0.0)
        assert _pairs(approx) == _pairs(exact)
        budgeted = index.knn_search_approximate(
            query, 6, max_distance_computations=10
        )
        assert all(nb.id not in (0, 1) for nb in budgeted)

    def test_antipole_ids_only_range_respects_overlay(self, rng):
        n = 40
        vectors = rng.random((n, DIM))
        index = AntipoleTree(EuclideanDistance()).build(list(range(n)), vectors)
        index.delete([5, 6])
        index.insert_batch([600], rng.random((1, DIM)))
        query = rng.random(DIM)
        ids = index.range_search_ids(query, 0.8)
        exact = [nb.id for nb in index.range_search(query, 0.8)]
        assert sorted(ids) == sorted(exact)
        assert 5 not in ids and 6 not in ids

    def test_mtree_scalar_insert_still_works(self, rng):
        index = MTree(EuclideanDistance()).build(
            list(range(12)), rng.random((12, DIM))
        )
        vector = rng.random(DIM)
        index.insert(99, vector)
        assert index.size == 13
        hit = index.knn_search(vector, 1)[0]
        assert hit.id == 99 and hit.distance == 0.0


class TestLAESAPivotDeletion:
    def test_deleting_a_pivot_object_keeps_results_exact(self, rng):
        n = 30
        vectors = rng.random((n, DIM))
        index = LAESAIndex(EuclideanDistance(), n_pivots=4).build(
            list(range(n)), vectors
        )
        pivots = index.pivot_ids
        index.delete(pivots[:2])  # the pivot *objects* leave the data
        assert index.n_pivots == 4  # the anchors survive
        assert index.pivot_ids == pivots
        table = {i: vectors[i] for i in range(n) if i not in pivots[:2]}
        fresh = _fresh("laesa", table)
        query = rng.random(DIM)
        assert _pairs(index.knn_search(query, 5)) == _pairs(
            fresh.knn_search(query, 5)
        )
        assert _pairs(index.range_search(query, 0.7)) == _pairs(
            fresh.range_search(query, 0.7)
        )
        assert all(nb.id not in pivots[:2] for nb in index.knn_search(query, n))


class TestAmortizedCoreGrowth:
    """Capacity-doubled core buffers: amortized appends, bit-exact results.

    ISSUE 9 tentpole (a): ``_append_core``/``_remove_core`` used to copy
    the whole (n, d) core per mutation (O(m·n) for a stream of m
    mutations).  The :class:`~repro.index.base.GrowableRows` store must
    (1) leave every query bit-identical to a fresh build after long
    randomized add/remove streams, and (2) reallocate only
    O(log(growth)) times — never once per append.
    """

    @pytest.mark.parametrize("name", sorted(DYNAMIC_INSERT))
    def test_long_mutation_stream_matches_fresh_build(self, name, rng):
        n = 24
        vectors = rng.random((n, DIM))
        table = {i: vectors[i] for i in range(n)}
        index = INDEX_FACTORIES[name](EuclideanDistance()).build(
            list(range(n)), vectors
        )
        next_id = 1000
        for round_ in range(40):
            count = int(rng.integers(1, 5))
            fresh_ids = list(range(next_id, next_id + count))
            next_id += count
            block = rng.random((count, DIM))
            index.insert_batch(fresh_ids, block)
            for item_id, vector in zip(fresh_ids, block):
                table[item_id] = vector
            if name in DYNAMIC_DELETE and len(table) > 8 and rng.random() < 0.4:
                doomed = [
                    int(i)
                    for i in rng.choice(sorted(table), size=3, replace=False)
                ]
                index.delete(doomed)
                for item_id in doomed:
                    del table[item_id]
            if round_ % 10 == 9:
                fresh = _fresh(name, table)
                query = rng.random(DIM)
                assert _pairs(index.knn_search(query, 7)) == _pairs(
                    fresh.knn_search(query, 7)
                )
                assert _pairs(index.range_search(query, 0.6)) == _pairs(
                    fresh.range_search(query, 0.6)
                )
        fresh = _fresh(name, table)
        assert index.size == fresh.size == len(table)
        for query in rng.random((4, DIM)):
            assert _pairs(index.knn_search(query, 9)) == _pairs(
                fresh.knn_search(query, 9)
            )

    @pytest.mark.parametrize("name", sorted(DYNAMIC_INSERT))
    def test_appends_do_not_recopy_storage_each_time(self, name, rng):
        """The backing array identity changes O(log n) times, not per append."""
        n = 16
        index = INDEX_FACTORIES[name](EuclideanDistance()).build(
            list(range(n)), rng.random((n, DIM))
        )
        appends = 120
        bases = set()
        next_id = 1000
        for i in range(appends):
            index.insert_batch([next_id], rng.random((1, DIM)))
            next_id += 1
            bases.add(id(index._core._rows))
        # Capacity doubling from 16 over 120 single-row appends needs at
        # most ceil(log2((16 + 120) / 16)) = 4 reallocations; a
        # copy-per-append implementation would produce ~120 distinct
        # backing arrays.
        assert len(bases) <= 5

    def test_growable_rows_view_is_readonly_and_amortized(self, rng):
        from repro.index.base import GrowableRows

        store = GrowableRows(rng.random((3, DIM)))
        view = store.view()
        assert view.shape == (3, DIM)
        with pytest.raises(ValueError):
            view[0, 0] = 1.0

        backing = {id(store._rows)}
        for _ in range(200):
            store.append(rng.random((1, DIM)))
            backing.add(id(store._rows))
        assert store.n_rows == 203
        assert len(backing) <= 7  # ~log2(203/8) reallocations, not 200
        assert store.capacity >= store.n_rows

    def test_growable_rows_take_shrinks_at_quarter_occupancy(self, rng):
        from repro.index.base import GrowableRows

        store = GrowableRows(rng.random((256, DIM)))
        full_capacity = store.capacity
        keep = np.arange(8)
        kept_rows = store.view()[keep].copy()
        view = store.take(keep)
        assert store.n_rows == 8
        assert store.capacity < full_capacity  # shrank, memory returned
        np.testing.assert_array_equal(view, kept_rows)

    def test_laesa_pivot_table_growth_is_amortized(self, rng):
        index = LAESAIndex(EuclideanDistance(), n_pivots=4).build(
            list(range(16)), rng.random((16, DIM))
        )
        bases = set()
        next_id = 1000
        for _ in range(120):
            index.insert_batch([next_id], rng.random((1, DIM)))
            next_id += 1
            bases.add(id(index._table_store._rows))
        assert len(bases) <= 5
