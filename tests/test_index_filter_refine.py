"""Tests for GEMINI filter-and-refine: exactness, candidate accounting."""

import numpy as np
import pytest

from repro.errors import IndexingError
from repro.index.filter_refine import FilterRefineIndex
from repro.index.linear import LinearScanIndex
from repro.index.vptree import VPTree
from repro.metrics.base import CountingMetric
from repro.metrics.minkowski import EuclideanDistance
from repro.reduce import FastMap, KLTransform


def _correlated(rng, n=250, dim=24, rank=4):
    basis = rng.normal(size=(rank, dim))
    weights = rng.normal(size=(n, rank)) * np.linspace(8.0, 1.0, rank)
    return weights @ basis + rng.normal(0.0, 0.02, (n, dim))


def _build_pair(rng, reduced_dim=4, n=250, **kwargs):
    vectors = _correlated(rng, n=n)
    metric = EuclideanDistance()
    ids = list(range(n))
    linear = LinearScanIndex(metric).build(ids, vectors)
    index = FilterRefineIndex(metric, KLTransform(reduced_dim), **kwargs).build(
        ids, vectors
    )
    return linear, index, vectors


class TestExactness:
    def test_knn_matches_linear_scan(self, rng):
        linear, index, vectors = _build_pair(rng)
        for _ in range(10):
            query = vectors[0] + rng.normal(0.0, 0.5, vectors.shape[1])
            expected = [n.id for n in linear.knn_search(query, 8)]
            assert [n.id for n in index.knn_search(query, 8)] == expected

    @pytest.mark.parametrize("radius", [0.0, 0.5, 2.0, 100.0])
    def test_range_matches_linear_scan(self, rng, radius):
        linear, index, vectors = _build_pair(rng)
        for row in (0, 10, 20):
            query = vectors[row]
            expected = {n.id for n in linear.range_search(query, radius)}
            assert {n.id for n in index.range_search(query, radius)} == expected

    @pytest.mark.parametrize("reduced_dim", [1, 2, 8, 16])
    def test_exact_at_every_reduced_dim(self, rng, reduced_dim):
        linear, index, vectors = _build_pair(rng, reduced_dim=reduced_dim)
        query = rng.normal(size=vectors.shape[1])
        assert [n.id for n in index.knn_search(query, 5)] == [
            n.id for n in linear.knn_search(query, 5)
        ]

    def test_exact_with_vptree_inner(self, rng):
        linear, index, vectors = _build_pair(
            rng, inner_factory=lambda metric: VPTree(metric)
        )
        query = rng.normal(size=vectors.shape[1])
        assert [n.id for n in index.knn_search(query, 6)] == [
            n.id for n in linear.knn_search(query, 6)
        ]

    def test_query_point_in_database_found_first(self, rng):
        _, index, vectors = _build_pair(rng)
        result = index.knn_search(vectors[42], 1)
        assert result[0].id == 42
        assert result[0].distance == pytest.approx(0.0)

    def test_k_larger_than_size_returns_all(self, rng):
        _, index, _ = _build_pair(rng, n=15)
        assert len(index.knn_search(rng.normal(size=24), 60)) == 15

    def test_exact_flag_reflects_reducer(self, rng):
        vectors = _correlated(rng)
        exact = FilterRefineIndex(EuclideanDistance(), KLTransform(4)).build(
            list(range(250)), vectors
        )
        heuristic = FilterRefineIndex(EuclideanDistance(), FastMap(4)).build(
            list(range(250)), vectors
        )
        assert exact.exact is True
        assert heuristic.exact is False


class TestFilterEconomy:
    def test_refine_cost_below_scan_on_correlated_data(self, rng):
        """The whole point: most items never get a full-metric distance."""
        _, index, vectors = _build_pair(rng)
        total = 0
        for row in range(10):
            index.knn_search(vectors[row], 5)
            total += index.last_stats.distance_computations
        assert total < 0.5 * 10 * 250

    def test_candidate_accounting(self, rng):
        _, index, vectors = _build_pair(rng)
        index.range_search(vectors[3], 1.0)
        assert index.last_candidate_count >= len(index.range_search(vectors[3], 1.0))
        assert 0.0 <= index.last_candidate_ratio <= 1.0

    def test_refine_count_equals_candidates_for_range(self, rng):
        counter = CountingMetric(EuclideanDistance())
        vectors = _correlated(rng)
        index = FilterRefineIndex(counter, KLTransform(4)).build(
            list(range(250)), vectors
        )
        counter.reset()
        index.range_search(vectors[7], 0.8)
        # One full-metric evaluation per filter survivor, none besides.
        assert counter.count == index.last_candidate_count
        assert counter.count == index.last_stats.distance_computations

    def test_filter_stats_populated(self, rng):
        _, index, vectors = _build_pair(rng)
        index.knn_search(vectors[5], 4)
        assert index.last_filter_stats.distance_computations > 0

    def test_smaller_radius_admits_fewer_candidates(self, rng):
        _, index, vectors = _build_pair(rng)
        index.range_search(vectors[2], 0.1)
        small = index.last_candidate_count
        index.range_search(vectors[2], 5.0)
        large = index.last_candidate_count
        assert small <= large

    def test_higher_reduced_dim_is_more_selective(self, rng):
        vectors = _correlated(rng)
        ids = list(range(250))
        counts = []
        for reduced_dim in (1, 8):
            index = FilterRefineIndex(
                EuclideanDistance(), KLTransform(reduced_dim)
            ).build(ids, vectors)
            index.range_search(vectors[0], 1.0)
            counts.append(index.last_candidate_count)
        assert counts[1] <= counts[0]


class TestConfiguration:
    def test_rejects_non_reducer(self):
        with pytest.raises(IndexingError, match="Reducer"):
            FilterRefineIndex(EuclideanDistance(), reducer="kl")  # type: ignore[arg-type]

    def test_prefitted_reducer_reused(self, rng):
        vectors = _correlated(rng)
        reducer = KLTransform(4).fit(vectors)
        index = FilterRefineIndex(EuclideanDistance(), reducer).build(
            list(range(250)), vectors
        )
        assert index.reducer is reducer

    def test_prefitted_reducer_dim_mismatch_rejected(self, rng):
        reducer = KLTransform(2).fit(rng.random((20, 8)))
        with pytest.raises(IndexingError, match="fitted for dim"):
            FilterRefineIndex(EuclideanDistance(), reducer).build(
                [0, 1], rng.random((2, 5))
            )

    def test_inner_exposed_after_build(self, rng):
        _, index, _ = _build_pair(rng)
        assert index.inner.size == 250
        assert index.inner.dim == 4

    def test_inner_before_build_rejected(self):
        index = FilterRefineIndex(EuclideanDistance(), KLTransform(2))
        with pytest.raises(IndexingError, match="built"):
            index.inner

    def test_build_stats_record_reduced_dim(self, rng):
        _, index, _ = _build_pair(rng, reduced_dim=6)
        assert index.build_stats.extra["reduced_dim"] == 6


class TestBatchedFilterStage:
    def test_range_batch_runs_one_inner_batched_call(self, rng):
        _, index, vectors = _build_pair(rng)
        queries = rng.random((6, vectors.shape[1]))
        index.range_search_batch(queries, 0.5)
        # The inner index answered the whole batch in one batched call:
        # its own batch views hold exactly one entry per outer query.
        assert len(index.inner.last_batch_stats) == 6
        assert len(index.last_batch_filter_stats) == 6
        assert len(index.last_batch_candidate_counts) == 6

    def test_range_batch_matches_scalar_views(self, rng):
        _, index, vectors = _build_pair(rng)
        queries = rng.random((5, vectors.shape[1]))
        scalar_results, scalar_filter, scalar_counts = [], [], []
        for query in queries:
            scalar_results.append(index.range_search(query, 0.55))
            scalar_filter.append(index.last_filter_stats)
            scalar_counts.append(index.last_candidate_count)
        batch_results = index.range_search_batch(queries, 0.55)
        assert batch_results == scalar_results
        assert index.last_batch_filter_stats == scalar_filter
        assert index.last_batch_candidate_counts == scalar_counts
        assert index.last_candidate_count == sum(scalar_counts)

    def test_range_batch_empty_queries(self, rng):
        _, index, vectors = _build_pair(rng)
        assert index.range_search_batch(np.empty((0, vectors.shape[1])), 0.5) == []
        assert index.last_batch_stats == []
        assert index.last_candidate_count == 0
