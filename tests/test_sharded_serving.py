"""Sharded scatter-gather serving: exact parity, routing, stress.

The pinned guarantees (see ``repro/serve/shard.py``):

* **bit-identical results** — a scheduler over N shards returns exactly
  what the unsharded scheduler returns (ids, distance floats,
  tie-breaks), for k-NN and range, static and under any interleaving of
  queries with adds/removes;
* **summed cost parity** — under a linear-scan index, per-query
  distance-computation counts summed across shards equal the unsharded
  count exactly (the shard slices partition the table);
* **mutation routing** — ids land on shard ``id % n_shards``, global id
  allocation matches the unsharded sequence, and the final sharded
  state matches a fresh unsharded build over the final item set;
* **per-shard cache stamps** — a mutation on one shard invalidates
  cached entries even when other shards are untouched (the tuple-stamp
  regression);
* **liveness under pressure** — 16 clients against a 4-shard scheduler
  with one deliberately slow shard never deadlock, the admission queue
  stays bounded, and the token-bucket limiter fails fast with
  :class:`~repro.errors.RateLimitError` (HTTP 429), distinct from
  queue-full.
"""

import threading
import time

import numpy as np
import pytest

from repro.db.database import ImageDatabase
from repro.errors import CatalogError, RateLimitError, ServeError
from repro.features.base import PresetSignature
from repro.features.pipeline import FeatureSchema
from repro.index.linear import LinearScanIndex
from repro.serve.client import ServiceClient
from repro.serve.http import QueryServer
from repro.serve.scheduler import QueryScheduler, TokenBucket
from repro.serve.shard import ShardedEngine, shard_of

_DIM = 8
_N = 120


def _make_db(vectors, *, linear=False, backend=None):
    schema = FeatureSchema([PresetSignature(_DIM, "sig")])
    factory = (lambda metric: LinearScanIndex(metric)) if linear else None
    db = ImageDatabase(schema, index_factory=factory, backend=backend)
    if len(vectors):
        db.add_vectors(vectors)
    return db


def _pairs(results):
    return [(r.image_id, r.distance) for r in results]


@pytest.fixture
def base_vectors(rng):
    return rng.random((_N, _DIM))


# ---------------------------------------------------------------------------
# Static parity: same database, 1 vs 2 vs 4 shards
# ---------------------------------------------------------------------------
class TestStaticParity:
    @pytest.mark.parametrize("shards", [1, 2, 4])
    @pytest.mark.parametrize("linear", [False, True])
    def test_knn_and_range_bit_identical(self, base_vectors, rng, shards, linear):
        reference = _make_db(base_vectors, linear=linear)
        sharded = _make_db(base_vectors, linear=linear)
        queries = rng.random((12, _DIM))
        with QueryScheduler(reference, cache_size=0) as ref, QueryScheduler(
            sharded, cache_size=0, shards=shards
        ) as test:
            for q in queries:
                for submit_ref, submit_test, parameter in (
                    (ref.submit_query, test.submit_query, 7),
                    (ref.submit_range, test.submit_range, 1.1),
                ):
                    expected = submit_ref(q, parameter).result(timeout=10)
                    served = submit_test(q, parameter).result(timeout=10)
                    assert _pairs(served.results) == _pairs(expected.results)

    @pytest.mark.parametrize("shards", [2, 4])
    def test_linear_scan_costs_sum_exactly(self, base_vectors, rng, shards):
        # Linear scan evaluates every row: shard slices partition the
        # table, so summed per-query counters equal the unsharded count.
        reference = _make_db(base_vectors, linear=True)
        sharded = _make_db(base_vectors, linear=True)
        with QueryScheduler(reference, cache_size=0) as ref, QueryScheduler(
            sharded, cache_size=0, shards=shards
        ) as test:
            for q in rng.random((6, _DIM)):
                expected = ref.submit_query(q, 5).result(timeout=10)
                served = test.submit_query(q, 5).result(timeout=10)
                assert (
                    served.stats.distance_computations
                    == expected.stats.distance_computations
                    == _N
                )

    @pytest.mark.parametrize("shards", [1, 2, 4])
    @pytest.mark.parametrize("linear", [False, True])
    def test_mmap_backend_bit_identical(
        self, base_vectors, rng, tmp_path, shards, linear
    ):
        """The full static-parity scenario with the reference on the
        in-memory backend and the test scheduler paging its index cores
        through a tiny mmap buffer pool: ids, distance floats, and
        tie-breaks stay byte-identical, and under a linear scan the
        counted distance computations match the memory backend exactly
        (the block-chunked evaluation is the same arithmetic)."""
        from repro.db.backend import MmapBackendFactory

        mmap = MmapBackendFactory(
            tmp_path / "cores", cache_pages=2, page_records=16
        )
        reference = _make_db(base_vectors, linear=linear)
        sharded = _make_db(base_vectors, linear=linear, backend=mmap)
        queries = rng.random((12, _DIM))
        with QueryScheduler(reference, cache_size=0) as ref, QueryScheduler(
            sharded, cache_size=0, shards=shards
        ) as test:
            for q in queries:
                for submit_ref, submit_test, parameter in (
                    (ref.submit_query, test.submit_query, 7),
                    (ref.submit_range, test.submit_range, 1.1),
                ):
                    expected = submit_ref(q, parameter).result(timeout=10)
                    served = submit_test(q, parameter).result(timeout=10)
                    assert _pairs(served.results) == _pairs(expected.results)
                    if linear:
                        # Shard slices partition the scan, so summed
                        # counts match the unsharded memory backend
                        # exactly (tree pruning varies with the
                        # partition, backend or not).
                        assert (
                            served.stats.distance_computations
                            == expected.stats.distance_computations
                        )
            stats = test.stats()
            assert stats.backend == "mmap"
            assert stats.pool_resident <= stats.pool_capacity
            if linear:
                # Exact cost parity: every query scanned all _N rows.
                final = test.submit_query(queries[0], 7).result(timeout=10)
                assert final.stats.distance_computations == _N
                # The linear scan pages every block through the buffer
                # pool (tree indexes read the memmap view directly, so
                # only the bounded scan path counts pool traffic).
                assert stats.pool_misses > 0

    def test_empty_shard_is_skipped(self, rng):
        # 2 shards but only even ids: shard 1 is empty and queries must
        # still answer (and match an unsharded build over the same set).
        vectors = rng.random((20, _DIM))
        donor = _make_db(vectors)
        view = donor.shard_view([i for i in donor.catalog.ids if i % 2 == 0])
        engine = ShardedEngine(view, 2)
        try:
            assert engine.shard_sizes() == [10, 0]
            q = rng.random((3, _DIM))
            merged, _ = engine.query_batch(q, 4, "sig")
            expected = view.query_batch(q, 4, feature="sig", precomputed=True)
            assert [_pairs(r) for r in merged] == [_pairs(r) for r in expected]
        finally:
            engine.close()


# ---------------------------------------------------------------------------
# Mutation routing and id allocation
# ---------------------------------------------------------------------------
class TestMutationRouting:
    @pytest.mark.parametrize("shards", [2, 4])
    def test_adds_route_by_id_hash_and_ids_match_unsharded(
        self, base_vectors, rng, shards
    ):
        sharded = _make_db(base_vectors)
        reference = _make_db(base_vectors)
        with QueryScheduler(sharded, shards=shards) as test, QueryScheduler(
            reference
        ) as ref:
            new = rng.random((10, _DIM))
            got = test.submit_add(new).result(timeout=10)
            expected = ref.submit_add(new).result(timeout=10)
            assert got.ids == expected.ids  # global allocation matches
            for shard_index, shard in enumerate(test.engine.shards):
                for image_id in shard.catalog.ids:
                    assert shard_of(image_id, shards) == shard_index
            # Sequential ids round-robin: shard sizes stay balanced.
            sizes = test.engine.shard_sizes()
            assert max(sizes) - min(sizes) <= 1
            assert sum(sizes) == _N + 10

    def test_remove_routes_and_validates_globally(self, base_vectors):
        sharded = _make_db(base_vectors)
        with QueryScheduler(sharded, shards=4) as test:
            removed = test.submit_remove([0, 5, 10]).result(timeout=10)
            assert removed.ids == [0, 5, 10]
            assert test.n_items == _N - 3
            # Unknown id fails the whole mutation; nothing changes
            # (CatalogError, exactly like unsharded ``remove``).
            with pytest.raises(CatalogError):
                test.submit_remove([1, 99_999]).result(timeout=10)
            assert test.n_items == _N - 3
            assert 1 in test.engine.shards[shard_of(1, 4)].catalog.ids


# ---------------------------------------------------------------------------
# Randomized interleaving parity (the tentpole's end-to-end contract)
# ---------------------------------------------------------------------------
class TestInterleavedParity:
    @pytest.mark.parametrize("shards", [2, 4])
    def test_random_query_mutation_interleaving_bit_identical(self, rng, shards):
        base = rng.random((60, _DIM))
        sharded = _make_db(base, linear=True)
        reference = _make_db(base, linear=True)
        live_ids = list(range(60))

        with QueryScheduler(sharded, cache_size=0, shards=shards) as test, (
            QueryScheduler(reference, cache_size=0)
        ) as ref:
            for step in range(80):
                op = rng.choice(["knn", "range", "add", "remove"], p=[0.4, 0.2, 0.25, 0.15])
                if op == "remove" and len(live_ids) <= 10:
                    op = "add"
                if op == "knn":
                    q = rng.random(_DIM)
                    k = int(rng.integers(1, 12))
                    served = test.submit_query(q, k).result(timeout=10)
                    expected = ref.submit_query(q, k).result(timeout=10)
                    assert _pairs(served.results) == _pairs(expected.results), step
                    assert (
                        served.stats.distance_computations
                        == expected.stats.distance_computations
                    ), step
                elif op == "range":
                    q = rng.random(_DIM)
                    radius = float(rng.uniform(0.4, 1.4))
                    served = test.submit_range(q, radius).result(timeout=10)
                    expected = ref.submit_range(q, radius).result(timeout=10)
                    assert _pairs(served.results) == _pairs(expected.results), step
                elif op == "add":
                    rows = rng.random((int(rng.integers(1, 4)), _DIM))
                    got = test.submit_add(rows).result(timeout=10)
                    want = ref.submit_add(rows).result(timeout=10)
                    assert got.ids == want.ids, step
                    live_ids.extend(got.ids)
                else:
                    picks = rng.choice(
                        live_ids, size=int(rng.integers(1, 3)), replace=False
                    )
                    picks = [int(p) for p in picks]
                    got = test.submit_remove(picks).result(timeout=10)
                    want = ref.submit_remove(picks).result(timeout=10)
                    assert got.ids == want.ids, step
                    live_ids = [i for i in live_ids if i not in picks]

            # Final state parity: the sharded engine equals a fresh
            # unsharded build over the surviving item set.
            fresh = ImageDatabase(
                FeatureSchema([PresetSignature(_DIM, "sig")]),
                index_factory=lambda metric: LinearScanIndex(metric),
            )
            for image_id in sorted(live_ids):
                fresh._catalog.insert(reference.catalog.get(image_id))
                fresh._vectors["sig"][image_id] = reference._vectors["sig"][image_id]
            fresh._stale.add("sig")
            probes = rng.random((8, _DIM))
            final, _ = test.engine.query_batch(probes, 9, "sig")
            direct = fresh.query_batch(probes, 9, feature="sig", precomputed=True)
            assert [_pairs(r) for r in final] == [_pairs(r) for r in direct]
            assert test.n_items == len(live_ids)

    def test_concurrent_clients_match_direct_queries(self, base_vectors, rng):
        sharded = _make_db(base_vectors)
        direct = _make_db(base_vectors)
        pool = rng.random((10, _DIM))
        outcomes: dict[tuple[int, int], object] = {}
        lock = threading.Lock()

        with QueryScheduler(sharded, cache_size=0, shards=4) as scheduler:
            def client(thread_id: int) -> None:
                thread_rng = np.random.default_rng(thread_id)
                for step in range(12):
                    pick = int(thread_rng.integers(0, len(pool)))
                    k = int(thread_rng.integers(1, 9))
                    served = scheduler.submit_query(pool[pick], k).result(timeout=30)
                    with lock:
                        outcomes[(thread_id, step)] = (pick, k, served)

            threads = [
                threading.Thread(target=client, args=(i,)) for i in range(8)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

        assert len(outcomes) == 8 * 12
        for pick, k, served in outcomes.values():
            assert _pairs(served.results) == _pairs(direct.query(pool[pick], k))


# ---------------------------------------------------------------------------
# Per-shard cache stamps (the tuple-generation regression, end to end)
# ---------------------------------------------------------------------------
class TestShardedCacheStamps:
    def test_mutation_on_other_shard_invalidates_cached_entry(self, rng):
        # Seed so that the nearest neighbour of `target` will live on
        # shard 1 after the add; the cached entry was computed under
        # stamp (g0, g1) and the add moves only shard 1's slot.
        base = rng.random((20, _DIM))
        db = _make_db(base)
        target = rng.random(_DIM)
        with QueryScheduler(db, shards=2, max_wait_ms=0.0) as scheduler:
            first = scheduler.submit_query(target, 3).result(timeout=10)
            assert not first.cache_hit
            hit = scheduler.submit_query(target, 3).result(timeout=10)
            assert hit.cache_hit

            # Insert one vector equal to the query itself: distance 0,
            # must appear at rank 1 in any fresh answer.  One add bumps
            # every shard it routes to — a single row lands on exactly
            # one shard, so exactly one tuple slot moves.
            before = scheduler.generations()["sig"]
            added = scheduler.submit_add(target[None, :]).result(timeout=10)
            after = added.generations["sig"]
            moved = [i for i in range(2) if before[i] != after[i]]
            assert len(moved) == 1  # one-shard mutation, the trap case

            invalidations_before = scheduler.cache.invalidations
            fresh = scheduler.submit_query(target, 3).result(timeout=10)
            assert not fresh.cache_hit  # stale entry evicted, not served
            assert scheduler.cache.invalidations == invalidations_before + 1
            assert fresh.results[0].image_id == added.ids[0]
            assert fresh.results[0].distance == 0.0

    def test_sharded_stats_expose_balance(self, base_vectors, rng):
        with QueryScheduler(_make_db(base_vectors), shards=4) as scheduler:
            scheduler.submit_query(rng.random(_DIM), 3).result(timeout=10)
            stats = scheduler.stats()
            assert stats.n_shards == 4
            assert len(stats.shard_sizes) == 4
            assert sum(stats.shard_sizes) == _N
            assert len(stats.shard_requests) == 4
            assert sum(stats.shard_requests) >= 4  # one scatter hit all


# ---------------------------------------------------------------------------
# Stress: slow shard, bounded queue, rate limiting
# ---------------------------------------------------------------------------
class TestStressAndAdmission:
    def test_sixteen_clients_slow_shard_no_deadlock(self, base_vectors, rng):
        db = _make_db(base_vectors)
        scheduler = QueryScheduler(
            db, cache_size=0, shards=4, max_queue=64, max_wait_ms=0.5
        )
        # Make shard 2 pathologically slow: every scatter waits on it,
        # which is exactly where a gather deadlock would surface.
        slow = scheduler.engine.shards[2]
        original = slow.query_batch

        def dawdle(*args, **kwargs):
            time.sleep(0.01)
            return original(*args, **kwargs)

        slow.query_batch = dawdle  # instance attribute shadows the method
        pool = rng.random((6, _DIM))
        errors: list[Exception] = []
        resolved = []
        lock = threading.Lock()
        max_depth = 0

        def client(thread_id: int) -> None:
            nonlocal max_depth
            thread_rng = np.random.default_rng(100 + thread_id)
            for _ in range(8):
                pick = int(thread_rng.integers(0, len(pool)))
                try:
                    served = scheduler.submit_query(pool[pick], 4).result(timeout=60)
                except ServeError as error:
                    with lock:
                        errors.append(error)
                    continue
                with lock:
                    resolved.append(served)
                    max_depth = max(max_depth, scheduler.stats().queue_depth)

        threads = [
            threading.Thread(target=client, args=(i,)) for i in range(16)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        scheduler.close(timeout=60)

        # Every submission resolved one way or the other — no deadlock,
        # no stranded future — and the queue never exceeded its bound.
        assert len(resolved) + len(errors) == 16 * 8
        assert max_depth <= 64
        assert all("queue full" in str(e) for e in errors)
        direct = _make_db(base_vectors)
        sample = resolved[0]
        # Spot-check parity survived the slow shard.
        for served in resolved[:10]:
            matches = any(
                _pairs(served.results) == _pairs(direct.query(q, 4)) for q in pool
            )
            assert matches
        assert sample.stats is not None

    def test_rate_limit_fails_fast_with_distinct_error(self, base_vectors, rng):
        db = _make_db(base_vectors)
        with QueryScheduler(
            db, shards=2, rate_limit_qps=1.0, rate_limit_burst=2.0, cache_size=0
        ) as scheduler:
            q = rng.random(_DIM)
            scheduler.submit_query(q, 3).result(timeout=10)
            scheduler.submit_query(q, 3).result(timeout=10)
            started = time.monotonic()
            with pytest.raises(RateLimitError):
                scheduler.submit_query(q, 3)
            elapsed = time.monotonic() - started
            assert elapsed < 0.5  # fail fast, never queue behind the bucket
            assert scheduler.stats().rate_limited >= 1
            # Throttled is not rejected-at-queue: distinct counters.
            assert scheduler.stats().rejected == 0
            # The bucket refills: a later request is admitted again.
            time.sleep(1.1)
            served = scheduler.submit_query(q, 3).result(timeout=10)
            assert len(served.results) == 3

    def test_token_bucket_refill_and_burst(self):
        bucket = TokenBucket(rate=1000.0, burst=3.0)
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        time.sleep(0.01)  # 1000/s refills ~10 tokens, capped at burst
        assert bucket.try_acquire()
        with pytest.raises(ServeError):
            TokenBucket(rate=0.0)
        with pytest.raises(ServeError):
            TokenBucket(rate=1.0, burst=0.5)


# ---------------------------------------------------------------------------
# HTTP surface: /healthz shards, /stats balance, /metrics exposition, 429
# ---------------------------------------------------------------------------
class TestShardedHTTP:
    def test_sharded_server_end_to_end(self, base_vectors, rng):
        db = _make_db(base_vectors)
        with QueryServer(db, port=0, shards=2) as server:
            host, port = server.address
            client = ServiceClient(host, port)
            health = client.wait_until_ready()
            assert health["shards"] == 2
            assert health["images"] == _N
            assert all(
                isinstance(stamp, list) and len(stamp) == 2
                for stamp in health["generations"].values()
            )

            answer = client.query(rng.random(_DIM), k=4)
            assert len(answer["results"]) == 4

            added = client.add(vectors=rng.random((2, _DIM)))
            assert len(added["ids"]) == 2
            assert client.healthz()["images"] == _N + 2

            stats = client.stats()
            assert stats["n_shards"] == 2
            assert sum(stats["shard_sizes"]) == _N + 2
            assert len(stats["shard_requests"]) == 2

            body = client.metrics()
            assert 'repro_request_latency_seconds_bucket{route="knn",le="+Inf"}' in body
            assert "repro_shard_items{shard=" in body
            assert "repro_queue_depth" in body
            assert 'repro_requests_total{route="add"} 1' in body

    def test_rate_limited_request_gets_429(self, base_vectors, rng):
        db = _make_db(base_vectors)
        with QueryServer(
            db, port=0, shards=2, rate_limit_qps=0.5, rate_limit_burst=1.0
        ) as server:
            host, port = server.address
            client = ServiceClient(host, port)
            client.wait_until_ready()
            q = rng.random(_DIM)
            client.query(q, k=3)
            with pytest.raises(ServeError, match="rate limit"):
                client.query(q, k=3)
