"""Recovery and atomic-snapshot tests (``repro.db.recovery``).

Covers the replay algorithm's edge cases — the states a real crash can
leave behind — plus the atomic-save satellites: empty journals, roots
whose journals hold *only* a torn tail, replay idempotence (recovering
twice yields the recovering-once state, and records already folded into
the snapshot are skipped rather than double-applied), removes of ids
that never made it into any snapshot, fingerprint gating, and the
temp-fsync-rename discipline of ``ImageDatabase.save``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.db.database import ImageDatabase
from repro.db.journal import Journal, JournalRecord, JournalSet, encode_record
from repro.db.recovery import (
    MANIFEST_FILE,
    compact,
    database_fingerprint,
    open_serving_root,
    read_manifest,
    recover,
)
from repro.errors import CatalogError, RecoveryError
from repro.features.base import PresetSignature
from repro.features.pipeline import FeatureSchema

DIM = 4
FEATURE = "signature"


def _schema() -> FeatureSchema:
    return FeatureSchema([PresetSignature(DIM)])


def _seed_db(rng, n: int = 10) -> ImageDatabase:
    db = ImageDatabase(_schema())
    db.add_vectors(rng.random((n, DIM)))
    return db


def _open_root(tmp_path, rng, n_shards: int = 1):
    return open_serving_root(
        tmp_path / "root", _seed_db(rng), n_shards=n_shards
    )


def _states_equal(a: ImageDatabase, b: ImageDatabase) -> bool:
    if set(a.catalog.ids) != set(b.catalog.ids):
        return False
    return all(
        a.vector_of(FEATURE, i).tobytes() == b.vector_of(FEATURE, i).tobytes()
        for i in a.catalog.ids
    )


class TestRecoverEdgeCases:
    def test_empty_journal_recovers_snapshot_exactly(self, tmp_path, rng):
        db, journals, report = _open_root(tmp_path, rng)
        journals.close()
        assert report is None  # fresh root: seeded, not recovered
        recovered, rep = recover(tmp_path / "root", _schema())
        assert rep.records_scanned == 0 and rep.records_applied == 0
        assert _states_equal(recovered, db)

    def test_only_torn_tail_truncated_and_nothing_replayed(self, tmp_path, rng):
        db, journals, _ = _open_root(tmp_path, rng)
        journals.close()
        path = JournalSet.shard_path(tmp_path / "root", 0)
        torn = encode_record(JournalRecord.remove(0, [1]))
        with open(path, "ab") as file:
            file.write(torn[:-3])
        recovered, rep = recover(tmp_path / "root", _schema())
        assert rep.torn_bytes_truncated == len(torn) - 3
        assert rep.records_applied == 0
        assert _states_equal(recovered, db)  # the torn remove never happened
        # repair=True actually shrank the file, so a later scan is clean.
        assert Journal.scan(path).torn_bytes == 0

    def test_no_repair_leaves_torn_tail_on_disk(self, tmp_path, rng):
        _, journals, _ = _open_root(tmp_path, rng)
        journals.close()
        path = JournalSet.shard_path(tmp_path / "root", 0)
        with open(path, "ab") as file:
            file.write(b"\x99" * 11)
        recover(tmp_path / "root", _schema(), repair=False)
        assert Journal.scan(path).torn_bytes == 11

    def test_replay_twice_equals_replay_once(self, tmp_path, rng):
        db, journals, _ = _open_root(tmp_path, rng)
        seq = journals.next_seq()
        matrix = rng.random((2, DIM))
        ids = db.add_vectors(matrix)
        journals.append_records(
            {0: JournalRecord.add(seq, ids, {FEATURE: matrix}, None, None)},
            sync=True,
        )
        journals.close()
        once, rep1 = recover(tmp_path / "root", _schema())
        twice, rep2 = recover(tmp_path / "root", _schema())
        assert rep1.adds_applied == rep2.adds_applied == 1
        assert _states_equal(once, twice)
        assert _states_equal(once, db)

    def test_records_already_in_snapshot_are_skipped(self, tmp_path, rng):
        # The crash window between the manifest flip and the journal
        # reset: the journal still holds records the fresh snapshot
        # already contains.  Replay must converge, not double-apply.
        db, journals, _ = _open_root(tmp_path, rng)
        seq = journals.next_seq()
        matrix = rng.random((2, DIM))
        ids = db.add_vectors(matrix)
        record = JournalRecord.add(seq, ids, {FEATURE: matrix}, None, None)
        journals.append_records({0: record}, sync=True)
        compact(journals, db)  # snapshot now holds ids; journals reset
        # Re-append the same record, as if the reset never happened.
        journals.append_records({0: record}, sync=True)
        journals.close()
        recovered, rep = recover(tmp_path / "root", _schema())
        assert rep.records_skipped == 1 and rep.adds_applied == 0
        assert _states_equal(recovered, db)

    def test_remove_of_never_snapshotted_id(self, tmp_path, rng):
        # An id born and killed entirely inside the journal: the add
        # and the remove both replay, and the id must not survive.
        db, journals, _ = _open_root(tmp_path, rng)
        matrix = rng.random((2, DIM))
        ids = db.add_vectors(matrix)
        seq_add = journals.next_seq()
        journals.append_records(
            {0: JournalRecord.add(seq_add, ids, {FEATURE: matrix}, None, None)}
        )
        db.remove([ids[0]])
        seq_rm = journals.next_seq()
        journals.append_records(
            {0: JournalRecord.remove(seq_rm, [ids[0]])}, sync=True
        )
        journals.close()
        recovered, rep = recover(tmp_path / "root", _schema())
        assert rep.adds_applied == 1 and rep.removes_applied == 1
        assert ids[0] not in recovered.catalog.ids
        assert ids[1] in recovered.catalog.ids
        assert _states_equal(recovered, db)

    def test_remove_of_unknown_id_is_skipped_not_fatal(self, tmp_path, rng):
        db, journals, _ = _open_root(tmp_path, rng)
        seq = journals.next_seq()
        journals.append_records(
            {0: JournalRecord.remove(seq, [424242])}, sync=True
        )
        journals.close()
        recovered, rep = recover(tmp_path / "root", _schema())
        assert rep.records_skipped == 1 and rep.removes_applied == 0
        assert _states_equal(recovered, db)

    def test_aborted_sequence_is_vetoed(self, tmp_path, rng):
        db, journals, _ = _open_root(tmp_path, rng)
        matrix = rng.random((1, DIM))
        seq = journals.next_seq()
        journals.append_records(
            {0: JournalRecord.add(seq, [900], {FEATURE: matrix}, None, None)}
        )
        journals.append_abort(seq)
        journals.sync()
        journals.close()
        recovered, rep = recover(tmp_path / "root", _schema())
        assert rep.records_aborted == 1 and rep.adds_applied == 0
        assert 900 not in recovered.catalog.ids
        assert _states_equal(recovered, db)

    def test_records_without_manifest_refused(self, tmp_path, rng):
        _, journals, _ = _open_root(tmp_path, rng)
        seq = journals.next_seq()
        journals.append_records(
            {0: JournalRecord.remove(seq, [1])}, sync=True
        )
        journals.close()
        (tmp_path / "root" / MANIFEST_FILE).unlink()
        with pytest.raises(RecoveryError, match="no manifest"):
            recover(tmp_path / "root", _schema())

    def test_manifest_naming_missing_snapshot_refused(self, tmp_path, rng):
        import json

        _, journals, _ = _open_root(tmp_path, rng)
        journals.close()
        manifest_path = tmp_path / "root" / MANIFEST_FILE
        manifest = json.loads(manifest_path.read_text())
        manifest["snapshot"] = "snap-999999"
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(RecoveryError, match="does not exist"):
            recover(tmp_path / "root", _schema())

    def test_fingerprint_mismatch_refused(self, tmp_path, rng):
        _, journals, _ = _open_root(tmp_path, rng)
        journals.close()
        wrong = FeatureSchema([PresetSignature(DIM + 1)])
        with pytest.raises(RecoveryError, match="fingerprint"):
            recover(tmp_path / "root", wrong)


class TestOpenServingRoot:
    def test_fresh_root_seeds_and_snapshots(self, tmp_path, rng):
        db, journals, report = _open_root(tmp_path, rng)
        journals.close()
        assert report is None
        manifest = read_manifest(tmp_path / "root")
        assert manifest is not None
        assert (tmp_path / "root" / manifest["snapshot"]).is_dir()
        assert manifest["fingerprint"] == database_fingerprint(db)

    def test_reopen_recovers_and_compacts(self, tmp_path, rng):
        db, journals, _ = _open_root(tmp_path, rng)
        matrix = rng.random((2, DIM))
        ids = db.add_vectors(matrix)
        seq = journals.next_seq()
        journals.append_records(
            {0: JournalRecord.add(seq, ids, {FEATURE: matrix}, None, None)},
            sync=True,
        )
        journals.close()
        first_manifest = read_manifest(tmp_path / "root")
        db2, journals2, report = open_serving_root(
            tmp_path / "root", _seed_db(rng), n_shards=1
        )
        journals2.close()
        assert report is not None and report.adds_applied == 1
        assert journals2.replayed_records == report.records_applied
        assert _states_equal(db2, db)
        # Startup compaction folded the journal into a new snapshot.
        second_manifest = read_manifest(tmp_path / "root")
        assert second_manifest["snapshot"] != first_manifest["snapshot"]
        assert journals2.n_records == 0

    def test_compact_prunes_old_snapshots(self, tmp_path, rng):
        db, journals, _ = _open_root(tmp_path, rng)
        compact(journals, db)
        compact(journals, db)
        journals.close()
        snaps = sorted(
            p.name for p in (tmp_path / "root").iterdir() if p.name.startswith("snap-")
        )
        assert len(snaps) == 1  # keep_snapshots=1 default
        assert read_manifest(tmp_path / "root")["snapshot"] == snaps[0]

    def test_shard_count_change_is_handled(self, tmp_path, rng):
        db, journals, _ = _open_root(tmp_path, rng, n_shards=2)
        journals.close()
        assert len(JournalSet.existing_paths(tmp_path / "root")) == 2
        db2, journals2, report = open_serving_root(
            tmp_path / "root", _seed_db(rng), n_shards=1
        )
        journals2.close()
        assert _states_equal(db2, db)
        assert len(JournalSet.existing_paths(tmp_path / "root")) == 1


class TestAtomicSaves:
    def test_save_leaves_no_staging_residue(self, tmp_path, rng):
        db = _seed_db(rng)
        db.save(tmp_path / "snap")
        residue = [
            p
            for p in (tmp_path / "snap").rglob("*")
            if p.name.endswith(".tmp") or p.name.endswith(".new")
        ]
        assert residue == []
        loaded = ImageDatabase.load(tmp_path / "snap", _schema())
        assert _states_equal(loaded, db)

    def test_resave_over_existing_directory(self, tmp_path, rng):
        db = _seed_db(rng)
        db.save(tmp_path / "snap")
        db.add_vectors(rng.random((3, DIM)))
        db.save(tmp_path / "snap")  # os.replace over the previous files
        loaded = ImageDatabase.load(tmp_path / "snap", _schema())
        assert _states_equal(loaded, db)

    def test_from_views_rejects_duplicate_ids(self, rng):
        a = _seed_db(rng, n=4)
        b = _seed_db(rng, n=4)  # same ids 0..3
        with pytest.raises(CatalogError, match="appears in two views"):
            ImageDatabase.from_views([a, b])

    def test_from_views_preserves_next_id(self, rng):
        a = ImageDatabase(_schema())
        a.add_vectors(rng.random((3, DIM)), ids=[0, 2, 4])
        merged = ImageDatabase.from_views([a])
        assert merged.add_vectors(rng.random((1, DIM)))[0] == 5
