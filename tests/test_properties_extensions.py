"""Property-based tests for the extension modules.

Pins, on arbitrary data:

* exact scan-equivalence of the M-tree (bulk *and* incrementally grown),
  the GNAT, and KL filter-and-refine;
* metric axioms for the Canberra and Jensen-Shannon distances;
* contractiveness of the KL transform at any output dimensionality;
* Rocchio movement staying inside the non-negative orthant.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.db.feedback import Rocchio
from repro.features.base import l1_normalize
from repro.index.filter_refine import FilterRefineIndex
from repro.index.gnat import GNAT
from repro.index.linear import LinearScanIndex
from repro.index.mtree import MTree
from repro.metrics.divergence import CanberraDistance, JensenShannonDistance
from repro.metrics.minkowski import EuclideanDistance
from repro.reduce import KLTransform


def _dataset_and_query(max_n=60, dim=4):
    return st.tuples(
        hnp.arrays(
            np.float64,
            st.tuples(st.integers(1, max_n), st.just(dim)),
            elements=st.floats(0.0, 1.0, allow_nan=False, width=64),
        ),
        hnp.arrays(
            np.float64, (dim,), elements=st.floats(0.0, 1.0, allow_nan=False, width=64)
        ),
    )


def _vector_triples(dim=6):
    return hnp.arrays(
        np.float64, (3, dim), elements=st.floats(0.0, 1.0, allow_nan=False, width=64)
    )


def _assert_same_distances(result_a, result_b):
    assert np.allclose(
        [n.distance for n in result_a], [n.distance for n in result_b], atol=1e-9
    )


class TestMTreeEquivalence:
    @given(data=_dataset_and_query(), k=st.integers(1, 10))
    @settings(max_examples=30, deadline=None)
    def test_knn_equals_scan(self, data, k):
        vectors, query = data
        ids = list(range(len(vectors)))
        metric = EuclideanDistance()
        linear = LinearScanIndex(metric).build(ids, vectors)
        tree = MTree(metric, capacity=4).build(ids, vectors)
        _assert_same_distances(tree.knn_search(query, k), linear.knn_search(query, k))

    @given(data=_dataset_and_query(), radius=st.floats(0.0, 1.5))
    @settings(max_examples=30, deadline=None)
    def test_range_equals_scan(self, data, radius):
        vectors, query = data
        ids = list(range(len(vectors)))
        metric = EuclideanDistance()
        linear = LinearScanIndex(metric).build(ids, vectors)
        tree = MTree(metric, capacity=4).build(ids, vectors)
        assert {n.id for n in tree.range_search(query, radius)} == {
            n.id for n in linear.range_search(query, radius)
        }

    @given(data=_dataset_and_query(max_n=40), k=st.integers(1, 6))
    @settings(max_examples=20, deadline=None)
    def test_incrementally_grown_tree_equals_scan(self, data, k):
        vectors, query = data
        ids = list(range(len(vectors)))
        metric = EuclideanDistance()
        linear = LinearScanIndex(metric).build(ids, vectors)
        tree = MTree(metric, capacity=4).build(ids[:1], vectors[:1])
        for item_id in ids[1:]:
            tree.insert(item_id, vectors[item_id])
        _assert_same_distances(tree.knn_search(query, k), linear.knn_search(query, k))


class TestGNATEquivalence:
    @given(data=_dataset_and_query(), k=st.integers(1, 10))
    @settings(max_examples=30, deadline=None)
    def test_knn_equals_scan(self, data, k):
        vectors, query = data
        ids = list(range(len(vectors)))
        metric = EuclideanDistance()
        linear = LinearScanIndex(metric).build(ids, vectors)
        tree = GNAT(metric, degree=4).build(ids, vectors)
        _assert_same_distances(tree.knn_search(query, k), linear.knn_search(query, k))

    @given(data=_dataset_and_query(), radius=st.floats(0.0, 1.5))
    @settings(max_examples=30, deadline=None)
    def test_range_equals_scan(self, data, radius):
        vectors, query = data
        ids = list(range(len(vectors)))
        metric = EuclideanDistance()
        linear = LinearScanIndex(metric).build(ids, vectors)
        tree = GNAT(metric, degree=4).build(ids, vectors)
        assert {n.id for n in tree.range_search(query, radius)} == {
            n.id for n in linear.range_search(query, radius)
        }


class TestFilterRefineEquivalence:
    @given(
        data=_dataset_and_query(dim=6),
        k=st.integers(1, 8),
        out_dim=st.integers(1, 6),
    )
    @settings(max_examples=30, deadline=None)
    def test_kl_filtered_knn_equals_scan(self, data, k, out_dim):
        vectors, query = data
        ids = list(range(len(vectors)))
        metric = EuclideanDistance()
        linear = LinearScanIndex(metric).build(ids, vectors)
        index = FilterRefineIndex(metric, KLTransform(out_dim)).build(ids, vectors)
        _assert_same_distances(
            index.knn_search(query, k), linear.knn_search(query, k)
        )

    @given(
        data=_dataset_and_query(dim=6),
        radius=st.floats(0.0, 1.5),
        out_dim=st.integers(1, 6),
    )
    @settings(max_examples=30, deadline=None)
    def test_kl_filtered_range_equals_scan(self, data, radius, out_dim):
        vectors, query = data
        ids = list(range(len(vectors)))
        metric = EuclideanDistance()
        linear = LinearScanIndex(metric).build(ids, vectors)
        index = FilterRefineIndex(metric, KLTransform(out_dim)).build(ids, vectors)
        assert {n.id for n in index.range_search(query, radius)} == {
            n.id for n in linear.range_search(query, radius)
        }


class TestKLContractive:
    @given(
        vectors=hnp.arrays(
            np.float64,
            st.tuples(st.integers(3, 40), st.just(8)),
            elements=st.floats(0.0, 1.0, allow_nan=False, width=64),
        ),
        out_dim=st.integers(1, 8),
    )
    @settings(max_examples=40, deadline=None)
    def test_projection_never_lengthens(self, vectors, out_dim):
        kl = KLTransform(out_dim).fit(vectors)
        reduced = kl.transform(vectors)
        n = len(vectors)
        for i, j in ((0, n - 1), (0, n // 2), (n // 2, n - 1)):
            original = float(np.linalg.norm(vectors[i] - vectors[j]))
            projected = float(np.linalg.norm(reduced[i] - reduced[j]))
            assert projected <= original + 1e-8


class TestDivergenceAxioms:
    @given(triple=_vector_triples())
    @settings(max_examples=50, deadline=None)
    def test_canberra_axioms(self, triple):
        metric = CanberraDistance()
        a, b, c = triple
        assert metric.distance(a, b) >= 0.0
        assert metric.distance(a, a) == pytest.approx(0.0, abs=1e-12)
        assert metric.distance(a, b) == pytest.approx(metric.distance(b, a), abs=1e-12)
        assert metric.distance(a, c) <= (
            metric.distance(a, b) + metric.distance(b, c) + 1e-9
        )

    @given(triple=_vector_triples())
    @settings(max_examples=50, deadline=None)
    def test_jensen_shannon_axioms_on_simplex(self, triple):
        metric = JensenShannonDistance()
        a, b, c = (l1_normalize(v) for v in triple)
        assert 0.0 <= metric.distance(a, b) <= 1.0 + 1e-12
        assert metric.distance(a, a) == pytest.approx(0.0, abs=1e-7)
        assert metric.distance(a, b) == pytest.approx(metric.distance(b, a), abs=1e-9)
        assert metric.distance(a, c) <= (
            metric.distance(a, b) + metric.distance(b, c) + 1e-7
        )


class TestRocchioProperties:
    @given(
        query=hnp.arrays(
            np.float64, (6,), elements=st.floats(0.0, 1.0, allow_nan=False, width=64)
        ),
        relevant=hnp.arrays(
            np.float64,
            st.tuples(st.integers(1, 5), st.just(6)),
            elements=st.floats(0.0, 1.0, allow_nan=False, width=64),
        ),
        non_relevant=hnp.arrays(
            np.float64,
            st.tuples(st.integers(1, 5), st.just(6)),
            elements=st.floats(0.0, 1.0, allow_nan=False, width=64),
        ),
    )
    @settings(max_examples=50, deadline=None)
    def test_refined_query_stays_valid(self, query, relevant, non_relevant):
        rule = Rocchio()
        refined = rule.refine(query, list(relevant), list(non_relevant))
        assert refined.shape == query.shape
        assert np.all(np.isfinite(refined))
        assert np.all(refined >= 0.0)  # clip_negative default

    @given(
        query=hnp.arrays(
            np.float64, (5,), elements=st.floats(0.0, 1.0, allow_nan=False, width=64)
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_identity_without_judgments(self, query):
        assert np.allclose(Rocchio().refine(query), query)
